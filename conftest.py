"""Pytest bootstrap: make ``repro`` importable from the source tree.

Lets ``pytest tests/`` and ``pytest benchmarks/`` run straight from a
checkout even when the package has not been pip-installed (e.g. offline
environments where pip's isolated build cannot fetch setuptools/wheel —
use ``python setup.py develop`` there, or rely on this hook).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Load the shared Hypothesis settings profile (dev by default; CI
# exports REPRO_HYPOTHESIS_PROFILE=ci) so every property in the suite
# scales with one knob.  Skipped gracefully when hypothesis is not
# installed — only the property tests depend on it.
from repro.verify import hypothesis_available

if hypothesis_available():
    from repro.verify.profiles import load_profile

    load_profile()
