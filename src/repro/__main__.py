"""``python -m repro`` — regenerate the paper's results from the CLI."""

import sys

from .cli import main

sys.exit(main())
