"""repro.observe — the simulation observability layer.

The paper's methodology claims (Figure 3's accuracy comparison, Figure
6's speedup-vs-error scatter, the FSDB waveform debug path of Figure 1)
are all *measurements of the simulator itself*.  This package is the
reproduction's measurement substrate: kernel profiling counters,
per-channel handshake/occupancy statistics, NoC router/link utilization,
clock-domain activity, a structured JSONL event log, and a summary
report formatter.  See ``docs/OBSERVABILITY.md`` for the guide.

Telemetry is disabled by default and adds no work to the simulation hot
paths beyond a single ``is None`` check per hook site.

Usage::

    from repro import observe
    from repro.kernel import Simulator

    # Per-simulator opt-in:
    sim = Simulator(telemetry=True)
    ...
    print(observe.format_report(observe.collect(sim, label="run")))

    # Or capture everything an experiment builds internally:
    with observe.capture() as session:
        figure3(ports=(2,), txns_per_port=10)
    print(observe.format_report(session.report(label="fig3")))

From the command line the same machinery powers
``python -m repro stats <experiment>`` and the ``--trace-vcd PATH``
flag on every experiment verb (see :mod:`repro.cli`).
"""

from .core import (
    CaptureSession,
    ChannelTelemetry,
    KernelStats,
    TelemetryHub,
    active_session,
    attach_if_enabled,
    capture,
    is_enabled,
)
from .events import EventLog, read_jsonl, write_jsonl
from .report import (
    TelemetryReport,
    collect,
    format_report,
    from_records,
    merge,
    to_records,
)

__all__ = [
    "KernelStats",
    "ChannelTelemetry",
    "TelemetryHub",
    "CaptureSession",
    "capture",
    "is_enabled",
    "active_session",
    "attach_if_enabled",
    "EventLog",
    "write_jsonl",
    "read_jsonl",
    "TelemetryReport",
    "collect",
    "merge",
    "format_report",
    "to_records",
    "from_records",
]
