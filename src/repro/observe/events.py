"""Structured JSONL event log and report serialization.

Telemetry artifacts are exchanged as JSON Lines: one JSON object per
line, append-friendly, and readable by any log tooling.  Two record
producers use this module:

* :class:`EventLog` — discrete simulation events ("channel registered",
  "run complete", ...), each stamped with a monotonically increasing
  sequence number;
* the report layer — :func:`repro.observe.report.to_records` flattens a
  summary report into records that round-trip through
  :func:`write_jsonl` / :func:`read_jsonl`.

Usage::

    from repro.observe import EventLog, read_jsonl, write_jsonl

    log = EventLog()
    log.emit("run-complete", now=1000, events=42)
    with open("events.jsonl", "w") as fh:
        write_jsonl(log.records, fh)
    with open("events.jsonl") as fh:
        assert read_jsonl(fh) == log.records
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List

__all__ = ["EventLog", "write_jsonl", "read_jsonl"]


class EventLog:
    """An in-memory sequence of structured telemetry events."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, event: str, **fields) -> dict:
        """Append one event record; returns the record.

        ``event`` names the event type; keyword arguments become the
        record's payload.  Every record carries ``seq``, its position in
        the log.
        """
        record = {"seq": len(self.records), "event": event, **fields}
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def write_jsonl(records: Iterable[dict], fh: IO[str]) -> int:
    """Write records as JSON Lines; returns the number of lines written."""
    n = 0
    for record in records:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        n += 1
    return n


def read_jsonl(fh: IO[str]) -> List[dict]:
    """Read a JSON Lines stream back into a list of dicts (blank-line safe)."""
    records = []
    for line in fh:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
