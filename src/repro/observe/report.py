"""Telemetry summary reports: collect, merge, format, (de)serialize.

A :class:`TelemetryReport` is a plain-data snapshot of everything the
observability layer counted during a run: kernel scheduler work,
per-channel handshake/occupancy statistics, NoC router/link utilization,
and clock-domain activity.  Reports are built from live simulators with
:func:`collect`, combined with :func:`merge`, rendered with
:func:`format_report`, and round-tripped through JSONL with
:func:`to_records` / :func:`from_records`.

Usage::

    from repro import observe

    sim = Simulator(telemetry=True)
    ... build and run ...
    report = observe.collect(sim, label="my-run")
    print(observe.format_report(report))

    records = observe.to_records(report)         # -> JSONL-able dicts
    assert observe.from_records(records) == report
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from .events import write_jsonl  # noqa: F401  (re-exported convenience)

__all__ = [
    "TelemetryReport",
    "collect",
    "merge",
    "format_report",
    "to_records",
    "from_records",
]

_KERNEL_INT_FIELDS = (
    "events_fired", "timesteps", "delta_cycles", "max_deltas_per_step",
    "thread_wakeups", "method_invocations", "signal_commits",
)


@dataclass
class TelemetryReport:
    """A merged, serializable snapshot of one or more simulators."""

    label: str = "telemetry"
    simulators: int = 0
    #: Kernel counters summed over simulators (``max_deltas_per_step`` is
    #: the maximum, ``proc_seconds`` the union of per-thread profiles).
    kernel: dict = field(default_factory=dict)
    clocks: List[dict] = field(default_factory=list)
    channels: List[dict] = field(default_factory=list)
    routers: List[dict] = field(default_factory=list)
    links: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)


def _channel_row(chan, tel) -> dict:
    """One report row per instrumented channel: always-on stats + histogram."""
    row = {
        "name": getattr(chan, "path", None) or getattr(chan, "name", "chan"),
        "kind": getattr(chan, "kind", type(chan).__name__),
        "transfers": getattr(chan, "transfers", 0),
    }
    stats = getattr(chan, "stats", None)
    if stats is not None:
        row.update(
            transfers=stats.transfers,
            push_attempts=stats.push_attempts,
            pop_attempts=stats.pop_attempts,
            push_rejections=stats.push_rejections,
            pop_rejections=stats.pop_rejections,
            injected_stall_cycles=stats.stall_cycles,
            mean_occupancy=round(stats.mean_occupancy, 4),
        )
    if tel is not None:
        snap = tel.snapshot()
        snap.pop("name", None)
        snap.pop("kind", None)
        row.update(snap)
    return row


def _router_row(router) -> dict:
    inst = getattr(router, "_design_instance", None)
    return {
        "name": inst.path if inst is not None
        else getattr(router, "name", "router"),
        "node": getattr(router, "node", -1),
        "flits_forwarded": getattr(router, "flits_forwarded", 0),
        "packets_forwarded": getattr(router, "packets_forwarded", 0),
        "output_stall_cycles": getattr(router, "output_stall_cycles", 0),
    }


def _link_row(src: int, dst: int, name: str, chan) -> dict:
    stats = getattr(chan, "stats", None)
    transfers = stats.transfers if stats is not None else getattr(
        chan, "transfers", 0)
    cycles = stats.cycles if stats is not None else 0
    return {
        "name": name,
        "src": src,
        "dst": dst,
        "transfers": transfers,
        "cycles": cycles,
        "utilization": round(transfers / cycles, 4) if cycles else 0.0,
    }


def _clock_row(clock, *, domain: Optional[dict] = None) -> dict:
    row = {
        "name": clock.name,
        "period": clock.period,
        "cycles": clock.cycles,
        "paused_edges": clock.paused_edges,
        "total_pause_time": clock.total_pause_time,
    }
    if domain:
        row.update(domain)
    return row


def collect(sim, *, label: str = "sim", meshes: Sequence = (),
            clock_generators: Sequence = ()) -> TelemetryReport:
    """Snapshot one simulator into a :class:`TelemetryReport`.

    Reads the simulator's telemetry hub when present (kernel counters,
    channel histograms, registered meshes and clock generators) and the
    always-on counters (clock cycles, router flit counts) either way.
    Extra ``meshes`` / ``clock_generators`` are merged with the hub's
    registrations, so the function also works on telemetry-disabled
    simulators given explicit sources.
    """
    hub = getattr(sim, "telemetry", None)
    report = TelemetryReport(label=label, simulators=1)

    if hub is not None:
        report.kernel = hub.kernel.snapshot()
        report.events = list(hub.log.records)
        report.channels = [_channel_row(chan, tel)
                           for chan, tel in hub.channels]
    else:
        report.kernel = {f: 0 for f in _KERNEL_INT_FIELDS}
        report.kernel["proc_seconds"] = {}

    all_meshes: List[Any] = list(meshes)
    all_gens: List[Any] = list(clock_generators)
    if hub is not None:
        seen = {id(m) for m in all_meshes}
        all_meshes += [m for m in hub.meshes if id(m) not in seen]
        seen = {id(g) for g in all_gens}
        all_gens += [g for g in hub.clock_generators if id(g) not in seen]

    gen_by_clock = {id(g.clock): g for g in all_gens}
    for clock in getattr(sim, "_clocks", ()):
        gen = gen_by_clock.get(id(clock))
        domain = gen.activity() if gen is not None else None
        report.clocks.append(_clock_row(clock, domain=domain))

    for mesh in all_meshes:
        report.routers += [_router_row(r) for r in mesh.routers]
        report.links += [_link_row(src, dst, name, chan)
                         for src, dst, name, chan in getattr(mesh, "links", ())]
    return report


def merge(reports: Iterable[TelemetryReport], *,
          label: str = "telemetry") -> TelemetryReport:
    """Combine per-simulator reports into one (sums, max-of-max, unions)."""
    out = TelemetryReport(label=label)
    out.kernel = {f: 0 for f in _KERNEL_INT_FIELDS}
    out.kernel["proc_seconds"] = {}
    for rep in reports:
        out.simulators += rep.simulators
        for f in _KERNEL_INT_FIELDS:
            if f == "max_deltas_per_step":
                out.kernel[f] = max(out.kernel[f], rep.kernel.get(f, 0))
            else:
                out.kernel[f] += rep.kernel.get(f, 0)
        for name, secs in rep.kernel.get("proc_seconds", {}).items():
            ps = out.kernel["proc_seconds"]
            ps[name] = ps.get(name, 0.0) + secs
        out.clocks += rep.clocks
        out.channels += rep.channels
        out.routers += rep.routers
        out.links += rep.links
        out.events += rep.events
    return out


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def format_report(report: TelemetryReport, *, top: int = 12) -> str:
    """Render a report as an aligned plain-text summary.

    Channel, router, and link tables are truncated to the ``top`` rows
    with the most traffic; the headline above each table always counts
    every instrumented object, so truncation is visible, not silent.
    """
    k = report.kernel
    lines = [f"telemetry report — {report.label}",
             f"  simulators: {report.simulators}",
             "",
             "kernel",
             f"  events fired        {k.get('events_fired', 0):>12}",
             f"  timesteps           {k.get('timesteps', 0):>12}",
             f"  delta cycles        {k.get('delta_cycles', 0):>12}"
             f"   (max {k.get('max_deltas_per_step', 0)} per timestep)",
             f"  thread wakeups      {k.get('thread_wakeups', 0):>12}",
             f"  method invocations  {k.get('method_invocations', 0):>12}",
             f"  signal commits      {k.get('signal_commits', 0):>12}"]
    proc_seconds = k.get("proc_seconds", {})
    if proc_seconds:
        busiest = sorted(proc_seconds.items(), key=lambda kv: -kv[1])[:top]
        lines.append(f"  busiest threads (of {len(proc_seconds)}):")
        for name, secs in busiest:
            lines.append(f"    {name:<28} {secs * 1e3:>9.2f} ms")

    if report.channels:
        chans = sorted(report.channels, key=lambda c: -c.get("transfers", 0))
        lines += ["",
                  f"channels ({len(chans)} instrumented, "
                  f"top {min(top, len(chans))} by transfers)",
                  f"  {'name':<22} {'kind':<14} {'xfers':>8} {'stall':>7} "
                  f"{'bkprs':>7} {'occ μ':>6} {'occ max':>7}"]
        for c in chans[:top]:
            lines.append(
                f"  {c['name']:<22} {c.get('kind', '?'):<14} "
                f"{c.get('transfers', 0):>8} "
                f"{c.get('valid_not_ready_cycles', 0):>7} "
                f"{c.get('backpressure_cycles', 0):>7} "
                f"{c.get('mean_occupancy', 0.0):>6.2f} "
                f"{c.get('max_occupancy', 0):>7}")
        total_stall = sum(c.get("valid_not_ready_cycles", 0) for c in chans)
        total_xfer = sum(c.get("transfers", 0) for c in chans)
        lines.append(f"  total: {total_xfer} transfers, "
                     f"{total_stall} valid-but-not-ready stall cycles")

    if report.routers:
        routers = sorted(report.routers,
                         key=lambda r: -r.get("flits_forwarded", 0))
        total_flits = sum(r.get("flits_forwarded", 0) for r in routers)
        lines += ["",
                  f"noc routers ({len(routers)}, {total_flits} flits total, "
                  f"top {min(top, len(routers))})",
                  f"  {'name':<16} {'flits':>8} {'packets':>8} {'out-stall':>10}"]
        for r in routers[:top]:
            lines.append(f"  {r['name']:<16} {r['flits_forwarded']:>8} "
                         f"{r['packets_forwarded']:>8} "
                         f"{r['output_stall_cycles']:>10}")

    if report.links:
        links = sorted(report.links, key=lambda l: -l.get("utilization", 0.0))
        lines += ["",
                  f"noc links ({len(links)}, top {min(top, len(links))} "
                  f"by utilization)",
                  f"  {'link':<22} {'xfers':>8} {'cycles':>9} {'util':>6}"]
        for l in links[:top]:
            lines.append(f"  {l['name']:<22} {l['transfers']:>8} "
                         f"{l['cycles']:>9} {l['utilization']:>6.3f}")

    if report.clocks:
        lines += ["",
                  f"clock domains ({len(report.clocks)})",
                  f"  {'name':<16} {'cycles':>9} {'period μ':>9} "
                  f"{'pauses':>7} {'pause ps':>9} {'margin':>7}"]
        for c in report.clocks[:top]:
            mean_period = c.get("mean_period", float(c.get("period", 0)))
            margin = c.get("effective_margin")
            lines.append(
                f"  {c['name']:<16} {c['cycles']:>9} {mean_period:>9.1f} "
                f"{c['paused_edges']:>7} {c['total_pause_time']:>9} "
                + (f"{margin:>6.1%}" if margin is not None else f"{'—':>7}"))
        if len(report.clocks) > top:
            lines.append(f"  ... and {len(report.clocks) - top} more domains")

    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSONL round trip
# ----------------------------------------------------------------------
_SECTION_LISTS = {"clock": "clocks", "channel": "channels",
                  "router": "routers", "link": "links", "event": "events"}


def to_records(report: TelemetryReport) -> List[dict]:
    """Flatten a report into JSONL-ready records (one dict per line)."""
    records = [{"section": "meta", "label": report.label,
                "simulators": report.simulators},
               {"section": "kernel", **report.kernel}]
    for section, attr in _SECTION_LISTS.items():
        for row in getattr(report, attr):
            records.append({"section": section, **row})
    return records


def from_records(records: Iterable[dict]) -> TelemetryReport:
    """Rebuild a :class:`TelemetryReport` from :func:`to_records` output."""
    report = TelemetryReport()
    for record in records:
        record = dict(record)
        section = record.pop("section")
        if section == "meta":
            report.label = record.get("label", report.label)
            report.simulators = record.get("simulators", 0)
        elif section == "kernel":
            report.kernel = record
        elif section in _SECTION_LISTS:
            getattr(report, _SECTION_LISTS[section]).append(record)
        else:
            raise ValueError(f"unknown report section {section!r}")
    return report
