"""Telemetry core: the global capture switch and per-simulator hubs.

Telemetry is **disabled by default** and costs nothing when off: the
simulation layers keep a single ``None`` attribute and skip every
counter behind one pointer check.  There are two ways to turn it on:

* per simulator — ``Simulator(telemetry=True)`` attaches a
  :class:`TelemetryHub` to that simulator only;
* per capture window — :func:`capture` enables telemetry for every
  simulator *constructed inside the window* and collects their hubs, so
  experiment code that builds its own simulators needs no changes.

Usage::

    from repro import observe
    from repro.kernel import Simulator

    with observe.capture() as session:
        run_my_experiment()          # builds Simulator()s internally
    print(observe.format_report(session.report(label="my-experiment")))

A hub is the registration point for every instrumented object of one
simulator: the kernel's :class:`KernelStats`, one
:class:`ChannelTelemetry` per LI channel, registered meshes, and
registered GALS clock generators.  The report layer
(:mod:`repro.observe.report`) snapshots hubs into plain dictionaries.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

from .events import EventLog

__all__ = [
    "KernelStats",
    "ChannelTelemetry",
    "TelemetryHub",
    "CaptureSession",
    "capture",
    "is_enabled",
    "active_session",
    "attach_if_enabled",
]

#: Stack of nested capture sessions; the innermost one is active.
_SESSIONS: List["CaptureSession"] = []


class KernelStats:
    """Kernel profiling counters (one per :class:`~repro.kernel.simulator.Simulator`).

    Counts the scheduler's own work — the numbers a simulator must report
    about itself before its performance claims can be trusted:

    * ``events_fired`` — timed events fired (heap pops plus fast-lane
      clock edges, including edges the idle-skip advances over —
      identical to executing every edge individually),
    * ``timesteps`` — distinct timestamps executed (idle-skipped clock
      edges count one timestep each, matching per-edge execution),
    * ``delta_cycles`` / ``max_deltas_per_step`` — evaluate/update
      iterations (convergence effort per timestep),
    * ``thread_wakeups`` / ``method_invocations`` — process activations,
    * ``signal_commits`` — committed signal value changes,
    * ``proc_seconds`` — wall time spent inside each thread's body,
      keyed by thread name (the per-thread profile).
    """

    __slots__ = (
        "events_fired", "timesteps", "delta_cycles", "max_deltas_per_step",
        "thread_wakeups", "method_invocations", "signal_commits",
        "proc_seconds",
    )

    def __init__(self) -> None:
        self.events_fired = 0
        self.timesteps = 0
        self.delta_cycles = 0
        self.max_deltas_per_step = 0
        self.thread_wakeups = 0
        self.method_invocations = 0
        self.signal_commits = 0
        self.proc_seconds: dict[str, float] = {}

    def add_proc_time(self, name: str, seconds: float) -> None:
        self.proc_seconds[name] = self.proc_seconds.get(name, 0.0) + seconds

    def snapshot(self) -> dict:
        """Return the counters as a plain serializable dict."""
        return {
            "events_fired": self.events_fired,
            "timesteps": self.timesteps,
            "delta_cycles": self.delta_cycles,
            "max_deltas_per_step": self.max_deltas_per_step,
            "thread_wakeups": self.thread_wakeups,
            "method_invocations": self.method_invocations,
            "signal_commits": self.signal_commits,
            "proc_seconds": dict(self.proc_seconds),
        }


class ChannelTelemetry:
    """Per-channel occupancy histogram and handshake stall counters.

    Attached to a channel only while its simulator has a telemetry hub,
    and fed once per clock edge from the channel's tick:

    * ``occupancy_hist[n]`` — cycles the channel started with exactly
      ``n`` committed messages (the Buffer/Pipeline occupancy profile),
    * ``valid_not_ready_cycles`` — cycles data was available but nothing
      was popped: the consumer (or downstream backpressure) stalled a
      valid message,
    * ``backpressure_cycles`` — cycles at least one push was attempted
      and rejected: the producer side of the same handshake stall.
    """

    __slots__ = ("name", "kind", "cycles", "occupancy_hist",
                 "valid_not_ready_cycles", "backpressure_cycles",
                 "_had_push_failure")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.cycles = 0
        self.occupancy_hist: dict[int, int] = {}
        self.valid_not_ready_cycles = 0
        self.backpressure_cycles = 0
        self._had_push_failure = False

    def on_cycle(self, occupancy: int, prev_popped: bool) -> None:
        """Record one clock edge (called from the channel's tick)."""
        self.cycles += 1
        hist = self.occupancy_hist
        hist[occupancy] = hist.get(occupancy, 0) + 1
        if occupancy and not prev_popped:
            self.valid_not_ready_cycles += 1
        if self._had_push_failure:
            self.backpressure_cycles += 1
            self._had_push_failure = False

    def on_push_rejected(self) -> None:
        self._had_push_failure = True

    @property
    def max_occupancy(self) -> int:
        return max(self.occupancy_hist) if self.occupancy_hist else 0

    def snapshot(self) -> dict:
        """Histogram + stall counters as a plain serializable dict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "cycles": self.cycles,
            "occupancy_hist": {str(k): v
                               for k, v in sorted(self.occupancy_hist.items())},
            "max_occupancy": self.max_occupancy,
            "valid_not_ready_cycles": self.valid_not_ready_cycles,
            "backpressure_cycles": self.backpressure_cycles,
        }


class TelemetryHub:
    """Registration point for every instrumented object of one simulator."""

    __slots__ = ("sim", "kernel", "channels", "meshes", "clock_generators",
                 "log")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.kernel = KernelStats()
        #: ``(channel, ChannelTelemetry)`` pairs, registration order.
        self.channels: List[Tuple[Any, ChannelTelemetry]] = []
        self.meshes: List[Any] = []
        self.clock_generators: List[Any] = []
        self.log = EventLog()

    def register_channel(self, channel) -> ChannelTelemetry:
        """Attach telemetry to a channel; returns the per-channel recorder.

        The telemetry name is the channel's full design path when it was
        constructed inside a design scope (``chip.mesh.l3p1``), falling
        back to its bare name.
        """
        tel = ChannelTelemetry(getattr(channel, "path", None)
                               or getattr(channel, "name", "chan"),
                               getattr(channel, "kind", type(channel).__name__))
        self.channels.append((channel, tel))
        self.log.emit("channel-registered", name=tel.name, kind=tel.kind)
        return tel

    def register_mesh(self, mesh) -> None:
        self.meshes.append(mesh)
        self.log.emit("mesh-registered", nodes=mesh.n_nodes)

    def register_clock_generator(self, gen) -> None:
        self.clock_generators.append(gen)
        self.log.emit("clock-generator-registered", name=gen.name)


class CaptureSession:
    """Everything telemetry-enabled simulators produced inside one window."""

    def __init__(self, *, trace_signals: bool = False) -> None:
        self.trace_signals = trace_signals
        self.hubs: List[TelemetryHub] = []
        self.traces: List[Any] = []  # (Trace objects, simulator order)

    def add(self, hub: TelemetryHub) -> None:
        self.hubs.append(hub)

    def add_trace(self, trace) -> None:
        self.traces.append(trace)

    def report(self, *, label: str = "capture"):
        """Merge every captured hub into one :class:`TelemetryReport`."""
        from .report import collect, merge

        return merge((collect(hub.sim) for hub in self.hubs), label=label)

    def best_trace(self):
        """The first trace with real signal activity (for VCD export).

        "Real activity" means changes beyond the seeded initial values.
        Falls back to the first trace that watched any signal at all, or
        ``None`` if no simulator produced signal traffic.
        """
        for trace in self.traces:
            if len(trace.changes) > len(trace.signals):
                return trace
        for trace in self.traces:
            if trace.signals:
                return trace
        return None


def is_enabled() -> bool:
    """True when a :func:`capture` window is active."""
    return bool(_SESSIONS)


def active_session() -> Optional[CaptureSession]:
    return _SESSIONS[-1] if _SESSIONS else None


def attach_if_enabled(sim, requested: Optional[bool]) -> Optional[TelemetryHub]:
    """Called by ``Simulator.__init__``: build this simulator's hub.

    ``requested`` is the simulator's explicit ``telemetry=`` argument;
    ``None`` defers to the ambient capture session.  Returns the hub, or
    ``None`` when telemetry stays off (the zero-overhead path).
    """
    session = active_session()
    if requested is None:
        requested = session is not None
    if not requested:
        return None
    hub = TelemetryHub(sim)
    if session is not None:
        session.add(hub)
        if session.trace_signals and sim.trace is None:
            from ..kernel.tracing import Trace

            sim.trace = Trace(autowatch=True)
            session.add_trace(sim.trace)
    return hub


@contextmanager
def capture(*, trace_signals: bool = False) -> Iterator[CaptureSession]:
    """Enable telemetry for every simulator built inside the ``with`` body.

    With ``trace_signals=True`` each captured simulator also gets an
    auto-watching :class:`~repro.kernel.tracing.Trace`, so any signal
    created afterwards is recorded and can be exported with
    :func:`~repro.kernel.tracing.write_vcd`.

    Usage::

        with observe.capture(trace_signals=True) as session:
            run_experiment()
        trace = session.best_trace()
    """
    session = CaptureSession(trace_signals=trace_signals)
    _SESSIONS.append(session)
    try:
        yield session
    finally:
        _SESSIONS.remove(session)
