"""Kernel-level snapshot/restore: the construct-once, run-many primitive.

Warm batched sweeps (:mod:`repro.sweep.warm`) evaluate hundreds of
parameter points against **one** constructed design: build once, then
per point mutate the knobs (capacity, stall probability, clock period),
run, collect, and :func:`restore` back.  That only works if restore is
*exact* — byte-identical state to a freshly constructed simulator — so
this module is deliberately conservative:

* **Base capture, not object graph copy.**  ``enable()`` must run
  *before the first run call*, while the simulator still sits in its
  deterministic post-construction state.  It records everything mutable
  the kernel owns: the timed-event heap (whose closures at time zero
  all reference persistent objects), the sequence counter origin,
  per-clock edge/cycle/pause/wakeup state, per-signal and per-event
  state (enumerated through weak registries so testbench-local objects
  stay collectable), per-channel state through the
  ``_snapshot_state()/_restore_state()`` protocol (queue, transit,
  stall RNG, stats, fault-hook RNGs), and per-thread done flags.
* **Generators are re-created, never copied.**  Python generators
  cannot be copied, so snapshot eligibility requires every thread to
  have been registered factory-style
  (``sim.add_thread(lambda: body(), clk)``); restore calls each factory
  again.  Determinism follows because the factories close over
  construction-time state that restore has just reset.
* **Mid-run snapshots replay.**  Every coarse ``run``/``run_cycles``
  call is recorded in ``sim._history``; a :class:`Snapshot` captures
  that history and :func:`restore` re-executes it from the base.  The
  contract: state mutations *between* run calls (``set_stall``,
  ``set_period``, …) made **after** the snapshot are discarded —
  exactly what a warm sweep needs — while mutations made **before the
  first run** are part of the base.  Mutations made between run calls
  *before* the snapshot are not replayed and are therefore unsupported
  (the property test pins the supported shapes).

The compiled backend cooperates: :meth:`CompiledEngine.reset()
<repro.compile.engine.CompiledEngine.reset>` returns an attached engine
to its just-attached state (empty dispatch slots, every channel
ticking) without the stats re-crediting or fallback recording a
mid-run ``detach`` performs, because restore rewinds those through the
base state instead.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from .simulator import Method, SimulationError

__all__ = ["Snapshot", "SnapshotError", "enable", "capture", "restore"]


class SnapshotError(SimulationError):
    """The design uses constructs snapshot/restore cannot rewind."""


class Snapshot:
    """An opaque, restorable point in a simulation.

    Holds only the recorded run history (the base state lives on the
    simulator): restoring replays history deterministically from the
    base, so a snapshot is a few dozen bytes regardless of design size.
    """

    __slots__ = ("history",)

    def __init__(self, history: tuple):
        self.history = history

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Snapshot(runs={len(self.history)})"


def eligibility_reasons(sim) -> List[str]:
    """Every construct blocking snapshot support, or ``[]`` if eligible."""
    reasons: List[str] = []
    for thread in sim._threads:
        if thread.factory is None:
            reasons.append(
                f"thread {thread.name!r} was registered from a raw "
                f"generator (register a zero-arg factory for snapshot "
                f"support)")
    if sim.telemetry is not None:
        reasons.append("telemetry hub attached (counters are not rewound)")
    if sim.trace is not None:
        reasons.append("signal trace attached (VCD output is append-only)")
    if sim.watchdog is not None:
        reasons.append("progress watchdog attached (census state is "
                       "not rewound)")
    for inst in sim.design.root.walk():
        for chan in inst.channels:
            if not hasattr(chan, "_snapshot_state"):
                reasons.append(
                    f"channel {getattr(chan, 'path', chan)!r} "
                    f"({type(chan).__name__}) does not implement the "
                    f"snapshot state protocol")
    return reasons


def enable(sim) -> None:
    """Capture ``sim``'s base state; must precede the first run call."""
    if sim._snap_base is not None:
        return
    if sim.now != 0 or sim._history:
        raise SnapshotError(
            "enable_snapshots() must be called before the first run "
            f"(now={sim.now}, {len(sim._history)} runs recorded)")
    reasons = eligibility_reasons(sim)
    if reasons:
        raise SnapshotError(
            "design is not snapshot-eligible: " + "; ".join(reasons))
    sim._snap_base = _capture_base(sim)


def capture(sim) -> Snapshot:
    """Snapshot the current state (auto-enables before the first run)."""
    if sim._snap_base is None:
        enable(sim)
    return Snapshot(tuple(sim._history))


def restore(sim, snap: Snapshot) -> None:
    """Rewind ``sim`` to the state captured in ``snap``."""
    base = sim._snap_base
    if base is None:
        raise SnapshotError("enable_snapshots() was never called")
    if not isinstance(snap, Snapshot):
        raise SnapshotError(f"not a Snapshot: {snap!r}")
    _restore_base(sim, base)
    for hook in sim._restore_hooks:
        hook()
    # Deterministic replay of the coarse run calls recorded up to the
    # snapshot.  run()/run_cycles() re-append to the (cleared) history,
    # so after the replay sim._history == list(snap.history) and a
    # later snapshot/restore cycle composes naturally.
    clocks = sim._clocks
    for record in snap.history:
        if record[0] == "run":
            sim.run(record[1], max_steps=record[2])
        else:  # "run_cycles"
            sim.run_cycles(clocks[record[1]], record[2])


# ----------------------------------------------------------------------
# base capture / restore
# ----------------------------------------------------------------------
def _live(registry) -> list:
    """Resolve a weakref registry, compacting dead entries in place."""
    objs = []
    refs = []
    for ref in registry:
        obj = ref()
        if obj is not None:
            objs.append(obj)
            refs.append(ref)
    registry[:] = refs
    return objs


def _capture_base(sim) -> dict:
    # Burn one sequence number so the counter origin is known; replace
    # the counter so numbering continues from exactly that origin.
    # Relative order is all the kernel ever compares, and every
    # base-state sequence number is below the origin, so behaviour is
    # unchanged.
    seq_start = next(sim._seq)
    sim._seq = itertools.count(seq_start)
    signals = _live(sim._snap_signals)
    events = _live(sim._snap_events)
    channels = []
    for inst in sim.design.root.walk():
        for chan in inst.channels:
            channels.append((chan, chan._snapshot_state()))
    return {
        "seq_start": seq_start,
        "queue": list(sim._queue),
        "runnable": list(sim._runnable),
        "runnable_set": set(sim._runnable_set),
        "dirty": list(sim._dirty_signals),
        "finished": sim._finished_threads,
        "fallback": sim._backend_fallback,
        "clocks": [(clk, _clock_state(clk)) for clk in sim._clocks],
        "signals": [(sig, sig._value, sig._next, sig._dirty)
                    for sig in signals],
        "events": [(ev, list(ev._waiters)) for ev in events],
        "channels": channels,
        "threads": [(thread, thread.done) for thread in sim._threads],
    }


def _clock_state(clk) -> dict:
    return {
        "period": clk.period,
        "cycles": clk.cycles,
        "next_edge": clk.next_edge,
        "seq": clk._seq,
        "pause_until": clk._pause_until,
        "stopped": clk._stopped,
        "paused_edges": clk.paused_edges,
        "total_pause_time": clk.total_pause_time,
        "next_wakeup": clk._next_wakeup,
        "wakeups": {at: list(waiters)
                    for at, waiters in clk._wakeups.items()},
    }


def _restore_base(sim, base: dict) -> None:
    # The compiled engine (if attached) clears its dispatch slots and
    # resumes ticking every channel; detached/fallback state is wiped
    # so the next run re-attempts attach (via the CompileCache when a
    # structural digest is stamped).
    engine = sim._engine
    if engine is not None:
        engine.reset()
    sim.now = 0
    sim._seq = itertools.count(base["seq_start"])
    sim._queue[:] = base["queue"]
    # Methods sitting in the abandoned runnable list keep a _queued
    # flag that must drop with them.
    for proc in sim._runnable:
        if proc.__class__ is Method:
            proc._queued = False
    sim._runnable[:] = base["runnable"]
    sim._runnable_set.clear()
    sim._runnable_set.update(base["runnable_set"])
    # Identity-stable: signals cache a reference to this list.
    sim._dirty_signals.clear()
    sim._dirty_signals.extend(base["dirty"])
    sim._finished_threads = base["finished"]
    sim._backend_fallback = base["fallback"]
    sim._current = None
    sim._history = []
    for clk, state in base["clocks"]:
        clk.period = state["period"]
        clk.cycles = state["cycles"]
        clk.next_edge = state["next_edge"]
        clk._seq = state["seq"]
        clk._pause_until = state["pause_until"]
        clk._stopped = state["stopped"]
        clk.paused_edges = state["paused_edges"]
        clk.total_pause_time = state["total_pause_time"]
        clk._next_wakeup = state["next_wakeup"]
        clk._wakeups.clear()
        for at, waiters in state["wakeups"].items():
            clk._wakeups[at] = list(waiters)
    for sig, value, nxt, dirty in base["signals"]:
        sig._value = value
        sig._next = nxt
        sig._dirty = dirty
    for ev, waiters in base["events"]:
        ev._waiters = list(waiters)
    for chan, state in base["channels"]:
        chan._restore_state(state)
    for thread, done in base["threads"]:
        thread.gen = thread.factory()
        thread.done = done
