"""Waveform tracing and wall-clock measurement.

:class:`Trace` records committed signal changes; :func:`write_vcd` emits
a Value-Change-Dump file viewable in GTKWave — the debug path the
paper's FSDB traces serve in the commercial flow (Figure 1).
:class:`WallClock` measures host wall time for the Figure 6 speedup
runs.  The counter-based side of observability (kernel/channel/NoC
statistics) lives in :mod:`repro.observe`; see ``docs/OBSERVABILITY.md``
for the combined guide.

Usage::

    from repro.kernel import Simulator, BusSignal, Trace, write_vcd

    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    count = BusSignal(sim, width=4, name="count")
    sim.trace = Trace([count])        # explicit watch list...
    # ...or Trace(autowatch=True) to record every signal created later.
    sim.run(until=1_000)
    with open("out.vcd", "w") as fh:
        write_vcd(sim.trace, fh)      # -> gtkwave out.vcd

From the command line, ``python -m repro <experiment> --trace-vcd PATH``
attaches an auto-watching trace to the experiment's first simulator and
writes the VCD for you.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, IO, Iterable

__all__ = ["Trace", "write_vcd", "WallClock"]


class Trace:
    """Records ``(time, signal-name, value)`` tuples for committed changes.

    Attach with ``sim.trace = Trace(signals)``; only watched signals are
    recorded so large simulations stay cheap.  With ``autowatch=True``
    the trace starts empty and every signal subsequently created on that
    simulator is watched automatically (the mechanism behind the CLI's
    ``--trace-vcd`` flag).

    Usage::

        sim.trace = Trace([chan.enq.valid, chan.enq.ready])
        sim.run(until=10_000)
        sim.trace.values_at(500)   # -> {"ch.enq.valid": 1, ...}
    """

    def __init__(self, signals: Iterable = (), *, autowatch: bool = False):
        self.signals: list = []
        self.autowatch = autowatch
        self._watched: set[int] = set()
        self._labels: dict[int, str] = {}
        self.changes: list[tuple[int, str, Any]] = []
        for sig in signals:
            self.watch(sig)

    def watch(self, signal) -> None:
        """Add a signal to the watch list, seeding its current value."""
        if id(signal) in self._watched:
            return
        self.signals.append(signal)
        self._watched.add(id(signal))
        # Label by full design path ("chip.pe3.r0") when the signal was
        # created inside a design scope; resolved once here so record()
        # stays a dict lookup.
        label = getattr(signal, "path", None) or signal.name
        self._labels[id(signal)] = label
        # Seed so values_at() is total even before the first change.
        self.changes.append((0, label, signal.read()))

    def record(self, now: int, signal) -> None:
        """Called by the kernel's update phase on every committed change."""
        if id(signal) in self._watched:
            self.changes.append((now, self._labels[id(signal)], signal.read()))

    def values_at(self, t: int) -> dict[str, Any]:
        """Reconstruct the value of every watched signal at time ``t``.

        Changes are sorted by timestamp first (stably, so same-time
        changes keep recording order and the last write wins), making
        the reconstruction correct even when entries were recorded out
        of time order — e.g. seeds added by :meth:`watch` mid-run.
        """
        state: dict[str, Any] = {}
        for when, name, value in sorted(self.changes, key=lambda c: c[0]):
            if when > t:
                break
            state[name] = value
        return state


def _vcd_id(index: int) -> str:
    """Map an integer to a compact printable VCD identifier."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out = chars[rem] + out
    return out


def write_vcd(trace: Trace, fh: IO[str], *, timescale: str = "1ps") -> None:
    """Write a recorded trace as a GTKWave-loadable VCD file.

    Integer (and bool) values are emitted as binary vectors masked to
    the signal's declared width — negative values therefore appear in
    two's complement, like RTL.  Any other value is emitted as a VCD
    string change (``s<value>``); spaces inside the value are replaced
    with underscores because a space would terminate the value token and
    corrupt the file.

    Usage::

        with open("out.vcd", "w") as fh:
            write_vcd(sim.trace, fh)
    """
    def label(sig):
        return getattr(sig, "path", None) or sig.name

    ids = {label(sig): _vcd_id(i) for i, sig in enumerate(trace.signals)}
    widths = {label(sig): getattr(sig, "width", 32)
              for sig in trace.signals}
    fh.write(f"$timescale {timescale} $end\n$scope module repro $end\n")
    for name, vid in ids.items():
        fh.write(f"$var wire {widths[name]} {vid} {name} $end\n")
    fh.write("$upscope $end\n$enddefinitions $end\n")
    last_time = None
    for when, name, value in sorted(trace.changes, key=lambda c: c[0]):
        if when != last_time:
            fh.write(f"#{when}\n")
            last_time = when
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            fh.write(f"b{value & ((1 << widths[name]) - 1):b} {ids[name]}\n")
        else:
            text = str(value).replace(" ", "_")
            fh.write(f"s{text} {ids[name]}\n")


@dataclass
class WallClock:
    """Context manager measuring wall time (for Figure 6 speedup runs).

    Usage::

        with WallClock() as wc:
            sim.run(until=1_000_000)
        print(f"{wc.elapsed:.3f} s")
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
