"""Waveform tracing and simulation statistics.

``Trace`` records committed signal changes; ``write_vcd`` emits a
Value-Change-Dump file viewable in GTKWave — the debug path the paper's
FSDB traces serve in the commercial flow (Figure 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, IO

__all__ = ["Trace", "write_vcd", "WallClock"]


class Trace:
    """Records (time, signal-name, value) tuples for committed changes.

    Attach with ``sim.trace = Trace(signals)``; only listed signals are
    recorded so large simulations stay cheap.
    """

    def __init__(self, signals):
        self.signals = list(signals)
        self._watched = {id(s) for s in self.signals}
        self.changes: list[tuple[int, str, Any]] = []
        # Seed with initial values at t=0.
        for sig in self.signals:
            self.changes.append((0, sig.name, sig.read()))

    def record(self, now: int, signal) -> None:
        if id(signal) in self._watched:
            self.changes.append((now, signal.name, signal.read()))

    def values_at(self, t: int) -> dict[str, Any]:
        """Reconstruct the value of every watched signal at time ``t``."""
        state: dict[str, Any] = {}
        for when, name, value in self.changes:
            if when > t:
                break
            state[name] = value
        return state


def _vcd_id(index: int) -> str:
    """Map an integer to a compact printable VCD identifier."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out = chars[rem] + out
    return out


def write_vcd(trace: Trace, fh: IO[str], *, timescale: str = "1ps") -> None:
    """Write a recorded trace as a VCD file."""
    ids = {sig.name: _vcd_id(i) for i, sig in enumerate(trace.signals)}
    widths = {sig.name: getattr(sig, "width", 32) for sig in trace.signals}
    fh.write(f"$timescale {timescale} $end\n$scope module repro $end\n")
    for name, vid in ids.items():
        fh.write(f"$var wire {widths[name]} {vid} {name} $end\n")
    fh.write("$upscope $end\n$enddefinitions $end\n")
    last_time = None
    for when, name, value in sorted(trace.changes, key=lambda c: c[0]):
        if when != last_time:
            fh.write(f"#{when}\n")
            last_time = when
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            fh.write(f"b{value & ((1 << widths[name]) - 1):b} {ids[name]}\n")
        else:
            fh.write(f"s{value!r} {ids[name]}\n".replace(" ", "_", 0))


@dataclass
class WallClock:
    """Context manager measuring wall time (for Figure 6 speedup runs)."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
