"""Clocks, including pausible/adaptive clocks for fine-grained GALS.

A :class:`Clock` produces posedge events for the simulator.  Two
features beyond a plain synchronous clock support the paper's GALS
methodology (section 3.1):

* a per-edge ``generator`` callback can modulate the period cycle by
  cycle — this is how :mod:`repro.gals.clock_generator` models local
  adaptive clock generators tracking supply noise, and
* :meth:`pause_until` lets pausible-synchronizer logic stretch the next
  edge past a metastability window, the core mechanism of the pausible
  bisynchronous FIFO [Keller ASYNC'15].

Scheduling lanes (see ``docs/PERFORMANCE.md``):

* **fast lane** — periodic clocks (``generator is None``) keep their
  next-edge time in :attr:`next_edge`; the simulator consults it
  directly against the event-heap top, so a posedge costs no heap
  push/pop and no closure allocation.  Pauses are handled inline.
* **general lane** — clocks with a ``generator`` reschedule themselves
  through the simulator's timed-event heap exactly as a delayed
  callback would, because every edge needs the generator to compute the
  next period.  This keeps adaptive/pausible GALS clocking behaviour
  bit-identical to the pre-fast-lane kernel.

Sleeping threads are filed in per-clock *wakeup buckets* keyed by the
absolute cycle number at which they resume (``cycles + n`` for a thread
yielding ``n``), so a sleeping thread costs zero work per edge.  Both
lanes share the buckets.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Clock"]


class Clock:
    """A self-scheduling clock source.

    Do not construct directly; use :meth:`Simulator.add_clock`.
    """

    __slots__ = (
        "sim",
        "name",
        "period",
        "cycles",
        "generator",
        "next_edge",
        "_seq",
        "_wakeups",
        "_next_wakeup",
        "_callbacks",
        "_pause_until",
        "_stopped",
        "paused_edges",
        "total_pause_time",
    )

    def __init__(self, sim, name: str, period: int, *, start: int = 0, generator=None):
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        self.sim = sim
        self.name = name
        self.period = period
        self.cycles = 0
        self.generator: Optional[Callable[["Clock"], int]] = generator
        #: Wakeup buckets: absolute cycle number -> threads resuming there.
        self._wakeups: dict[int, list] = {}
        self._next_wakeup: Optional[int] = None  # min key of _wakeups
        self._callbacks: list[Callable[["Clock"], None]] = []
        self._pause_until = 0
        self._stopped = False
        self.paused_edges = 0
        self.total_pause_time = 0
        if generator is None:
            # Fast lane: the simulator polls next_edge, no heap events.
            self.next_edge = sim.now + start
            self._seq = next(sim._seq)
            sim._fast_clocks.append(self)
        else:
            self.next_edge = None
            self._seq = 0
            sim.schedule(start, self._edge)

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def _subscribe(self, thread, edges: int = 1) -> None:
        """File ``thread`` to resume ``edges`` posedges from now."""
        at = self.cycles + edges
        bucket = self._wakeups.get(at)
        if bucket is None:
            self._wakeups[at] = [thread]
            if self._next_wakeup is None or at < self._next_wakeup:
                self._next_wakeup = at
        else:
            bucket.append(thread)

    def on_edge(self, fn: Callable[["Clock"], None]) -> None:
        """Register a callback invoked at every posedge, before threads.

        Used for per-cycle bookkeeping (channel cores, stall injectors,
        statistics) that must observe state ahead of thread wakeups.
        A clock with callbacks executes every posedge individually and
        is never bulk-skipped.
        """
        self._callbacks.append(fn)

    # ------------------------------------------------------------------
    # edge machinery
    # ------------------------------------------------------------------
    def _wake_bucket(self) -> None:
        """Make every thread due at the current cycle runnable."""
        waiters = self._wakeups.pop(self.cycles, None)
        if waiters is None:
            return
        make_runnable = self.sim._make_runnable
        for thread in waiters:
            make_runnable(thread)
        if self._next_wakeup == self.cycles:
            self._next_wakeup = min(self._wakeups) if self._wakeups else None

    def _edge(self) -> None:
        """General-lane posedge: a timed event popped off the heap."""
        if self._stopped:
            return
        if self.sim.now < self._pause_until:
            # Pausible clocking: the synchronizer is holding the clock low;
            # retry the edge once the blackout window has passed.
            self.paused_edges += 1
            self.total_pause_time += self._pause_until - self.sim.now
            self.sim.schedule(self._pause_until - self.sim.now, self._edge)
            return
        self.cycles += 1
        for fn in self._callbacks:
            fn(self)
        self._wake_bucket()
        next_period = self.period
        if self.generator is not None:
            next_period = int(self.generator(self))
            if next_period <= 0:
                raise ValueError(
                    f"clock {self.name!r} generator produced period {next_period}"
                )
        self.sim.schedule(next_period, self._edge)

    def _fast_edge(self) -> None:
        """Fast-lane posedge: fired by the simulator at ``next_edge``."""
        sim = self.sim
        if self._stopped:
            return
        if sim.now < self._pause_until:
            self.paused_edges += 1
            self.total_pause_time += self._pause_until - sim.now
            self.next_edge = self._pause_until
            self._seq = next(sim._seq)
            return
        self.cycles += 1
        for fn in self._callbacks:
            fn(self)
        if self._wakeups:
            self._wake_bucket()
        self.next_edge = sim.now + self.period
        self._seq = next(sim._seq)

    def _next_time(self) -> Optional[int]:
        """Next timestamp at which this fast clock needs the simulator.

        ``None`` means "never" (stopped, or idle with no pending wakeup
        — the simulator bulk-advances the cycle counter as time passes,
        see :meth:`_advance_idle`).  A clock with edge callbacks, or a
        pending pause to resolve, needs every posedge executed.
        """
        if self._stopped:
            return None
        if self._callbacks or self._pause_until > self.next_edge:
            return self.next_edge
        nw = self._next_wakeup
        if nw is None:
            return None
        # Idle-skip: the next interesting edge is the wakeup bucket's.
        return self.next_edge + (nw - self.cycles - 1) * self.period

    def _advance_idle(self, last: int, kstats) -> None:
        """Bulk-advance every posedge with timestamp <= ``last``.

        Only called for fast-lane clocks with no edge callbacks when no
        wakeup bucket falls inside the range, so the skipped edges have
        no observable work: the cycle counter, pause bookkeeping, and
        (when telemetry is on) the per-edge event/timestep counters
        advance exactly as if each edge had executed individually.
        """
        n = 0
        while not self._stopped and self.next_edge <= last:
            if self._pause_until > self.next_edge:
                # The edge at next_edge defers itself to the pause end.
                self.paused_edges += 1
                self.total_pause_time += self._pause_until - self.next_edge
                self.next_edge = self._pause_until
                n += 1
                continue
            k = (last - self.next_edge) // self.period + 1
            self.cycles += k
            self.next_edge += k * self.period
            n += k
        if kstats is not None and n:
            kstats.events_fired += n
            kstats.timesteps += n

    # ------------------------------------------------------------------
    # GALS controls
    # ------------------------------------------------------------------
    def pause_until(self, time: int) -> None:
        """Forbid posedges before ``time`` (pausible clocking)."""
        if time > self._pause_until:
            self._pause_until = time

    def set_period(self, period: int) -> None:
        """Change the nominal period for subsequent cycles (DVFS).

        The already-committed next edge keeps its time; the new period
        applies from the edge after it, as with the heap-scheduled
        kernel.
        """
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        self.period = period

    def stop(self) -> None:
        """Permanently stop this clock (drains the event queue faster).

        Threads still filed in wakeup buckets never resume — exactly the
        pre-fast-lane behaviour of threads waiting on a stopped clock.
        """
        self._stopped = True

    @property
    def frequency_ghz(self) -> float:
        """Nominal frequency assuming 1 tick = 1 ps."""
        return 1000.0 / self.period

    @property
    def pending_wakeups(self) -> int:
        """Threads currently filed in this clock's wakeup buckets."""
        return sum(len(b) for b in self._wakeups.values())

    def activity(self) -> dict:
        """Per-domain activity counters as a serializable dict
        (cycles ticked, pausible-clocking pauses and blackout time)."""
        return {
            "name": self.name,
            "period": self.period,
            "cycles": self.cycles,
            "paused_edges": self.paused_edges,
            "total_pause_time": self.total_pause_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock({self.name!r}, period={self.period}, cycles={self.cycles})"
