"""Clocks, including pausible/adaptive clocks for fine-grained GALS.

A :class:`Clock` schedules its own posedge events in the simulator.  Two
features beyond a plain synchronous clock support the paper's GALS
methodology (section 3.1):

* a per-edge ``generator`` callback can modulate the period cycle by
  cycle — this is how :mod:`repro.gals.clock_generator` models local
  adaptive clock generators tracking supply noise, and
* :meth:`pause_until` lets pausible-synchronizer logic stretch the next
  edge past a metastability window, the core mechanism of the pausible
  bisynchronous FIFO [Keller ASYNC'15].
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Clock"]


class Clock:
    """A self-scheduling clock source.

    Do not construct directly; use :meth:`Simulator.add_clock`.
    """

    __slots__ = (
        "sim",
        "name",
        "period",
        "cycles",
        "generator",
        "_waiting",
        "_callbacks",
        "_pause_until",
        "_stopped",
        "paused_edges",
        "total_pause_time",
    )

    def __init__(self, sim, name: str, period: int, *, start: int = 0, generator=None):
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        self.sim = sim
        self.name = name
        self.period = period
        self.cycles = 0
        self.generator: Optional[Callable[["Clock"], int]] = generator
        self._waiting: list = []
        self._callbacks: list[Callable[["Clock"], None]] = []
        self._pause_until = 0
        self._stopped = False
        self.paused_edges = 0
        self.total_pause_time = 0
        sim.schedule(start, self._edge)

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def _subscribe(self, thread) -> None:
        self._waiting.append(thread)

    def on_edge(self, fn: Callable[["Clock"], None]) -> None:
        """Register a callback invoked at every posedge, before threads.

        Used for per-cycle bookkeeping (channel cores, stall injectors,
        statistics) that must observe state ahead of thread wakeups.
        """
        self._callbacks.append(fn)

    # ------------------------------------------------------------------
    # edge machinery
    # ------------------------------------------------------------------
    def _edge(self) -> None:
        if self._stopped:
            return
        if self.sim.now < self._pause_until:
            # Pausible clocking: the synchronizer is holding the clock low;
            # retry the edge once the blackout window has passed.
            self.paused_edges += 1
            self.total_pause_time += self._pause_until - self.sim.now
            self.sim.schedule(self._pause_until - self.sim.now, self._edge)
            return
        self.cycles += 1
        for fn in self._callbacks:
            fn(self)
        if self._waiting:
            still_waiting = []
            for thread in self._waiting:
                thread._edges_left -= 1
                if thread._edges_left <= 0:
                    self.sim._make_runnable(thread)
                else:
                    still_waiting.append(thread)
            self._waiting = still_waiting
        next_period = self.period
        if self.generator is not None:
            next_period = int(self.generator(self))
            if next_period <= 0:
                raise ValueError(
                    f"clock {self.name!r} generator produced period {next_period}"
                )
        self.sim.schedule(next_period, self._edge)

    # ------------------------------------------------------------------
    # GALS controls
    # ------------------------------------------------------------------
    def pause_until(self, time: int) -> None:
        """Forbid posedges before ``time`` (pausible clocking)."""
        if time > self._pause_until:
            self._pause_until = time

    def set_period(self, period: int) -> None:
        """Change the nominal period for subsequent cycles (DVFS)."""
        if period <= 0:
            raise ValueError(f"clock period must be positive, got {period}")
        self.period = period

    def stop(self) -> None:
        """Permanently stop this clock (drains the event queue faster)."""
        self._stopped = True

    @property
    def frequency_ghz(self) -> float:
        """Nominal frequency assuming 1 tick = 1 ps."""
        return 1000.0 / self.period

    def activity(self) -> dict:
        """Per-domain activity counters as a serializable dict
        (cycles ticked, pausible-clocking pauses and blackout time)."""
        return {
            "name": self.name,
            "period": self.period,
            "cycles": self.cycles,
            "paused_edges": self.paused_edges,
            "total_pause_time": self.total_pause_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock({self.name!r}, period={self.period}, cycles={self.cycles})"
