"""Simulation kernel: the SystemC stand-in underlying the whole flow.

Public API::

    from repro.kernel import Simulator, Signal, BitSignal, BusSignal

    sim = Simulator()
    clk = sim.add_clock("clk", period=1000)   # 1 GHz at 1 tick = 1 ps

    def producer():
        for i in range(10):
            data.write(i)
            yield            # wait one posedge

    data = Signal(sim, name="data")
    sim.add_thread(producer(), clk, name="producer")
    sim.run(until=100_000)
"""

from .backend import BACKENDS, default_backend, last_run, use_backend
from .clock import Clock
from .signal import BitSignal, BusSignal, Signal
from .simulator import (
    DeltaOverflow,
    Event,
    Gate,
    Method,
    SimulationError,
    Simulator,
    Thread,
    TimeBudgetExceeded,
    time_budget,
)
from .snapshot import Snapshot, SnapshotError
from .tracing import Trace, WallClock, write_vcd

__all__ = [
    "Simulator",
    "Signal",
    "BitSignal",
    "BusSignal",
    "Clock",
    "Event",
    "Gate",
    "Thread",
    "Method",
    "Trace",
    "WallClock",
    "write_vcd",
    "SimulationError",
    "DeltaOverflow",
    "TimeBudgetExceeded",
    "time_budget",
    "Snapshot",
    "SnapshotError",
    "BACKENDS",
    "use_backend",
    "default_backend",
    "last_run",
]
