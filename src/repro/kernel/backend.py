"""Backend selection for the simulation kernel.

Two execution backends share one modelling API (see
``docs/COMPILED_BACKEND.md``):

* ``"threaded"`` — the event-driven scheduler in
  :mod:`repro.kernel.simulator`: generator threads resumed through the
  delta loop every cycle.  Always available; the semantic reference.
* ``"compiled"`` — the graph-compiled dispatch loop in
  :mod:`repro.compile`: the elaborated design is lowered to a static
  node schedule and executed by a flat per-edge loop that parks idle
  threads and skips idle channels.  Attaches only when a capability
  check proves the design uses supported constructs; otherwise the
  simulator silently runs threaded and records the reason.

Selection is ambient so experiment code does not need to thread a
``backend=`` argument through every ``Simulator()`` construction::

    from repro.kernel import use_backend

    with use_backend("compiled"):
        result = run_pe_scaling_point(n_pes=4, n_per_pe=64, mode="fast")

The module also keeps a process-local record of the most recent run's
backend, which ``python -m repro stats`` surfaces as a provenance line.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

__all__ = ["BACKENDS", "use_backend", "default_backend", "resolve_backend",
           "record_run", "last_run"]

#: The recognised backend names.
BACKENDS = ("threaded", "compiled")

#: Ambient default used by ``Simulator()`` when no explicit backend is
#: passed.  A plain module global: sweeps run points in worker processes,
#: each of which re-establishes its own ambient via :func:`use_backend`.
_DEFAULT = "threaded"

#: Most recent run's provenance: ``(backend, fallback_reason)``.
_LAST_RUN: tuple[str, Optional[str]] = ("threaded", None)


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend name, or return the ambient default."""
    if backend is None:
        return _DEFAULT
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (choose from {'/'.join(BACKENDS)})")
    return backend


def default_backend() -> str:
    """The ambient backend new simulators pick up."""
    return _DEFAULT


@contextmanager
def use_backend(backend: str):
    """Set the ambient backend for simulators constructed in the block."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = resolve_backend(backend)
    try:
        yield
    finally:
        _DEFAULT = previous


def record_run(backend: str, fallback_reason: Optional[str] = None) -> None:
    """Note which backend executed the most recent simulation run."""
    global _LAST_RUN
    _LAST_RUN = (backend, fallback_reason)


def last_run() -> tuple[str, Optional[str]]:
    """``(backend, fallback_reason)`` of the most recent simulation run."""
    return _LAST_RUN
