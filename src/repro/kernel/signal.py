"""Signals with SystemC evaluate/update semantics.

A :class:`Signal` holds a committed value readable by any process and a
pending value set by ``write``.  Writes become visible only after the
current delta cycle's evaluate phase — exactly the ``sc_signal``
discipline that makes RTL-style models race-free.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar

__all__ = ["Signal", "BitSignal", "BusSignal"]

T = TypeVar("T")


class Signal(Generic[T]):
    """A single driver/multi-reader signal with deferred update."""

    __slots__ = ("sim", "name", "_value", "_next", "_dirty", "_watchers",
                 "_dirty_list", "_owner", "__weakref__")

    def __init__(self, sim, init: T = 0, name: str = "sig"):
        self.sim = sim
        self.name = name
        # Design-hierarchy owner (None when built outside any scope —
        # such testbench-local signals are not retained by the hierarchy
        # and stay garbage-collectable).
        design = getattr(sim, "design", None)
        self._owner = design.register_signal(self) if design is not None \
            else None
        self._value: T = init
        self._next: T = init
        self._dirty = False
        # Methods sensitive to this signal (None until the first one is
        # registered).  The list lives on the signal itself, so the link
        # is a strong reference keyed by identity — a dropped signal can
        # never alias another signal's sensitivity list.
        self._watchers = None
        # Direct reference to the simulator's dirty list; its identity is
        # stable for the simulator's lifetime (the delta loop clears it in
        # place), so ``write`` can append without a method call.
        self._dirty_list = sim._dirty_signals
        # Elaboration-time only: auto-watching traces (--trace-vcd) pick
        # up every signal as it is created.
        trace = getattr(sim, "trace", None)
        if trace is not None and getattr(trace, "autowatch", False):
            trace.watch(self)
        # Weak registration so snapshot/restore can enumerate signals
        # without pinning testbench-local ones (repro.kernel.snapshot).
        registry = getattr(sim, "_snap_signals", None)
        if registry is not None:
            import weakref

            registry.append(weakref.ref(self))

    def read(self) -> T:
        """Return the committed value (the value as of the last delta)."""
        return self._value

    def write(self, value: T) -> None:
        """Schedule ``value`` to commit at the end of this delta cycle."""
        self._next = value
        if not self._dirty:
            self._dirty = True
            self._dirty_list.append(self)

    def _commit(self) -> bool:
        """Commit the pending write.  Returns True if the value changed."""
        self._dirty = False
        if self._next != self._value:
            self._value = self._next
            return True
        return False

    # Convenience sugar so handshake code reads naturally.
    @property
    def value(self) -> T:
        return self._value

    @property
    def path(self) -> str:
        """Hierarchical dotted path (equals ``name`` outside any scope)."""
        owner = self._owner
        return owner.join(self.name) if owner is not None else self.name

    def __bool__(self) -> bool:
        return bool(self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}={self._value!r})"


class BitSignal(Signal[int]):
    """A 1-bit signal (valid/ready wires).  Values are 0/1."""

    def __init__(self, sim, init: int = 0, name: str = "bit"):
        super().__init__(sim, int(bool(init)), name)

    def write(self, value: int) -> None:
        # Flattened (no super() hop): this is the RTL-mode hot path.
        self._next = 1 if value else 0
        if not self._dirty:
            self._dirty = True
            self._dirty_list.append(self)


class BusSignal(Signal[int]):
    """An n-bit bus signal; writes are masked to the declared width."""

    __slots__ = ("width", "_mask")

    def __init__(self, sim, width: int, init: int = 0, name: str = "bus"):
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        self.width = width
        self._mask = (1 << width) - 1
        super().__init__(sim, init & self._mask, name)

    def write(self, value: int) -> None:
        # Flattened (no super() hop): this is the RTL-mode hot path.
        self._next = value & self._mask
        if not self._dirty:
            self._dirty = True
            self._dirty_list.append(self)
