"""Event-driven simulation kernel with delta cycles and multiple clocks.

This module is the reproduction's stand-in for the SystemC simulation
kernel used by the paper's OOHLS flow.  It provides the same modelling
vocabulary:

* :class:`Simulator` — the scheduler: an integer-time event queue plus a
  delta-cycle loop per timestep, mirroring SystemC's evaluate/update
  semantics.
* clocked threads (``SC_CTHREAD`` analogs) — Python generators that
  ``yield`` to wait for posedges of their clock,
* combinational methods (``SC_METHOD`` analogs) — plain functions with a
  signal sensitivity list, re-run whenever a sensitive signal changes,
* :class:`Event` — explicit notification objects for thread wakeups.

Signals live in :mod:`repro.kernel.signal` and clocks in
:mod:`repro.kernel.clock`; both cooperate with the scheduler defined here.

The kernel deliberately uses integer timestamps (abstract "ticks", by
convention 1 tick = 1 ps) so that globally-asynchronous clock domains with
irrational-looking period ratios still compare exactly.

Scheduler hot path (see ``docs/PERFORMANCE.md`` for the design):

* periodic clocks (no generator) live on a **fast lane** — a flat list
  whose next-edge times are compared against the heap top each timestep,
  so a posedge costs no heap churn and no closure allocation;
* threads yielding ``n`` cycles are filed in per-clock **wakeup
  buckets** keyed by absolute cycle number — a sleeping thread costs
  zero work per edge;
* method sensitivity is stored **on the signal objects themselves**
  (``Signal._watchers``), so a commit wakes its methods without a dict
  lookup — and without the use-after-free hazard of an ``id()``-keyed
  side table;
* an **idle-skip** bulk-advances callback-free clocks over edges where
  no thread wakes, no method runs, and no timed event fires.

All fast paths are semantics-preserving: firing order is kept identical
to the heap-scheduled kernel by stamping fast-lane edges with the same
monotonic sequence numbers timed events use and merging the two sources
per timestamp.
"""

from __future__ import annotations

import heapq
import itertools
import time
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable, Optional

from ..design.hierarchy import Hierarchy
from ..observe.core import attach_if_enabled

__all__ = [
    "Simulator",
    "Event",
    "Gate",
    "Thread",
    "Method",
    "SimulationError",
    "DeltaOverflow",
    "TimeBudgetExceeded",
    "time_budget",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeltaOverflow(SimulationError):
    """Raised when a timestep fails to converge (combinational loop)."""


class TimeBudgetExceeded(SimulationError):
    """Raised when a simulation overruns an ambient wall-clock budget."""


#: Stack of monotonic deadlines armed by :func:`time_budget`.  The
#: scheduler checks the innermost deadline once per timestep, so a
#: wedged simulation stops with :class:`TimeBudgetExceeded` even where
#: SIGALRM is unusable (non-main threads, non-POSIX platforms).  The
#: list identity is stable — hot loops may hoist a reference to it.
_TIME_BUDGET: list = []

_monotonic = time.monotonic


@contextmanager
def time_budget(seconds: float):
    """Bound any simulation run inside the block to ``seconds`` of wall
    clock.

    Cooperative (checked between scheduler timesteps): pure-Python code
    that never re-enters the kernel is not interrupted.  Budgets nest;
    the innermost deadline armed *before* a run starts is the one that
    run honours.
    """
    if seconds is None or seconds <= 0:
        raise ValueError(f"time budget must be positive, got {seconds}")
    deadline = _monotonic() + float(seconds)
    _TIME_BUDGET.append(deadline)
    try:
        yield
    finally:
        _TIME_BUDGET.remove(deadline)


class Event:
    """A notification object threads can wait on.

    Mirrors ``sc_event``: ``notify()`` wakes waiters in the next delta of
    the current timestep; ``notify_at(delay)`` wakes them ``delay`` ticks
    in the future.
    """

    __slots__ = ("sim", "name", "_waiters", "__weakref__")

    def __init__(self, sim: "Simulator", name: str = "event"):
        self.sim = sim
        self.name = name
        self._waiters: list[Thread] = []
        # Weak registration so snapshot/restore can enumerate events
        # without pinning testbench-local ones (see .snapshot).
        registry = getattr(sim, "_snap_events", None)
        if registry is not None:
            import weakref

            registry.append(weakref.ref(self))

    def notify(self) -> None:
        """Wake every waiting thread in the next delta cycle."""
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for thread in waiters:
                self.sim._make_runnable(thread)

    def notify_at(self, delay: int) -> None:
        """Wake every waiting thread ``delay`` ticks from now."""
        self.sim.schedule(delay, self.notify)

    def _subscribe(self, thread: "Thread") -> None:
        self._waiters.append(thread)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class Gate:
    """A declared idle-wait point for a thread's polling loop.

    Under the threaded kernel ``yield gate`` is *exactly* ``yield``: the
    thread waits one posedge and re-checks its condition, so components
    that adopt gates simulate byte-identically to bare polling.  The
    compiled backend (:mod:`repro.compile`) instead *parks* a thread that
    yields its gate — the thread keeps its scheduling slot but is not
    resumed again until :meth:`open` is called (by a message handler, or
    by the engine when a watched channel delivers data).  A spurious
    :meth:`open` only costs one extra poll iteration, never correctness,
    because the waiting loop re-checks its condition on every resume.
    """

    __slots__ = ("_open", "_waiters")

    def __init__(self) -> None:
        self._open = False
        # Compiled-engine handoff: ``(engine, [entries])`` while threads
        # are parked here, else None.  The threaded kernel never sets it.
        self._waiters = None

    def open(self) -> None:
        """Wake the parked owner (no-op under the threaded kernel)."""
        self._open = True
        waiters = self._waiters
        if waiters is not None:
            self._waiters = None
            waiters[0]._unpark(waiters[1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gate(open={self._open})"


class Thread:
    """A clocked simulation thread (``SC_CTHREAD`` analog).

    The body is a Python generator.  Yield values:

    * ``None`` — wait one posedge of the thread's clock,
    * a positive ``int`` n — wait n posedges,
    * a :class:`Gate` — wait one posedge (a parkable idle marker),
    * an :class:`Event` — wait until the event is notified.

    Subroutines compose with ``yield from``.

    ``factory`` is the zero-argument callable the generator came from
    when the thread was registered factory-style (see
    :meth:`Simulator.add_thread`); snapshot restore re-creates the
    generator by calling it again.  Threads registered from a raw
    generator object carry ``factory = None`` and make their simulator
    snapshot-ineligible (generators cannot be copied).
    """

    __slots__ = ("sim", "gen", "clock", "name", "done", "factory")

    def __init__(self, sim: "Simulator", gen: Generator, clock, name: str,
                 factory: Optional[Callable[[], Generator]] = None):
        self.sim = sim
        self.gen = gen
        self.clock = clock
        self.name = name
        self.done = False
        self.factory = factory

    def _resume(self) -> None:
        """Advance the generator to its next wait point."""
        try:
            request = next(self.gen)
        except StopIteration:
            self.done = True
            self.sim._thread_finished(self)
            return
        if request is None or type(request) is Gate:
            # A Gate is the threaded kernel's plain one-posedge wait; only
            # the compiled engine gives it parking semantics.
            self.clock._subscribe(self)
            return
        if type(request) is int:
            if request <= 0:
                raise SimulationError(
                    f"thread {self.name!r} yielded non-positive wait {request}"
                )
            if self.clock is None:
                raise SimulationError(
                    f"thread {self.name!r} has no clock but yielded a cycle wait"
                )
            self.clock._subscribe(self, request)
        elif isinstance(request, Event):
            request._subscribe(self)
        elif isinstance(request, int):  # bool/IntEnum yields
            self.clock._subscribe(self, int(request))
        else:
            raise SimulationError(
                f"thread {self.name!r} yielded unsupported value {request!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Thread({self.name!r}, done={self.done})"


class Method:
    """A combinational process (``SC_METHOD`` analog).

    The function is invoked once at elaboration and re-invoked in a new
    delta cycle whenever any signal in its sensitivity list changes value.
    """

    __slots__ = ("fn", "name", "_queued")

    def __init__(self, fn: Callable[[], None], name: str):
        self.fn = fn
        self.name = name
        self._queued = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Method({self.name!r})"


class Simulator:
    """The event-driven scheduler.

    Typical use::

        sim = Simulator()
        clk = sim.add_clock("clk", period=1000)
        sim.add_thread(producer(), clk, name="producer")
        sim.run(until=1_000_000)

    Timestep execution order (mirrors SystemC):

    1. fire all timed events scheduled for the current timestamp
       (clock edges, delayed notifications) in scheduling order,
    2. delta loop: run runnable threads and methods, then commit signal
       updates; signals that changed wake their sensitive methods in the
       next delta; repeat until quiescent.

    ``telemetry=True`` attaches a :class:`~repro.observe.core.TelemetryHub`
    that profiles the kernel itself (events fired, delta cycles, thread
    wakeups, per-thread wall time) and lets channels/meshes register
    their own counters; with the default ``telemetry=None`` the hub is
    attached only inside an :func:`repro.observe.capture` window, and
    the disabled path costs one ``is None`` check per hook site.
    Snapshot with :func:`repro.observe.collect`.
    """

    #: Safety valve against unstable combinational loops.
    MAX_DELTAS_PER_STEP = 1000

    def __init__(self, *, telemetry: Optional[bool] = None,
                 backend: Optional[str] = None) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._runnable: list = []
        self._runnable_set: set = set()
        # Signals cache a direct reference to this list (Signal._dirty_list),
        # so its identity must stay stable: the delta loop clears it in
        # place instead of rebinding it.
        self._dirty_signals: list = []
        self._threads: list[Thread] = []
        self._clocks: list = []
        #: Periodic clocks on the fast lane (no per-edge heap events).
        self._fast_clocks: list = []
        self._started = False
        self._finished_threads = 0
        self.trace = None  # optional Trace object (see tracing.py)
        #: Progress watchdog (see repro.faults.watchdog) or None.  Like
        #: telemetry, None keeps every hook at zero overhead; attaching
        #: one routes the delta loop through the instrumented variant so
        #: blocking ports can identify the running thread.
        self.watchdog = None
        #: Thread currently being resumed (instrumented delta loop only).
        self._current: Optional[Thread] = None
        #: Design hierarchy under construction (see repro.design).  All
        #: registration is construction-time; the scheduler never reads it.
        self.design = Hierarchy(self)
        # TelemetryHub or None; None keeps every hook at zero overhead.
        self.telemetry = attach_if_enabled(self, telemetry)
        # Execution backend (see repro.kernel.backend / repro.compile).
        # ``backend`` overrides the ambient default; "compiled" requests
        # the graph-compiled dispatch loop, which attaches lazily at the
        # first run and falls back to this threaded kernel whenever the
        # design uses a construct it cannot prove equivalent.
        from .backend import resolve_backend

        self._backend_requested = resolve_backend(backend)
        self._engine = None          # CompiledEngine once attached
        self._backend_fallback: Optional[str] = None
        self._method_count = 0
        # Snapshot/restore support (see repro.kernel.snapshot).  The
        # weak registries let the base capture enumerate signals and
        # events without pinning testbench-local ones; ``_history``
        # records every coarse run call so a mid-run snapshot can be
        # replayed from the base state; ``_snap_base`` is the captured
        # base (None until enable_snapshots()).
        self._snap_signals: list = []
        self._snap_events: list = []
        self._history: list = []
        self._restore_hooks: list = []
        self._snap_base = None
        # Structural digest stamped by warm sweep sessions so
        # repro.compile.try_attach can consult the per-process
        # CompileCache (None = no caching).
        self._compile_cache_key: Optional[str] = None

    # ------------------------------------------------------------------
    # elaboration API
    # ------------------------------------------------------------------
    def add_clock(self, name: str, period: int, *, start: int = 0, generator=None):
        """Create and register a :class:`~repro.kernel.clock.Clock`.

        ``generator`` optionally supplies a per-edge period callback used
        by GALS local clock generators (jitter, adaptation, pausing);
        such clocks take the general heap-scheduled path, while plain
        periodic clocks ride the fast lane.
        """
        from .clock import Clock

        clock = Clock(self, name, period, start=start, generator=generator)
        self._clocks.append(clock)
        self.design.register_clock(clock)
        return clock

    def add_thread(self, gen, clock, *, name: str = "thread") -> Thread:
        """Register a clocked thread.

        ``gen`` is either a generator object or a **zero-argument
        factory** returning one.  The factory form is what makes a
        design snapshot-eligible (:meth:`enable_snapshots`): generators
        cannot be copied, so restore re-creates each thread's generator
        by calling its factory again.  Both forms behave identically
        otherwise.

        The thread first runs at the first posedge of ``clock`` after
        simulation start.
        """
        factory = None
        if callable(gen):
            factory = gen
            gen = factory()
        thread = Thread(self, gen, clock, name, factory)
        self._threads.append(thread)
        self.design.register_thread(thread, name)
        if clock is not None:
            clock._subscribe(thread)
        else:
            # Unclocked threads start in the first delta of time zero.
            self.schedule(0, lambda t=thread: self._make_runnable(t))
        return thread

    def add_method(
        self, fn: Callable[[], None], sensitive: Iterable, *, name: str = "method"
    ) -> Method:
        """Register a combinational method with a sensitivity list.

        The sensitivity link lives on the signal objects themselves
        (each keeps a strong reference to its methods), so dropping a
        signal can never alias another signal's watcher list.
        """
        method = Method(fn, name)
        self._method_count += 1
        for sig in sensitive:
            if sig._watchers is None:
                sig._watchers = [method]
            else:
                sig._watchers.append(method)
        # Run once at time zero to settle initial combinational state.
        self.schedule(0, lambda m=method: self._queue_method(m))
        return method

    def event(self, name: str = "event") -> Event:
        """Create a fresh :class:`Event`."""
        return Event(self, name)

    # ------------------------------------------------------------------
    # scheduling primitives (used by Clock / Signal / Event)
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (before that timestep's deltas)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), fn))

    def _make_runnable(self, proc) -> None:
        if id(proc) not in self._runnable_set:
            self._runnable_set.add(id(proc))
            self._runnable.append(proc)

    def _queue_method(self, method: Method) -> None:
        # ``_queued`` alone dedupes methods (it is set exactly while the
        # method sits in the pending runnable list), so no set lookup.
        if not method._queued:
            method._queued = True
            self._runnable.append(method)

    def _mark_dirty(self, signal) -> None:
        self._dirty_signals.append(signal)

    def _thread_finished(self, thread: Thread) -> None:
        self._finished_threads += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, *, max_steps: Optional[int] = None) -> int:
        """Run until the event queue drains or ``until`` ticks elapse.

        Returns the final simulation time.
        """
        self._history.append(("run", until, max_steps))
        return self._run(until, max_steps, None, 0)

    def run_cycles(self, clock, cycles: int) -> int:
        """Run until ``clock`` has ticked ``cycles`` more posedges.

        A single bounded run with an edge-count stop condition: the
        scheduler loop exits as soon as the target cycle count is
        reached (or the simulation runs out of work — e.g. the clock
        was stopped), without re-entering :meth:`run` per timestep.
        """
        if cycles <= 0:
            return self.now
        self._history.append(("run_cycles", self._clocks.index(clock), cycles))
        target = clock.cycles + cycles
        # Sentinel wakeup bucket: gives the idle-skip an exact horizon,
        # so even a clock with no waiters executes its target edge.
        if target not in clock._wakeups:
            clock._wakeups[target] = []
            if clock._next_wakeup is None or target < clock._next_wakeup:
                clock._next_wakeup = target
        return self._run(None, None, clock, target)

    def _run(self, until: Optional[int], max_steps: Optional[int],
             stop_clock, stop_cycles: int) -> int:
        """Core scheduler loop shared by :meth:`run` / :meth:`run_cycles`.

        Each iteration executes one timestep: the earliest timestamp
        owed by the timed-event heap or by a fast-lane clock edge.  All
        firings at that timestamp are merged in sequence-number order
        (identical to the fully heap-scheduled kernel), then delta
        cycles run until quiescent.

        With ``backend="compiled"`` the run is first offered to the
        compiled dispatch engine; if the engine declines (capability
        check) or detaches mid-run (a dynamic construct appeared), the
        loop below continues with whatever step budget remains.
        """
        if self._backend_requested == "compiled":
            outcome = self._compiled_run(until, max_steps,
                                         stop_clock, stop_cycles)
            if outcome is not None:
                done, executed = outcome
                if done:
                    return self.now
                if max_steps is not None:
                    max_steps -= executed
                    if max_steps <= 0:
                        return self.now
        steps = 0
        kstats = self.telemetry.kernel if self.telemetry is not None else None
        queue = self._queue
        fast = self._fast_clocks
        pop = heapq.heappop
        budget = _TIME_BUDGET  # stable list identity; usually empty
        # Flush writes/wakeups performed outside any process before running.
        self._delta_loop()
        while True:
            if budget and _monotonic() >= budget[-1]:
                raise TimeBudgetExceeded(
                    f"simulation at t={self.now} exceeded its wall-clock "
                    f"budget (see repro.kernel.time_budget)"
                )
            t = queue[0][0] if queue else None
            for clk in fast:
                ct = clk._next_time()
                if ct is not None and (t is None or ct < t):
                    t = ct
            if t is None:
                # No executable work left.  Idle periodic clocks still
                # tick silently up to the requested horizon.
                if until is not None:
                    for clk in fast:
                        if not clk._stopped:
                            self.now = until
                    for clk in fast:
                        clk._advance_idle(until, kstats)
                break
            if until is not None and t > until:
                self.now = until
                for clk in fast:
                    clk._advance_idle(until, kstats)
                break
            self.now = t
            due = None
            for clk in fast:
                ne = clk.next_edge
                if ne <= t and not clk._stopped:
                    if ne < t:
                        # Idle-skip: edges strictly before this timestep
                        # had no observable work by construction.
                        clk._advance_idle(t - 1, kstats)
                        ne = clk.next_edge
                    if ne == t:
                        if due is None:
                            due = [(clk._seq, clk._fast_edge)]
                        else:
                            due.append((clk._seq, clk._fast_edge))
            if due is not None:
                while queue and queue[0][0] == t:
                    item = pop(queue)
                    due.append((item[1], item[2]))
                if len(due) > 1:
                    due.sort()
                if kstats is not None:
                    kstats.events_fired += len(due)
                for _, fn in due:
                    fn()
                self._delta_loop()
            # Fire every remaining timed event at this timestamp,
            # interleaving delta loops so that zero-delay notifications
            # land in fresh deltas.
            while queue and queue[0][0] == t:
                while queue and queue[0][0] == t:
                    _, _, fn = pop(queue)
                    if kstats is not None:
                        kstats.events_fired += 1
                    fn()
                self._delta_loop()
            steps += 1
            if kstats is not None:
                kstats.timesteps += 1
            if max_steps is not None and steps >= max_steps:
                break
            if stop_clock is not None and stop_clock.cycles >= stop_cycles:
                break
        return self.now

    def _delta_loop(self) -> None:
        dirty = self._dirty_signals
        if not self._runnable and not dirty:
            return
        if self.telemetry is None and self.trace is None \
                and self.watchdog is None:
            # Fast variant: identical evaluate/update semantics with the
            # per-proc instrumentation branches and the _commit /
            # _queue_method calls flattened away.
            deltas = 0
            max_deltas = self.MAX_DELTAS_PER_STEP
            while self._runnable or dirty:
                deltas += 1
                if deltas > max_deltas:
                    raise DeltaOverflow(
                        f"timestep at t={self.now} did not converge after "
                        f"{max_deltas} delta cycles"
                    )
                current = self._runnable
                self._runnable = runnable = []
                self._runnable_set.clear()
                append = runnable.append
                for proc in current:
                    if proc.__class__ is Method:
                        proc._queued = False
                        proc.fn()
                    elif not proc.done:
                        proc._resume()
                # Update phase: commit signal writes, wake sensitive
                # methods.  No process runs here, so nothing appends to
                # ``dirty`` while it is iterated; clear it in place to
                # preserve its identity (signals cache a reference).
                if dirty:
                    for sig in dirty:
                        sig._dirty = False
                        nxt = sig._next
                        if nxt != sig._value:
                            sig._value = nxt
                            watchers = sig._watchers
                            if watchers:
                                for method in watchers:
                                    if not method._queued:
                                        method._queued = True
                                        append(method)
                    dirty.clear()
            return
        deltas = 0
        kstats = self.telemetry.kernel if self.telemetry is not None else None
        trace = self.trace
        while self._runnable or dirty:
            deltas += 1
            if deltas > self.MAX_DELTAS_PER_STEP:
                raise DeltaOverflow(
                    f"timestep at t={self.now} did not converge after "
                    f"{self.MAX_DELTAS_PER_STEP} delta cycles"
                )
            current, self._runnable = self._runnable, []
            self._runnable_set.clear()
            for proc in current:
                if isinstance(proc, Thread):
                    if proc.done:
                        continue
                    # Expose the running thread so blocking ports can
                    # attribute their handshake state to it (watchdog).
                    self._current = proc
                    if kstats is None:
                        proc._resume()
                    else:
                        kstats.thread_wakeups += 1
                        start = time.perf_counter()
                        proc._resume()
                        kstats.add_proc_time(
                            proc.name, time.perf_counter() - start)
                    self._current = None
                else:  # Method
                    proc._queued = False
                    if kstats is not None:
                        kstats.method_invocations += 1
                    proc.fn()
            # Update phase: commit signal writes, wake sensitive methods.
            if dirty:
                for sig in dirty:
                    if sig._commit():
                        if kstats is not None:
                            kstats.signal_commits += 1
                        if trace is not None:
                            trace.record(self.now, sig)
                        watchers = sig._watchers
                        if watchers:
                            for method in watchers:
                                self._queue_method(method)
                dirty.clear()
        if kstats is not None and deltas:
            kstats.delta_cycles += deltas
            if deltas > kstats.max_deltas_per_step:
                kstats.max_deltas_per_step = deltas

    def _compiled_run(self, until, max_steps, stop_clock, stop_cycles):
        """Offer this run to the compiled engine.

        Returns ``(done, steps_executed)`` when the engine ran, or
        ``None`` when the run must be (or continue to be) threaded.
        Lazy import: :mod:`repro.compile` depends on this module.
        """
        engine = self._engine
        if engine is None:
            if self._backend_fallback is not None:
                return None
            from ..compile import try_attach

            engine = try_attach(self)
            if engine is None:
                from .backend import record_run

                record_run("threaded", self._backend_fallback)
                return None
        if self._runnable:
            # Threads made runnable between runs (event notified outside
            # any process) must file into the wakeup bucket *after* the
            # pollers the engine manages, so let the threaded loop order
            # this boundary.
            engine.detach("runnable processes at a run boundary")
            return None
        self._delta_loop()  # commit stray writes before the first edge
        return engine.run(until, max_steps, stop_clock, stop_cycles)

    # ------------------------------------------------------------------
    # snapshot / restore (see repro.kernel.snapshot)
    # ------------------------------------------------------------------
    def enable_snapshots(self) -> None:
        """Capture the pre-run base state; must precede the first run.

        Validates eligibility (factory-registered threads, channels
        with the state protocol, no instrumentation) and raises
        :class:`~repro.kernel.snapshot.SnapshotError` listing every
        blocking construct otherwise.
        """
        from .snapshot import enable

        enable(self)

    def snapshot(self):
        """Return a :class:`~repro.kernel.snapshot.Snapshot` of the
        current simulation state (auto-enables if called before the
        first run)."""
        from .snapshot import capture

        return capture(self)

    def restore(self, snap) -> None:
        """Rewind this simulator to ``snap``'s state.

        Resets every kernel object to the captured base, runs the
        :meth:`on_restore` hooks, then deterministically replays the
        run calls recorded up to the snapshot.
        """
        from .snapshot import restore

        restore(self, snap)

    def on_restore(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked on every :meth:`restore`, after
        kernel state is reset and before the run replay — the place to
        clear harness/testbench state the kernel cannot see (result
        lists, component counters)."""
        self._restore_hooks.append(hook)

    @property
    def snapshots_enabled(self) -> bool:
        return self._snap_base is not None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Backend currently executing this simulator's runs."""
        return "compiled" if self._engine is not None else "threaded"

    @property
    def backend_requested(self) -> str:
        """Backend asked for at construction (ambient default included)."""
        return self._backend_requested

    @property
    def backend_fallback_reason(self) -> Optional[str]:
        """Why a ``backend="compiled"`` request fell back, or None."""
        return self._backend_fallback

    @property
    def pending_threads(self) -> int:
        """Number of registered threads that have not finished."""
        return len(self._threads) - self._finished_threads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now}, queue={len(self._queue)}, "
            f"threads={len(self._threads)})"
        )
