"""Event-driven simulation kernel with delta cycles and multiple clocks.

This module is the reproduction's stand-in for the SystemC simulation
kernel used by the paper's OOHLS flow.  It provides the same modelling
vocabulary:

* :class:`Simulator` — the scheduler: an integer-time event queue plus a
  delta-cycle loop per timestep, mirroring SystemC's evaluate/update
  semantics.
* clocked threads (``SC_CTHREAD`` analogs) — Python generators that
  ``yield`` to wait for posedges of their clock,
* combinational methods (``SC_METHOD`` analogs) — plain functions with a
  signal sensitivity list, re-run whenever a sensitive signal changes,
* :class:`Event` — explicit notification objects for thread wakeups.

Signals live in :mod:`repro.kernel.signal` and clocks in
:mod:`repro.kernel.clock`; both cooperate with the scheduler defined here.

The kernel deliberately uses integer timestamps (abstract "ticks", by
convention 1 tick = 1 ps) so that globally-asynchronous clock domains with
irrational-looking period ratios still compare exactly.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..observe.core import attach_if_enabled

__all__ = [
    "Simulator",
    "Event",
    "Thread",
    "Method",
    "SimulationError",
    "DeltaOverflow",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeltaOverflow(SimulationError):
    """Raised when a timestep fails to converge (combinational loop)."""


class Event:
    """A notification object threads can wait on.

    Mirrors ``sc_event``: ``notify()`` wakes waiters in the next delta of
    the current timestep; ``notify_at(delay)`` wakes them ``delay`` ticks
    in the future.
    """

    __slots__ = ("sim", "name", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "event"):
        self.sim = sim
        self.name = name
        self._waiters: list[Thread] = []

    def notify(self) -> None:
        """Wake every waiting thread in the next delta cycle."""
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for thread in waiters:
                self.sim._make_runnable(thread)

    def notify_at(self, delay: int) -> None:
        """Wake every waiting thread ``delay`` ticks from now."""
        self.sim.schedule(delay, self.notify)

    def _subscribe(self, thread: "Thread") -> None:
        self._waiters.append(thread)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class Thread:
    """A clocked simulation thread (``SC_CTHREAD`` analog).

    The body is a Python generator.  Yield values:

    * ``None`` — wait one posedge of the thread's clock,
    * a positive ``int`` n — wait n posedges,
    * an :class:`Event` — wait until the event is notified.

    Subroutines compose with ``yield from``.
    """

    __slots__ = ("sim", "gen", "clock", "name", "done", "_edges_left")

    def __init__(self, sim: "Simulator", gen: Generator, clock, name: str):
        self.sim = sim
        self.gen = gen
        self.clock = clock
        self.name = name
        self.done = False
        self._edges_left = 0

    def _resume(self) -> None:
        """Advance the generator to its next wait point."""
        try:
            request = next(self.gen)
        except StopIteration:
            self.done = True
            self.sim._thread_finished(self)
            return
        if request is None:
            request = 1
        if isinstance(request, int):
            if request <= 0:
                raise SimulationError(
                    f"thread {self.name!r} yielded non-positive wait {request}"
                )
            if self.clock is None:
                raise SimulationError(
                    f"thread {self.name!r} has no clock but yielded a cycle wait"
                )
            self._edges_left = request
            self.clock._subscribe(self)
        elif isinstance(request, Event):
            request._subscribe(self)
        else:
            raise SimulationError(
                f"thread {self.name!r} yielded unsupported value {request!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Thread({self.name!r}, done={self.done})"


class Method:
    """A combinational process (``SC_METHOD`` analog).

    The function is invoked once at elaboration and re-invoked in a new
    delta cycle whenever any signal in its sensitivity list changes value.
    """

    __slots__ = ("fn", "name", "_queued")

    def __init__(self, fn: Callable[[], None], name: str):
        self.fn = fn
        self.name = name
        self._queued = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Method({self.name!r})"


class Simulator:
    """The event-driven scheduler.

    Typical use::

        sim = Simulator()
        clk = sim.add_clock("clk", period=1000)
        sim.add_thread(producer(), clk, name="producer")
        sim.run(until=1_000_000)

    Timestep execution order (mirrors SystemC):

    1. fire all timed events scheduled for the current timestamp
       (clock edges, delayed notifications),
    2. delta loop: run runnable threads and methods, then commit signal
       updates; signals that changed wake their sensitive methods in the
       next delta; repeat until quiescent.

    ``telemetry=True`` attaches a :class:`~repro.observe.core.TelemetryHub`
    that profiles the kernel itself (events fired, delta cycles, thread
    wakeups, per-thread wall time) and lets channels/meshes register
    their own counters; with the default ``telemetry=None`` the hub is
    attached only inside an :func:`repro.observe.capture` window, and
    the disabled path costs one ``is None`` check per hook site.
    Snapshot with :func:`repro.observe.collect`.
    """

    #: Safety valve against unstable combinational loops.
    MAX_DELTAS_PER_STEP = 1000

    def __init__(self, *, telemetry: Optional[bool] = None) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._runnable: deque = deque()
        self._runnable_set: set = set()
        self._dirty_signals: list = []
        self._threads: list[Thread] = []
        self._clocks: list = []
        self._sensitivity: dict[int, list[Method]] = {}
        self._started = False
        self._finished_threads = 0
        self.trace = None  # optional Trace object (see tracing.py)
        # TelemetryHub or None; None keeps every hook at zero overhead.
        self.telemetry = attach_if_enabled(self, telemetry)

    # ------------------------------------------------------------------
    # elaboration API
    # ------------------------------------------------------------------
    def add_clock(self, name: str, period: int, *, start: int = 0, generator=None):
        """Create and register a :class:`~repro.kernel.clock.Clock`.

        ``generator`` optionally supplies a per-edge period callback used
        by GALS local clock generators (jitter, adaptation, pausing).
        """
        from .clock import Clock

        clock = Clock(self, name, period, start=start, generator=generator)
        self._clocks.append(clock)
        return clock

    def add_thread(self, gen: Generator, clock, *, name: str = "thread") -> Thread:
        """Register a clocked thread from a generator object.

        The thread first runs at the first posedge of ``clock`` after
        simulation start.
        """
        thread = Thread(self, gen, clock, name)
        self._threads.append(thread)
        thread._edges_left = 1
        if clock is not None:
            clock._subscribe(thread)
        else:
            # Unclocked threads start in the first delta of time zero.
            self.schedule(0, lambda t=thread: self._make_runnable(t))
        return thread

    def add_method(
        self, fn: Callable[[], None], sensitive: Iterable, *, name: str = "method"
    ) -> Method:
        """Register a combinational method with a sensitivity list."""
        method = Method(fn, name)
        for sig in sensitive:
            self._sensitivity.setdefault(id(sig), []).append(method)
            sig._has_watchers = True
        # Run once at time zero to settle initial combinational state.
        self.schedule(0, lambda m=method: self._queue_method(m))
        return method

    def event(self, name: str = "event") -> Event:
        """Create a fresh :class:`Event`."""
        return Event(self, name)

    # ------------------------------------------------------------------
    # scheduling primitives (used by Clock / Signal / Event)
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``now + delay`` (before that timestep's deltas)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), fn))

    def _make_runnable(self, proc) -> None:
        if id(proc) not in self._runnable_set:
            self._runnable_set.add(id(proc))
            self._runnable.append(proc)

    def _queue_method(self, method: Method) -> None:
        if not method._queued:
            method._queued = True
            self._make_runnable(method)

    def _mark_dirty(self, signal) -> None:
        self._dirty_signals.append(signal)

    def _thread_finished(self, thread: Thread) -> None:
        self._finished_threads += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, *, max_steps: Optional[int] = None) -> int:
        """Run until the event queue drains or ``until`` ticks elapse.

        Returns the final simulation time.
        """
        steps = 0
        kstats = self.telemetry.kernel if self.telemetry is not None else None
        # Flush writes/wakeups performed outside any process before running.
        self._delta_loop()
        while self._queue:
            now = self._queue[0][0]
            if until is not None and now > until:
                self.now = until
                break
            self.now = now
            # Fire every timed event at this timestamp, interleaving delta
            # loops so that zero-delay notifications land in fresh deltas.
            while self._queue and self._queue[0][0] == now:
                while self._queue and self._queue[0][0] == now:
                    _, _, fn = heapq.heappop(self._queue)
                    if kstats is not None:
                        kstats.events_fired += 1
                    fn()
                self._delta_loop()
            steps += 1
            if kstats is not None:
                kstats.timesteps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return self.now

    def run_cycles(self, clock, cycles: int) -> int:
        """Run until ``clock`` has ticked ``cycles`` more posedges."""
        target = clock.cycles + cycles
        while self._queue and clock.cycles < target:
            self.run(max_steps=1)
        return self.now

    def _delta_loop(self) -> None:
        deltas = 0
        kstats = self.telemetry.kernel if self.telemetry is not None else None
        while self._runnable or self._dirty_signals:
            deltas += 1
            if deltas > self.MAX_DELTAS_PER_STEP:
                raise DeltaOverflow(
                    f"timestep at t={self.now} did not converge after "
                    f"{self.MAX_DELTAS_PER_STEP} delta cycles"
                )
            current, self._runnable = self._runnable, deque()
            self._runnable_set.clear()
            for proc in current:
                if isinstance(proc, Thread):
                    if proc.done:
                        continue
                    if kstats is None:
                        proc._resume()
                    else:
                        kstats.thread_wakeups += 1
                        start = time.perf_counter()
                        proc._resume()
                        kstats.add_proc_time(
                            proc.name, time.perf_counter() - start)
                else:  # Method
                    proc._queued = False
                    if kstats is not None:
                        kstats.method_invocations += 1
                    proc.fn()
            # Update phase: commit signal writes, wake sensitive methods.
            dirty, self._dirty_signals = self._dirty_signals, []
            for sig in dirty:
                if sig._commit():
                    if kstats is not None:
                        kstats.signal_commits += 1
                    if self.trace is not None:
                        self.trace.record(self.now, sig)
                    for method in self._sensitivity.get(id(sig), ()):
                        self._queue_method(method)
        if kstats is not None and deltas:
            kstats.delta_cycles += deltas
            if deltas > kstats.max_deltas_per_step:
                kstats.max_deltas_per_step = deltas

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_threads(self) -> int:
        """Number of registered threads that have not finished."""
        return len(self._threads) - self._finished_threads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self.now}, queue={len(self._queue)}, "
            f"threads={len(self._threads)})"
        )
