"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list
    python -m repro fig3 [--ports 2,4,8,16] [--txns 60]
    python -m repro fig6
    python -m repro crossbar-qor
    python -m repro hls-qor
    python -m repro gals
    python -m repro adaptive-clocking
    python -m repro stalls
    python -m repro backend
    python -m repro productivity
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_fig3(args) -> str:
    from .experiments import figure3, format_figure3

    ports = tuple(int(p) for p in args.ports.split(","))
    return format_figure3(figure3(ports=ports, txns_per_port=args.txns))


def _cmd_fig6(args) -> str:
    from .experiments import figure6, format_figure6

    return format_figure6(figure6())


def _cmd_crossbar_qor(args) -> str:
    from .experiments import (
        crossbar_clock_sweep,
        crossbar_qor_sweep,
        format_qor_table,
    )

    return (format_qor_table(crossbar_qor_sweep()) + "\n\n"
            + format_qor_table(crossbar_clock_sweep()))


def _cmd_hls_qor(args) -> str:
    from .experiments import (
        bad_constraint_ablation,
        format_qor_results,
        hls_vs_hand_qor,
    )

    return (format_qor_results(hls_vs_hand_qor(),
                               title="HLS vs hand RTL (paper: ±10 %)")
            + "\n\n"
            + format_qor_results(bad_constraint_ablation(),
                                 title="...with bad constraints (ablation)"))


def _cmd_gals(args) -> str:
    from .experiments import (
        format_overhead_table,
        partition_size_sweep,
        testchip_overhead,
    )

    return format_overhead_table(partition_size_sweep(), testchip_overhead())


def _cmd_adaptive(args) -> str:
    from .experiments import (
        adaptive_clocking_experiment,
        format_adaptive_clocking,
    )

    return format_adaptive_clocking(adaptive_clocking_experiment())


def _cmd_stalls(args) -> str:
    from .experiments import format_campaign, stall_campaign

    results = [stall_campaign(p, trials=10) for p in (0.0, 0.1, 0.3, 0.5)]
    return format_campaign(results)


def _cmd_backend(args) -> str:
    from .flow import FlowRuntimeModel, inventory_partitions
    from .flow import testchip_inventory as chip_inventory

    model = FlowRuntimeModel()
    parts = inventory_partitions(chip_inventory())
    gals = model.turnaround(parts, gals=True)
    sync = model.turnaround(parts, gals=False)
    return (gals.to_text()
            + f"\nsynchronous hierarchical flow: {sync.total_hours:.1f} h"
            + f"\nflat flow: {model.flat_hours(parts):.1f} h")


def _cmd_productivity(args) -> str:
    from .flow import (
        OOHLS_METHODOLOGY,
        RTL_METHODOLOGY,
        inventory_efforts,
        productivity_report,
    )
    from .flow import testchip_inventory as chip_inventory

    efforts = inventory_efforts(chip_inventory())
    return (productivity_report(efforts, OOHLS_METHODOLOGY).to_text()
            + "\n\n"
            + productivity_report(efforts, RTL_METHODOLOGY).to_text())


_COMMANDS = {
    "fig3": (_cmd_fig3, "Figure 3: crossbar modelling accuracy"),
    "fig6": (_cmd_fig6, "Figure 6: SoC speedup vs cycle error (slow!)"),
    "crossbar-qor": (_cmd_crossbar_qor, "2.4: src- vs dst-loop crossbar"),
    "hls-qor": (_cmd_hls_qor, "2.2: HLS vs hand RTL"),
    "gals": (_cmd_gals, "3.1: GALS area overhead"),
    "adaptive-clocking": (_cmd_adaptive, "3.1: adaptive clock margin"),
    "stalls": (_cmd_stalls, "4: stall-injection bug hunting"),
    "backend": (_cmd_backend, "4: RTL-to-layout turnaround"),
    "productivity": (_cmd_productivity, "4: gates per engineer-day"),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from the DAC'18 modular VLSI flow "
                    "paper reproduction.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "fig3":
            p.add_argument("--ports", default="2,4,8,16",
                           help="comma-separated port counts")
            p.add_argument("--txns", type=int, default=60,
                           help="transactions per port")
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        lines = ["available experiments:"]
        for name, (_, help_text) in _COMMANDS.items():
            lines.append(f"  {name:20s} {help_text}")
        print("\n".join(lines))
        return 0

    fn, _ = _COMMANDS[args.command]
    print(fn(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
