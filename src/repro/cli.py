"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list
    python -m repro fig3 [--ports 2,4,8,16] [--txns 60]
    python -m repro fig6
    python -m repro crossbar-qor
    python -m repro hls-qor
    python -m repro gals
    python -m repro adaptive-clocking
    python -m repro stalls
    python -m repro backend
    python -m repro productivity
    python -m repro run <experiment> [-p KEY=VALUE]...
    python -m repro describe <experiment>
    python -m repro bench [--subset quick|full] [--baseline BENCH_kernel.json]
    python -m repro sweep <experiment> [--jobs N] [--no-cache] [--cache-dir D]
    python -m repro faults <harness|all> [--cases N] [--seed S]
                                         [--shrink [greedy|hypothesis]]
    python -m repro verify [--profile dev|ci|thorough] [--checks LIST]
                           [--inject none|deadlock|corrupt]

Every verb is a thin shell over the experiment registry
(:mod:`repro.registry`) and the job-oriented execution core
(:mod:`repro.jobs`): the parser, the verb table, the ``sweep`` and
``faults`` choices, and the ``inspect``/``lint`` targets are all
derived from the registered :class:`~repro.registry.ExperimentSpec`\\ s,
so they can never drift from what the system can actually run.
``run <experiment>`` is the generic form of the experiment verbs
(byte-identical output, differentially tested) and ``describe
<experiment>`` prints one spec's parameters and capabilities.

Every experiment verb (and ``run``) also accepts:

* ``--seed N`` — re-seed the experiment's random source (traffic
  patterns, stall injection, supply noise).  Deterministic/analytic
  experiments accept and ignore it.
* ``--json PATH`` — dump the experiment's result dataclasses as JSON
  through the same canonical serializer the sweep cache and merge layer
  use (:mod:`repro.sweep.serialize`).
* ``--backend {threaded,compiled}`` — pick the simulation backend (see
  ``docs/COMPILED_BACKEND.md``).  The compiled backend is byte-identical
  by construction and falls back to the threaded kernel — recording the
  reason — whenever a design uses constructs it cannot prove out.

Parameter sweeps (see ``docs/PERFORMANCE.md``):

* ``sweep <experiment>`` enumerates the experiment's parameter space as
  seeded points and executes them across a process pool, fronted by a
  disk-backed content-addressed result cache — a warm rerun is served
  from cache almost entirely::

      python -m repro sweep stall_verification --jobs 4
      python -m repro sweep fig3_crossbar --jobs 4 --no-cache

* ``sweep <experiment> --incremental`` runs the trace-based incremental
  engine (``docs/INCREMENTAL_SIM.md``): one captured full simulation
  per structural base, analytical replay for every derivable point,
  recorded fallback reasons for the rest; ``stats --cache`` reports the
  result cache's cumulative effectiveness::

      python -m repro sweep li_latency --incremental --jobs 4
      python -m repro stats --cache

Observability (see ``docs/OBSERVABILITY.md``):

* every experiment verb accepts ``--trace-vcd PATH`` — run the
  experiment with auto-watching signal traces enabled and write the
  first simulator's waveforms as a GTKWave-loadable VCD file::

      python -m repro fig3 --ports 2 --txns 10 --trace-vcd out.vcd

* ``inspect <experiment>`` builds (without running) the experiment's
  design, elaborates it, and prints the instance hierarchy with ports,
  threads, channels and clock domains; ``lint <experiment>`` runs the
  static design checks over the same graph and exits non-zero on any
  finding (see ``docs/DESIGN_GRAPH.md``)::

      python -m repro inspect fig6 --max-depth 2
      python -m repro lint fig6

* ``stats <experiment>`` re-runs any experiment with telemetry enabled
  and appends a summary report (kernel event counts, per-channel
  stall/occupancy statistics, NoC utilization, clock-domain activity);
  ``--json PATH`` additionally writes the report as JSONL::

      python -m repro stats fig3 --ports 2,4 --txns 20 --json fig3.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from . import registry

__all__ = ["main"]

#: Deprecated compat alias: verb -> ``(runner, summary)``, now a live
#: view of the experiment registry (the historical hand-written dict's
#: import surface; use ``registry.get(name)`` in new code).
_COMMANDS = registry.commands_view()


# ----------------------------------------------------------------------
# the one shared-flags builder (satellite: no more per-verb copies)
# ----------------------------------------------------------------------
_SEED_HELP = ("re-seed the experiment's random source (accepted and "
              "ignored by deterministic experiments)")
_JSON_HELP = ("dump the result dataclasses as JSON via the canonical "
              "sweep serializer")
_BACKEND_HELP = ("simulation backend (compiled is differentially "
                 "verified byte-identical; falls back to threaded "
                 "when unsupported constructs appear)")
_TRACE_HELP = "record signal waveforms and write a VCD file"


def _add_shared_flags(p: argparse.ArgumentParser, *,
                      seed: Optional[str] = _SEED_HELP,
                      json: Optional[str] = _JSON_HELP,
                      backend: Optional[str] = _BACKEND_HELP,
                      trace_vcd: Optional[str] = _TRACE_HELP) -> None:
    """Add the shared job flags (``--seed/--json/--backend/--trace-vcd``).

    One builder for every verb — pass ``None`` for a flag a verb does
    not take, or a string to override its help text.  This is what
    keeps flag spelling, defaults, and help consistent across the
    experiment verbs, ``run``, ``stats``, ``sweep``, and ``faults``.
    """
    if seed is not None:
        p.add_argument("--seed", type=int, default=None, help=seed)
    if json is not None:
        p.add_argument("--json", metavar="PATH", default=None, help=json)
    if trace_vcd is not None:
        p.add_argument("--trace-vcd", metavar="PATH", default=None,
                       help=trace_vcd)
    if backend is not None:
        p.add_argument("--backend", choices=("threaded", "compiled"),
                       default="threaded", help=backend)


def _add_param_flags(p: argparse.ArgumentParser,
                     params: Tuple[registry.CliParam, ...]) -> None:
    """Add one flag per registered experiment parameter."""
    for param in params:
        p.add_argument(param.flag, dest=param.name, type=param.type,
                       default=param.default, help=param.help)


def _all_cli_params() -> Dict[str, registry.CliParam]:
    """Every distinct experiment parameter, by name (for ``stats``)."""
    out: Dict[str, registry.CliParam] = {}
    for spec in registry.specs():
        for param in spec.params:
            out.setdefault(param.name, param)
    return out


def _spec_params(spec: registry.ExperimentSpec, args) -> Dict[str, object]:
    """Collect one spec's parameter values from parsed args."""
    return {p.name: getattr(args, p.name, p.default) for p in spec.params}


# ----------------------------------------------------------------------
# registry-facing verbs: describe, run parameter parsing, list
# ----------------------------------------------------------------------
def _capability_tags(spec: registry.ExperimentSpec) -> str:
    """Compact capability summary for ``repro list``."""
    tags = ["design" if spec.design is not None else "analytic"]
    if spec.sweep is not None:
        tag = f"sweep:{spec.sweep.name}"
        if spec.sweep.replay is not None:
            tag += f" replay:{spec.sweep.replay.kind}"
        if spec.sweep.batch is not None:
            tag += " warm"
        tags.append(tag)
    if spec.harness is not None:
        tags.append(f"faults:{spec.harness.name}")
    if spec.compiled:
        tags.append("compiled")
    if spec.seedable:
        tags.append("seed")
    return "[" + ", ".join(tags) + "]"


def _cmd_list() -> int:
    lines = ["available experiments:"]
    for spec in registry.specs():
        if not spec.runnable:
            continue
        lines.append(f"  {spec.name:20s} {spec.summary}")
        lines.append(f"  {'':20s}   {_capability_tags(spec)}")
    lines.append(f"  {'run <experiment>':20s} "
                 "generic registry-driven runner (same output as the "
                 "verbs above)")
    lines.append(f"  {'describe <experiment>':20s} "
                 "show one experiment's parameters and capabilities")
    lines.append(f"  {'sweep <experiment>':20s} "
                 "parallel parameter sweep with result caching")
    lines.append(f"  {'faults <harness|all>':20s} "
                 "seeded fault-injection campaigns, watchdog-triaged")
    lines.append(f"  {'inspect <experiment>':20s} "
                 "elaborate the design, print the hierarchy tree")
    lines.append(f"  {'lint <experiment>':20s} "
                 "static design checks (exit 1 on findings)")
    lines.append(f"  {'stats <experiment>':20s} "
                 "re-run with telemetry, print a stats report")
    lines.append(f"  {'bench':20s} "
                 "run kernel benchmarks (see tools/bench_compare.py)")
    print("\n".join(lines))
    return 0


def _cmd_describe(args) -> int:
    """Print one experiment's registry card: parameters + capabilities."""
    spec = registry.get(args.experiment)
    lines = [f"{spec.name} — {spec.summary}",
             f"  result schema: {spec.schema}/v{spec.schema_version}"]
    if spec.params:
        lines.append("  parameters:")
        for p in spec.params:
            lines.append(f"    {p.flag:14s} default {p.default!r:12} "
                         f"{p.help}")
    else:
        lines.append("  parameters: none")
    lines.append("  seed: " + ("--seed re-seeds the experiment"
                               if spec.seedable else
                               "deterministic (--seed accepted, ignored)"))
    lines.append("  design: " + ("simulated (inspect/lint available)"
                                 if spec.design is not None else
                                 "analytic — no simulated design"))
    if spec.sweep is not None:
        sweep_line = f"  sweep: {spec.sweep.name} — {spec.sweep.help}"
        lines.append(sweep_line)
        if spec.sweep.replay is not None:
            lines.append("    incremental replay: "
                         f"{spec.sweep.replay.kind} adapter")
        if spec.sweep.batch is not None:
            lines.append("    warm batching: construct-once batch "
                         "adapter (sweep --warm)")
    else:
        lines.append("  sweep: none")
    lines.append("  fault harness: "
                 + (spec.harness.name if spec.harness is not None
                    else "none"))
    lines.append("  compiled backend: "
                 + ("eligible" if spec.compiled
                    else "always falls back to threaded"))
    print("\n".join(lines))
    return 0


def _parse_run_params(spec: registry.ExperimentSpec, pairs: List[str],
                      parser: argparse.ArgumentParser) -> Dict[str, object]:
    """Parse ``-p KEY=VALUE`` pairs against the spec's declared params."""
    by_name = {p.name: p for p in spec.params}
    params = {p.name: p.default for p in spec.params}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.replace("-", "_")
        if not sep:
            parser.error(f"run: expected -p KEY=VALUE, got {pair!r}")
        if key not in by_name:
            known = ", ".join(sorted(by_name)) or "none"
            parser.error(f"run: {spec.name} has no parameter {key!r} "
                         f"(known: {known})")
        try:
            params[key] = by_name[key].type(value)
        except (TypeError, ValueError) as exc:
            parser.error(f"run: bad value for {key}: {exc}")
    return params


def _format_cache_stats(cache_dir: Optional[str]) -> str:
    """Sweep-cache effectiveness block for ``repro stats --cache``.

    Combines the on-disk state (entries and stored recompute cost, split
    exact / derived / trace) with the cumulative counters the engine
    flushes after every sweep — hits, misses, and the wall-clock seconds
    of simulation the cache has saved so far.
    """
    from .sweep import ResultCache, default_cache_dir

    cache = ResultCache(cache_dir or default_cache_dir())
    info = cache.describe(deep=True)
    by_mode = info["by_mode"]
    cost = info["stored_cost_seconds"]
    p = info["persistent"]
    lines = [f"sweep cache {info['root']} (rev {info['rev']})",
             f"  entries: {info['entries']} ({info['bytes']} bytes): "
             + ", ".join(f"{by_mode[m]} {m}" for m in sorted(by_mode)),
             "  stored recompute cost: "
             + ", ".join(f"{cost[m]:.2f}s {m}" for m in sorted(cost))]
    if p:
        lookups = p.get("hits", 0) + p.get("misses", 0)
        rate = 100 * p.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"  lifetime: {p.get('hits', 0)} hits / "
            f"{p.get('misses', 0)} misses ({rate:.0f}% hit rate); "
            f"{p.get('hits_exact', 0)} exact + "
            f"{p.get('hits_derived', 0)} derived + "
            f"{p.get('hits_trace', 0)} trace")
        lines.append(f"  recompute seconds saved: "
                     f"{p.get('recompute_seconds_saved', 0.0):.2f}")
        lines.append(
            f"  warm batching: {p.get('warm_points', 0)} batched points "
            f"/ {p.get('warm_restores', 0)} snapshot restores / "
            f"{p.get('warm_lowering_hits', 0)} lowering-cache hits")
    else:
        lines.append("  lifetime: no sweeps recorded yet")
    return "\n".join(lines)


def _cmd_inspect(args) -> int:
    """Elaborate an experiment's design and print its hierarchy tree."""
    from .design import elaborate

    try:
        sim = registry.build_design(args.experiment)
    except ValueError as exc:
        print(f"inspect: {exc}")
        return 0
    graph = elaborate(sim)
    print(graph.tree(max_depth=args.max_depth,
                     channels=not args.no_channels))
    return 0


def _cmd_lint(args) -> int:
    """Elaborate an experiment's design and run the static lint rules."""
    from .design import format_findings, lint

    try:
        sim = registry.build_design(args.experiment)
    except ValueError as exc:
        print(f"lint: {exc}")
        return 0
    rules = args.rules.split(",") if args.rules else None
    findings = lint(sim, rules=rules)
    print(f"{args.experiment}: {format_findings(findings)}")
    return 1 if findings else 0


def _cmd_bench(args) -> int:
    """Quick local benchmark loop: wraps ``tools/bench_compare.py``."""
    import pathlib
    import subprocess

    root = pathlib.Path(__file__).resolve().parents[2]
    script = root / "tools" / "bench_compare.py"
    if not script.exists():
        print("bench: tools/bench_compare.py not found "
              "(run from a repository checkout)", file=sys.stderr)
        return 2
    if args.baseline:
        cmd = [sys.executable, str(script), "check",
               "--baseline", args.baseline, "--subset", args.subset,
               "--threshold", str(args.threshold), "-o", args.output]
    else:
        cmd = [sys.executable, str(script), "run",
               "--subset", args.subset, "-o", args.output]
    if args.only:
        cmd += ["--only", args.only]
    return subprocess.run(cmd, cwd=root).returncode


def _cmd_sweep(args) -> int:
    """Run an experiment's parameter sweep: pool + result cache."""
    from .experiments.sweeps import build_space
    from .sweep import ResultCache, default_cache_dir, run_sweep

    spec = registry.get_sweep(args.experiment)
    points = build_space(args.experiment, seed=args.seed)
    if args.limit is not None:
        points = points[:args.limit]
    if args.backend != "threaded":
        from dataclasses import replace

        points = [replace(p, backend=args.backend) for p in points]
    if not points:
        print(f"sweep {args.experiment}: empty parameter space")
        return 2

    if args.warm and args.incremental:
        print("sweep: --warm and --incremental are mutually exclusive",
              file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    # Incremental and warm sweeps run telemetry-free by construction
    # (a replayed point has no kernel to observe; a snapshot-eligible
    # design cannot carry a telemetry hub), so --no-telemetry is
    # implied for both.
    result = run_sweep(points, jobs=args.jobs, cache=cache,
                       timeout=args.timeout,
                       telemetry=not (args.no_telemetry
                                      or args.incremental or args.warm),
                       incremental=args.incremental,
                       warm=args.warm)

    extras = []
    if spec.summarize is not None and result.ok_results:
        extras.append(spec.summarize(result.ok_results))
    extras.append(result.summary())
    if result.fallback_reasons:
        lines = ["fallbacks to full simulation:"]
        for reason, count in sorted(result.fallback_reasons.items()):
            lines.append(f"  {count:4d} x {reason}")
        extras.append("\n".join(lines))
    if cache is not None:
        s = cache.stats
        line = (f"cache {cache.root}: {s.hits} hits / {s.misses} "
                f"misses ({100 * s.hit_rate:.0f}% hit rate)")
        if s.hits:
            line += (f"; {s.hits_exact} exact + {s.hits_derived} derived "
                     f"+ {s.hits_trace} trace, "
                     f"{s.recompute_seconds_saved:.2f}s recompute saved")
        extras.append(line)
    for outcome in result.outcomes:
        if outcome.status == "error":
            extras.append(f"ERROR {outcome.point.label}: {outcome.error} "
                          f"(after {outcome.attempts} attempts)")
    if args.json:
        from .sweep import dump_json

        dump_json(result.to_payload(), args.json)
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return 1 if result.errors else 0


def _cmd_faults(args) -> int:
    """Run seeded fault-injection campaigns through the sweep engine."""
    from .faults import campaign
    from .sweep import run_sweep
    from .sweep.serialize import NONDETERMINISTIC_FIELDS, to_jsonable

    experiments = None if args.experiment == "all" else [args.experiment]
    points = campaign.sweep_space(experiments=experiments, cases=args.cases,
                                  seed=args.seed if args.seed is not None
                                  else 0)
    # No cache: campaigns are cheap and their point of existence is
    # re-executing the design under faults, not replaying old results.
    result = run_sweep(points, jobs=args.jobs, timeout=args.timeout,
                       telemetry=False)
    records = result.ok_results
    extras = [campaign.summarize_sweep(records)] if records else []
    extras.append(result.summary())

    failures = [rec for rec in records if not rec.get("ok", False)]
    for outcome in result.outcomes:
        if outcome.status == "error":
            extras.append(f"ERROR {outcome.point.label}: {outcome.error}")
    if args.shrink:
        shrinker = campaign.shrink
        if args.shrink == "hypothesis":
            from .verify import hypothesis_available

            if hypothesis_available():
                from .verify.shrinking import shrink_plan
                shrinker = shrink_plan
            else:
                extras.append("--shrink hypothesis: hypothesis not "
                              "installed (pip install 'repro[test]'); "
                              "falling back to the greedy shrinker")
        for rec in failures:
            plan = campaign.default_plan(rec["experiment"], rec["seed"])
            small = shrinker(rec["experiment"], plan, rec["seed"],
                             rec["outcome"])
            extras.append(
                f"shrunk {rec['experiment']} seed={rec['seed']} "
                f"({rec['outcome']}) to {len(small.directives)} "
                f"directive(s): "
                + ", ".join(f"{d.kind}@{d.target}"
                            for d in small.directives))
    if args.json:
        import json as _json

        # Byte-reproducible payload: point identities + classification
        # records only (no wall-clock fields).
        payload = to_jsonable(
            {"experiment": "fault_campaign",
             "points": [p.identity() for p in result.points],
             "results": result.results},
            exclude=NONDETERMINISTIC_FIELDS)
        with open(args.json, "w") as fh:
            fh.write(_json.dumps(payload, sort_keys=True, indent=1) + "\n")
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return 1 if (failures or result.errors) else 0


def _write_vcd_from(session, path: str) -> str:
    """Export the capture session's best trace; returns a status line."""
    from .kernel.tracing import write_vcd

    trace = session.best_trace() if session is not None else None
    if trace is None:
        return (f"--trace-vcd: no signal activity recorded "
                f"(nothing written to {path})")
    try:
        with open(path, "w") as fh:
            write_vcd(trace, fh)
    except OSError as exc:
        return f"--trace-vcd: cannot write {path}: {exc.strerror}"
    return (f"wrote {path}: {len(trace.signals)} signals, "
            f"{len(trace.changes)} value changes (open with gtkwave)")


def _build_parser() -> argparse.ArgumentParser:
    """Build the full CLI parser from the experiment registry."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from the DAC'18 modular VLSI flow "
                    "paper reproduction.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")

    runnable = registry.names(runnable=True)
    for name in runnable:
        spec = registry.get(name)
        p = sub.add_parser(name, help=spec.summary)
        _add_param_flags(p, spec.params)
        _add_shared_flags(p)

    run_p = sub.add_parser(
        "run",
        help="run any registered experiment through the job core "
             "(byte-identical to its dedicated verb)")
    run_p.add_argument("experiment", choices=runnable,
                       help="which registered experiment to run")
    run_p.add_argument("-p", "--param", action="append", default=[],
                       metavar="KEY=VALUE", dest="params",
                       help="override one experiment parameter "
                            "(repeatable; see 'describe' for the list)")
    _add_shared_flags(run_p)

    desc_p = sub.add_parser(
        "describe",
        help="show one experiment's registry card: parameters, sweep, "
             "fault harness, backend eligibility, result schema")
    desc_p.add_argument("experiment", choices=runnable,
                        help="which experiment to describe")

    bench = sub.add_parser(
        "bench",
        help="run kernel benchmarks; optionally gate vs a baseline JSON")
    bench.add_argument("--subset", choices=("quick", "full"), default="quick",
                       help="which benches to run (default: quick)")
    bench.add_argument("--only", metavar="NAME", default=None,
                       help="only run benchmark files whose name contains "
                            "NAME (e.g. --only sweep)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="compare against this BENCH_kernel.json and "
                            "fail on >threshold wall-time regression or "
                            "any kernel-counter drift")
    bench.add_argument("--threshold", type=float, default=0.10,
                       help="wall-time regression threshold (default 0.10)")
    bench.add_argument("-o", "--output", metavar="PATH",
                       default="BENCH_kernel.json",
                       help="where to write the snapshot")

    sweep_p = sub.add_parser(
        "sweep",
        help="run an experiment's parameter sweep across a process pool "
             "with content-addressed result caching")
    sweep_p.add_argument("experiment",
                         choices=sorted(registry.sweep_specs_view()),
                         help="which sweep space to run")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial, default)")
    sweep_p.add_argument("--limit", type=int, default=None,
                         help="only run the first N points of the space")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-point wall-clock budget in seconds")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="execute every point, bypassing the cache")
    sweep_p.add_argument("--cache-dir", metavar="PATH", default=None,
                         help="cache directory (default: "
                              "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    sweep_p.add_argument("--no-telemetry", action="store_true",
                         help="skip per-point telemetry capture")
    sweep_p.add_argument("--incremental", action="store_true",
                         help="trace-based incremental re-simulation: "
                              "capture one full simulation per structural "
                              "base, replay every derivable point "
                              "analytically (implies --no-telemetry; "
                              "points replay refuses fall back to full "
                              "simulation with the reason recorded)")
    sweep_p.add_argument("--warm", default=False,
                         action=argparse.BooleanOptionalAction,
                         help="construct-once batched execution: group "
                              "points by structural digest, build each "
                              "group's design once in persistent warm "
                              "workers, evaluate every point via kernel "
                              "snapshot/restore (implies --no-telemetry; "
                              "byte-identical results, see "
                              "docs/PERFORMANCE.md)")
    _add_shared_flags(
        sweep_p,
        seed="re-seed the whole sweep space",
        json="write points, results and engine/cache statistics as JSON",
        backend="simulation backend for every point (enters the cache "
                "key for non-default values)",
        trace_vcd=None)

    faults_p = sub.add_parser(
        "faults",
        help="run seeded fault-injection campaigns with watchdog triage "
             "(exit 1 on any undiagnosed hang, crash, or escape)")
    faults_p.add_argument("experiment",
                          choices=tuple(registry.harnesses_view())
                          + ("all",),
                          help="which harness to fault (or 'all' for the "
                               "default matrix)")
    faults_p.add_argument("--cases", type=int, default=4,
                          help="seeded cases per harness (default 4)")
    faults_p.add_argument("--jobs", type=int, default=1,
                          help="worker processes (1 = serial, default)")
    faults_p.add_argument("--timeout", type=float, default=None,
                          help="per-case wall-clock budget in seconds")
    faults_p.add_argument("--shrink", nargs="?", const="hypothesis",
                          choices=("greedy", "hypothesis"), default=None,
                          help="reduce each failing case to a minimal "
                               "fault schedule preserving its outcome "
                               "class; bare flag uses the Hypothesis "
                               "subset shrinker, 'greedy' the 1-minimal "
                               "removal pass")
    _add_shared_flags(
        faults_p,
        seed="base seed for the campaign (default 0)",
        json="write byte-reproducible campaign records as JSON",
        backend=None, trace_vcd=None)

    inspect_p = sub.add_parser(
        "inspect",
        help="elaborate an experiment's design, print the hierarchy tree")
    inspect_p.add_argument("experiment", choices=sorted(runnable),
                           help="which experiment's design to elaborate")
    inspect_p.add_argument("--max-depth", type=int, default=None,
                           help="truncate the tree below this depth")
    inspect_p.add_argument("--no-channels", action="store_true",
                           help="omit channel rows from the tree")

    lint_p = sub.add_parser(
        "lint",
        help="run static design lint on an experiment (exit 1 on findings)")
    lint_p.add_argument("experiment", choices=sorted(runnable),
                        help="which experiment's design to lint")
    lint_p.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all)")

    stats = sub.add_parser(
        "stats",
        help="run an experiment with telemetry enabled, print a report; "
             "--cache reports sweep-cache effectiveness")
    stats.add_argument("experiment", choices=sorted(runnable),
                       nargs="?", default=None,
                       help="which experiment to instrument (optional "
                            "with --cache)")
    stats.add_argument("--cache", action="store_true",
                       help="append sweep-cache effectiveness: hit/miss "
                            "counts, exact-vs-derived breakdown, "
                            "recompute-seconds saved")
    stats.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="cache directory (default: "
                            "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    _add_param_flags(stats, tuple(_all_cli_params().values()))
    _add_shared_flags(
        stats,
        seed="re-seed the experiment's random source",
        json="also write the telemetry report as JSONL",
        backend="requested simulation backend (telemetry forces a "
                "threaded fallback; the report's provenance line "
                "records what actually ran)",
        trace_vcd="also write signal waveforms as a VCD file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``.

    Usage::

        python -m repro <experiment> [experiment flags] [--trace-vcd PATH]
        python -m repro run <experiment> [-p KEY=VALUE]... [--json PATH]
        python -m repro stats <experiment> [...] [--json PATH]
        python -m repro sweep <experiment> [--jobs N] [--no-cache]

    Returns the process exit code (0 on success).
    """
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "lint":
        return _cmd_lint(args)

    want_stats = args.command == "stats"
    if want_stats and args.experiment is None:
        if not args.cache:
            parser.error("stats: name an experiment, pass --cache, "
                         "or both")
        print(_format_cache_stats(args.cache_dir))
        return 0

    # Everything below is one experiment execution routed through the
    # job core: the dedicated verbs, the generic `run`, and `stats` all
    # build the same JobRequest and differ only in presentation.
    if args.command == "run":
        target = args.experiment
        spec = registry.get(target)
        params = _parse_run_params(spec, args.params, parser)
    else:
        target = args.experiment if want_stats else args.command
        spec = registry.get(target)
        params = _spec_params(spec, args)

    from .jobs import JobRequest, execute
    from .verify import VerifyUnavailable

    trace_path = args.trace_vcd
    try:
        result = execute(
            JobRequest(experiment=target, params=params, seed=args.seed,
                       backend=args.backend, telemetry=want_stats,
                       trace_signals=bool(trace_path)),
            telemetry_label=target)
    except VerifyUnavailable as exc:
        print(exc)
        return 2

    extras = [result.text]
    if not (want_stats or trace_path):
        if args.backend != "threaded":
            extras.append(result.provenance())
        if args.json:
            result.write_json(args.json)
            extras.append(f"wrote {args.json}")
        print("\n\n".join(extras))
        return _experiment_exit_code(target, result.payload)

    if trace_path:
        extras.append(_write_vcd_from(result.session, trace_path))
    if want_stats:
        from . import observe

        report = result.session.report(label=target)
        extras.append(observe.format_report(report))
        extras.append(result.provenance())
        if args.cache:
            extras.append(_format_cache_stats(args.cache_dir))
        if args.json:
            with open(args.json, "w") as fh:
                n = observe.write_jsonl(observe.to_records(report), fh)
            extras.append(f"wrote {args.json}: {n} JSONL records")
    elif args.json:
        result.write_json(args.json)
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return _experiment_exit_code(target, result.payload)


def _experiment_exit_code(target: str, payload) -> int:
    # `verify` is a gate, not a figure: a campaign whose oracles were
    # violated exits non-zero, like `faults` and `lint` do.
    if target == "verify" and isinstance(payload, dict) \
            and not payload.get("ok", True):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
