"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro list
    python -m repro fig3 [--ports 2,4,8,16] [--txns 60]
    python -m repro fig6
    python -m repro crossbar-qor
    python -m repro hls-qor
    python -m repro gals
    python -m repro adaptive-clocking
    python -m repro stalls
    python -m repro backend
    python -m repro productivity
    python -m repro bench [--subset quick|full] [--baseline BENCH_kernel.json]
    python -m repro sweep <experiment> [--jobs N] [--no-cache] [--cache-dir D]
    python -m repro faults <harness|all> [--cases N] [--seed S] [--shrink]

Every experiment verb also accepts:

* ``--seed N`` — re-seed the experiment's random source (traffic
  patterns, stall injection, supply noise).  Deterministic/analytic
  experiments accept and ignore it.
* ``--json PATH`` — dump the experiment's result dataclasses as JSON
  through the same canonical serializer the sweep cache and merge layer
  use (:mod:`repro.sweep.serialize`).
* ``--backend {threaded,compiled}`` — pick the simulation backend (see
  ``docs/COMPILED_BACKEND.md``).  The compiled backend is byte-identical
  by construction and falls back to the threaded kernel — recording the
  reason — whenever a design uses constructs it cannot prove out.

Parameter sweeps (see ``docs/PERFORMANCE.md``):

* ``sweep <experiment>`` enumerates the experiment's parameter space as
  seeded points and executes them across a process pool, fronted by a
  disk-backed content-addressed result cache — a warm rerun is served
  from cache almost entirely::

      python -m repro sweep stall_verification --jobs 4
      python -m repro sweep fig3_crossbar --jobs 4 --no-cache

* ``sweep <experiment> --incremental`` runs the trace-based incremental
  engine (``docs/INCREMENTAL_SIM.md``): one captured full simulation
  per structural base, analytical replay for every derivable point,
  recorded fallback reasons for the rest; ``stats --cache`` reports the
  result cache's cumulative effectiveness::

      python -m repro sweep li_latency --incremental --jobs 4
      python -m repro stats --cache

Observability (see ``docs/OBSERVABILITY.md``):

* every experiment verb accepts ``--trace-vcd PATH`` — run the
  experiment with auto-watching signal traces enabled and write the
  first simulator's waveforms as a GTKWave-loadable VCD file::

      python -m repro fig3 --ports 2 --txns 10 --trace-vcd out.vcd

* ``inspect <experiment>`` builds (without running) the experiment's
  design, elaborates it, and prints the instance hierarchy with ports,
  threads, channels and clock domains; ``lint <experiment>`` runs the
  static design checks over the same graph and exits non-zero on any
  finding (see ``docs/DESIGN_GRAPH.md``)::

      python -m repro inspect fig6 --max-depth 2
      python -m repro lint fig6

* ``stats <experiment>`` re-runs any experiment with telemetry enabled
  and appends a summary report (kernel event counts, per-channel
  stall/occupancy statistics, NoC utilization, clock-domain activity);
  ``--json PATH`` additionally writes the report as JSONL::

      python -m repro stats fig3 --ports 2,4 --txns 20 --json fig3.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

__all__ = ["main"]

#: Sweep experiments the ``sweep`` verb accepts (kept static so parser
#: construction stays import-light; validated against the registry at
#: execution time).
_SWEEP_EXPERIMENTS = ("stall_verification", "fig3_crossbar",
                      "gals_overhead", "crossbar_qor", "pe_scaling",
                      "fault_campaign", "li_latency")

#: Fault-campaign harnesses the ``faults`` verb accepts (see
#: :data:`repro.faults.campaign.HARNESSES`; kept static for the same
#: import-light reason as above).
_FAULT_HARNESSES = ("stall_verification", "fig3_crossbar", "gals_overhead",
                    "packet_stream", "deadlock_demo")

_CmdResult = Tuple[str, object]


def _cmd_fig3(args) -> _CmdResult:
    from .experiments import figure3, format_figure3

    ports = tuple(int(p) for p in args.ports.split(","))
    points = figure3(ports=ports, txns_per_port=args.txns,
                     seed=args.seed if args.seed is not None else 1)
    return format_figure3(points), points


def _cmd_fig6(args) -> _CmdResult:
    from .experiments import figure6, format_figure6

    points = figure6()
    return format_figure6(points), points


def _cmd_crossbar_qor(args) -> _CmdResult:
    from .experiments import (
        crossbar_clock_sweep,
        crossbar_qor_sweep,
        format_qor_table,
    )

    lanes = crossbar_qor_sweep()
    clocks = crossbar_clock_sweep()
    text = format_qor_table(lanes) + "\n\n" + format_qor_table(clocks)
    return text, {"lane_sweep": lanes, "clock_sweep": clocks}


def _cmd_hls_qor(args) -> _CmdResult:
    from .experiments import (
        bad_constraint_ablation,
        format_qor_results,
        hls_vs_hand_qor,
    )

    main_results = hls_vs_hand_qor()
    ablation = bad_constraint_ablation()
    text = (format_qor_results(main_results,
                               title="HLS vs hand RTL (paper: ±10 %)")
            + "\n\n"
            + format_qor_results(ablation,
                                 title="...with bad constraints (ablation)"))
    return text, {"hls_vs_hand": main_results, "bad_constraints": ablation}


def _cmd_gals(args) -> _CmdResult:
    from .experiments import (
        format_overhead_table,
        partition_size_sweep,
        testchip_overhead,
    )

    points = partition_size_sweep()
    report = testchip_overhead()
    return (format_overhead_table(points, report),
            {"partition_sweep": points, "testchip": report})


def _cmd_adaptive(args) -> _CmdResult:
    from .experiments import (
        adaptive_clocking_experiment,
        format_adaptive_clocking,
    )

    kwargs = {} if args.seed is None else {"seed": args.seed}
    result = adaptive_clocking_experiment(**kwargs)
    return format_adaptive_clocking(result), result


def _cmd_stalls(args) -> _CmdResult:
    from .experiments import format_campaign, stall_campaign
    from .experiments.stall_verification import DEFAULT_BASE_SEED

    base_seed = args.seed if args.seed is not None else DEFAULT_BASE_SEED
    results = [stall_campaign(p, trials=10, base_seed=base_seed)
               for p in (0.0, 0.1, 0.3, 0.5)]
    return format_campaign(results), results


def _cmd_li_latency(args) -> _CmdResult:
    from .experiments import li_latency

    results = li_latency.run_report(
        seed=args.seed if args.seed is not None else 500)
    return li_latency.format_report(results), results


def _cmd_backend(args) -> _CmdResult:
    from .flow import FlowRuntimeModel, inventory_partitions
    from .flow import testchip_inventory as chip_inventory

    model = FlowRuntimeModel()
    parts = inventory_partitions(chip_inventory())
    gals = model.turnaround(parts, gals=True)
    sync = model.turnaround(parts, gals=False)
    flat_hours = model.flat_hours(parts)
    text = (gals.to_text()
            + f"\nsynchronous hierarchical flow: {sync.total_hours:.1f} h"
            + f"\nflat flow: {flat_hours:.1f} h")
    return text, {"gals": gals, "synchronous": sync,
                  "flat_hours": flat_hours}


def _cmd_productivity(args) -> _CmdResult:
    from .flow import (
        OOHLS_METHODOLOGY,
        RTL_METHODOLOGY,
        inventory_efforts,
        productivity_report,
    )
    from .flow import testchip_inventory as chip_inventory

    efforts = inventory_efforts(chip_inventory())
    oohls = productivity_report(efforts, OOHLS_METHODOLOGY)
    rtl = productivity_report(efforts, RTL_METHODOLOGY)
    return (oohls.to_text() + "\n\n" + rtl.to_text(),
            {"oohls": oohls, "rtl": rtl})


def _format_cache_stats(cache_dir: Optional[str]) -> str:
    """Sweep-cache effectiveness block for ``repro stats --cache``.

    Combines the on-disk state (entries and stored recompute cost, split
    exact / derived / trace) with the cumulative counters the engine
    flushes after every sweep — hits, misses, and the wall-clock seconds
    of simulation the cache has saved so far.
    """
    from .sweep import ResultCache, default_cache_dir

    cache = ResultCache(cache_dir or default_cache_dir())
    info = cache.describe(deep=True)
    by_mode = info["by_mode"]
    cost = info["stored_cost_seconds"]
    p = info["persistent"]
    lines = [f"sweep cache {info['root']} (rev {info['rev']})",
             f"  entries: {info['entries']} ({info['bytes']} bytes): "
             + ", ".join(f"{by_mode[m]} {m}" for m in sorted(by_mode)),
             "  stored recompute cost: "
             + ", ".join(f"{cost[m]:.2f}s {m}" for m in sorted(cost))]
    if p:
        lookups = p.get("hits", 0) + p.get("misses", 0)
        rate = 100 * p.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"  lifetime: {p.get('hits', 0)} hits / "
            f"{p.get('misses', 0)} misses ({rate:.0f}% hit rate); "
            f"{p.get('hits_exact', 0)} exact + "
            f"{p.get('hits_derived', 0)} derived + "
            f"{p.get('hits_trace', 0)} trace")
        lines.append(f"  recompute seconds saved: "
                     f"{p.get('recompute_seconds_saved', 0.0):.2f}")
    else:
        lines.append("  lifetime: no sweeps recorded yet")
    return "\n".join(lines)


def _cmd_inspect(args) -> int:
    """Elaborate an experiment's design and print its hierarchy tree."""
    from .design import elaborate
    from .experiments.designs import build_design

    try:
        sim = build_design(args.experiment)
    except ValueError as exc:
        print(f"inspect: {exc}")
        return 0
    graph = elaborate(sim)
    print(graph.tree(max_depth=args.max_depth,
                     channels=not args.no_channels))
    return 0


def _cmd_lint(args) -> int:
    """Elaborate an experiment's design and run the static lint rules."""
    from .design import format_findings, lint
    from .experiments.designs import build_design

    try:
        sim = build_design(args.experiment)
    except ValueError as exc:
        print(f"lint: {exc}")
        return 0
    rules = args.rules.split(",") if args.rules else None
    findings = lint(sim, rules=rules)
    print(f"{args.experiment}: {format_findings(findings)}")
    return 1 if findings else 0


def _cmd_bench(args) -> int:
    """Quick local benchmark loop: wraps ``tools/bench_compare.py``."""
    import pathlib
    import subprocess

    root = pathlib.Path(__file__).resolve().parents[2]
    script = root / "tools" / "bench_compare.py"
    if not script.exists():
        print("bench: tools/bench_compare.py not found "
              "(run from a repository checkout)", file=sys.stderr)
        return 2
    if args.baseline:
        cmd = [sys.executable, str(script), "check",
               "--baseline", args.baseline, "--subset", args.subset,
               "--threshold", str(args.threshold), "-o", args.output]
    else:
        cmd = [sys.executable, str(script), "run",
               "--subset", args.subset, "-o", args.output]
    if args.only:
        cmd += ["--only", args.only]
    return subprocess.run(cmd, cwd=root).returncode


def _cmd_sweep(args) -> int:
    """Run an experiment's parameter sweep: pool + result cache."""
    from .experiments.sweeps import build_space, get_sweep
    from .sweep import ResultCache, default_cache_dir, run_sweep

    spec = get_sweep(args.experiment)
    points = build_space(args.experiment, seed=args.seed)
    if args.limit is not None:
        points = points[:args.limit]
    if args.backend != "threaded":
        from dataclasses import replace

        points = [replace(p, backend=args.backend) for p in points]
    if not points:
        print(f"sweep {args.experiment}: empty parameter space")
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    # Incremental sweeps run telemetry-free by construction (replayed
    # points have no kernel to observe), so --no-telemetry is implied.
    result = run_sweep(points, jobs=args.jobs, cache=cache,
                       timeout=args.timeout,
                       telemetry=not (args.no_telemetry
                                      or args.incremental),
                       incremental=args.incremental)

    extras = []
    if spec.summarize is not None and result.ok_results:
        extras.append(spec.summarize(result.ok_results))
    extras.append(result.summary())
    if result.fallback_reasons:
        lines = ["fallbacks to full simulation:"]
        for reason, count in sorted(result.fallback_reasons.items()):
            lines.append(f"  {count:4d} x {reason}")
        extras.append("\n".join(lines))
    if cache is not None:
        s = cache.stats
        line = (f"cache {cache.root}: {s.hits} hits / {s.misses} "
                f"misses ({100 * s.hit_rate:.0f}% hit rate)")
        if s.hits:
            line += (f"; {s.hits_exact} exact + {s.hits_derived} derived "
                     f"+ {s.hits_trace} trace, "
                     f"{s.recompute_seconds_saved:.2f}s recompute saved")
        extras.append(line)
    for outcome in result.outcomes:
        if outcome.status == "error":
            extras.append(f"ERROR {outcome.point.label}: {outcome.error} "
                          f"(after {outcome.attempts} attempts)")
    if args.json:
        from .sweep import dump_json

        dump_json(result.to_payload(), args.json)
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return 1 if result.errors else 0


def _cmd_faults(args) -> int:
    """Run seeded fault-injection campaigns through the sweep engine."""
    from .faults import campaign
    from .sweep import run_sweep
    from .sweep.serialize import NONDETERMINISTIC_FIELDS, to_jsonable

    experiments = None if args.experiment == "all" else [args.experiment]
    points = campaign.sweep_space(experiments=experiments, cases=args.cases,
                                  seed=args.seed if args.seed is not None
                                  else 0)
    # No cache: campaigns are cheap and their point of existence is
    # re-executing the design under faults, not replaying old results.
    result = run_sweep(points, jobs=args.jobs, timeout=args.timeout,
                       telemetry=False)
    records = result.ok_results
    extras = [campaign.summarize_sweep(records)] if records else []
    extras.append(result.summary())

    failures = [rec for rec in records if not rec.get("ok", False)]
    for outcome in result.outcomes:
        if outcome.status == "error":
            extras.append(f"ERROR {outcome.point.label}: {outcome.error}")
    if args.shrink:
        for rec in failures:
            plan = campaign.default_plan(rec["experiment"], rec["seed"])
            small = campaign.shrink(rec["experiment"], plan, rec["seed"],
                                    rec["outcome"])
            extras.append(
                f"shrunk {rec['experiment']} seed={rec['seed']} "
                f"({rec['outcome']}) to {len(small.directives)} "
                f"directive(s): "
                + ", ".join(f"{d.kind}@{d.target}"
                            for d in small.directives))
    if args.json:
        import json as _json

        # Byte-reproducible payload: point identities + classification
        # records only (no wall-clock fields).
        payload = to_jsonable(
            {"experiment": "fault_campaign",
             "points": [p.identity() for p in result.points],
             "results": result.results},
            exclude=NONDETERMINISTIC_FIELDS)
        with open(args.json, "w") as fh:
            fh.write(_json.dumps(payload, sort_keys=True, indent=1) + "\n")
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return 1 if (failures or result.errors) else 0


_COMMANDS = {
    "fig3": (_cmd_fig3, "Figure 3: crossbar modelling accuracy"),
    "fig6": (_cmd_fig6, "Figure 6: SoC speedup vs cycle error (slow!)"),
    "crossbar-qor": (_cmd_crossbar_qor, "2.4: src- vs dst-loop crossbar"),
    "hls-qor": (_cmd_hls_qor, "2.2: HLS vs hand RTL"),
    "gals": (_cmd_gals, "3.1: GALS area overhead"),
    "adaptive-clocking": (_cmd_adaptive, "3.1: adaptive clock margin"),
    "stalls": (_cmd_stalls, "4: stall-injection bug hunting"),
    "li-latency": (_cmd_li_latency, "4: LI pipeline latency grid "
                                    "(replay-safe; see sweep --incremental)"),
    "backend": (_cmd_backend, "4: RTL-to-layout turnaround"),
    "productivity": (_cmd_productivity, "4: gates per engineer-day"),
}


def _add_fig3_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--ports", default="2,4,8,16",
                   help="comma-separated port counts")
    p.add_argument("--txns", type=int, default=60,
                   help="transactions per port")


def _backend_provenance(run: Tuple[str, Optional[str]]) -> str:
    """One provenance line: which backend produced the last run."""
    backend, reason = run
    if reason:
        return f"simulation backend: {backend} (fallback: {reason})"
    return f"simulation backend: {backend}"


def _write_vcd_from(session, path: str) -> str:
    """Export the capture session's best trace; returns a status line."""
    from .kernel.tracing import write_vcd

    trace = session.best_trace()
    if trace is None:
        return (f"--trace-vcd: no signal activity recorded "
                f"(nothing written to {path})")
    try:
        with open(path, "w") as fh:
            write_vcd(trace, fh)
    except OSError as exc:
        return f"--trace-vcd: cannot write {path}: {exc.strerror}"
    return (f"wrote {path}: {len(trace.signals)} signals, "
            f"{len(trace.changes)} value changes (open with gtkwave)")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``.

    Usage::

        python -m repro <experiment> [experiment flags] [--trace-vcd PATH]
        python -m repro stats <experiment> [...] [--json PATH]
        python -m repro sweep <experiment> [--jobs N] [--no-cache]

    Returns the process exit code (0 on success).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate results from the DAC'18 modular VLSI flow "
                    "paper reproduction.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name, (_, help_text) in _COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        if name == "fig3":
            _add_fig3_args(p)
        p.add_argument("--seed", type=int, default=None,
                       help="re-seed the experiment's random source "
                            "(accepted and ignored by deterministic "
                            "experiments)")
        p.add_argument("--json", metavar="PATH", default=None,
                       help="dump the result dataclasses as JSON via the "
                            "canonical sweep serializer")
        p.add_argument("--trace-vcd", metavar="PATH", default=None,
                       help="record signal waveforms and write a VCD file")
        p.add_argument("--backend", choices=("threaded", "compiled"),
                       default="threaded",
                       help="simulation backend (compiled is differentially "
                            "verified byte-identical; falls back to threaded "
                            "when unsupported constructs appear)")
    bench = sub.add_parser(
        "bench",
        help="run kernel benchmarks; optionally gate vs a baseline JSON")
    bench.add_argument("--subset", choices=("quick", "full"), default="quick",
                       help="which benches to run (default: quick)")
    bench.add_argument("--only", metavar="NAME", default=None,
                       help="only run benchmark files whose name contains "
                            "NAME (e.g. --only sweep)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="compare against this BENCH_kernel.json and "
                            "fail on >threshold wall-time regression or "
                            "any kernel-counter drift")
    bench.add_argument("--threshold", type=float, default=0.10,
                       help="wall-time regression threshold (default 0.10)")
    bench.add_argument("-o", "--output", metavar="PATH",
                       default="BENCH_kernel.json",
                       help="where to write the snapshot")
    sweep_p = sub.add_parser(
        "sweep",
        help="run an experiment's parameter sweep across a process pool "
             "with content-addressed result caching")
    sweep_p.add_argument("experiment", choices=_SWEEP_EXPERIMENTS,
                         help="which sweep space to run")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial, default)")
    sweep_p.add_argument("--seed", type=int, default=None,
                         help="re-seed the whole sweep space")
    sweep_p.add_argument("--limit", type=int, default=None,
                         help="only run the first N points of the space")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-point wall-clock budget in seconds")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="execute every point, bypassing the cache")
    sweep_p.add_argument("--cache-dir", metavar="PATH", default=None,
                         help="cache directory (default: "
                              "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    sweep_p.add_argument("--no-telemetry", action="store_true",
                         help="skip per-point telemetry capture")
    sweep_p.add_argument("--incremental", action="store_true",
                         help="trace-based incremental re-simulation: "
                              "capture one full simulation per structural "
                              "base, replay every derivable point "
                              "analytically (implies --no-telemetry; "
                              "points replay refuses fall back to full "
                              "simulation with the reason recorded)")
    sweep_p.add_argument("--backend", choices=("threaded", "compiled"),
                         default="threaded",
                         help="simulation backend for every point (enters "
                              "the cache key for non-default values)")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="write points, results and engine/cache "
                              "statistics as JSON")
    faults_p = sub.add_parser(
        "faults",
        help="run seeded fault-injection campaigns with watchdog triage "
             "(exit 1 on any undiagnosed hang, crash, or escape)")
    faults_p.add_argument("experiment",
                          choices=_FAULT_HARNESSES + ("all",),
                          help="which harness to fault (or 'all' for the "
                               "default matrix)")
    faults_p.add_argument("--cases", type=int, default=4,
                          help="seeded cases per harness (default 4)")
    faults_p.add_argument("--seed", type=int, default=None,
                          help="base seed for the campaign (default 0)")
    faults_p.add_argument("--jobs", type=int, default=1,
                          help="worker processes (1 = serial, default)")
    faults_p.add_argument("--timeout", type=float, default=None,
                          help="per-case wall-clock budget in seconds")
    faults_p.add_argument("--shrink", action="store_true",
                          help="reduce each failing case to a 1-minimal "
                               "fault schedule")
    faults_p.add_argument("--json", metavar="PATH", default=None,
                          help="write byte-reproducible campaign records "
                               "as JSON")
    inspect_p = sub.add_parser(
        "inspect",
        help="elaborate an experiment's design, print the hierarchy tree")
    inspect_p.add_argument("experiment", choices=sorted(_COMMANDS),
                           help="which experiment's design to elaborate")
    inspect_p.add_argument("--max-depth", type=int, default=None,
                           help="truncate the tree below this depth")
    inspect_p.add_argument("--no-channels", action="store_true",
                           help="omit channel rows from the tree")
    lint_p = sub.add_parser(
        "lint",
        help="run static design lint on an experiment (exit 1 on findings)")
    lint_p.add_argument("experiment", choices=sorted(_COMMANDS),
                        help="which experiment's design to lint")
    lint_p.add_argument("--rules", default=None,
                        help="comma-separated rule subset (default: all)")
    stats = sub.add_parser(
        "stats",
        help="run an experiment with telemetry enabled, print a report; "
             "--cache reports sweep-cache effectiveness")
    stats.add_argument("experiment", choices=sorted(_COMMANDS),
                       nargs="?", default=None,
                       help="which experiment to instrument (optional "
                            "with --cache)")
    stats.add_argument("--cache", action="store_true",
                       help="append sweep-cache effectiveness: hit/miss "
                            "counts, exact-vs-derived breakdown, "
                            "recompute-seconds saved")
    stats.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="cache directory (default: "
                            "$REPRO_SWEEP_CACHE or ~/.cache/repro/sweeps)")
    _add_fig3_args(stats)
    stats.add_argument("--seed", type=int, default=None,
                       help="re-seed the experiment's random source")
    stats.add_argument("--trace-vcd", metavar="PATH", default=None,
                       help="also write signal waveforms as a VCD file")
    stats.add_argument("--json", metavar="PATH", default=None,
                       help="also write the telemetry report as JSONL")
    stats.add_argument("--backend", choices=("threaded", "compiled"),
                       default="threaded",
                       help="requested simulation backend (telemetry forces "
                            "a threaded fallback; the report's provenance "
                            "line records what actually ran)")
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        lines = ["available experiments:"]
        for name, (_, help_text) in _COMMANDS.items():
            lines.append(f"  {name:20s} {help_text}")
        lines.append(f"  {'sweep <experiment>':20s} "
                     "parallel parameter sweep with result caching")
        lines.append(f"  {'faults <harness|all>':20s} "
                     "seeded fault-injection campaigns, watchdog-triaged")
        lines.append(f"  {'inspect <experiment>':20s} "
                     "elaborate the design, print the hierarchy tree")
        lines.append(f"  {'lint <experiment>':20s} "
                     "static design checks (exit 1 on findings)")
        lines.append(f"  {'stats <experiment>':20s} "
                     "re-run with telemetry, print a stats report")
        lines.append(f"  {'bench':20s} "
                     "run kernel benchmarks (see tools/bench_compare.py)")
        print("\n".join(lines))
        return 0

    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "lint":
        return _cmd_lint(args)

    want_stats = args.command == "stats"
    if want_stats and args.experiment is None:
        if not args.cache:
            parser.error("stats: name an experiment, pass --cache, "
                         "or both")
        print(_format_cache_stats(args.cache_dir))
        return 0
    target = args.experiment if want_stats else args.command
    fn, _ = _COMMANDS[target]
    trace_path = args.trace_vcd

    from .kernel.backend import last_run, use_backend

    if not (want_stats or trace_path):
        with use_backend(args.backend):
            out, payload = fn(args)
        extras = [out]
        if args.backend != "threaded":
            extras.append(_backend_provenance(last_run()))
        if args.json:
            from .sweep import dump_json

            dump_json(payload, args.json)
            extras.append(f"wrote {args.json}")
        print("\n\n".join(extras))
        return 0

    from . import observe

    with use_backend(args.backend), \
            observe.capture(trace_signals=bool(trace_path)) as session:
        out, payload = fn(args)
    extras = [out]
    if trace_path:
        extras.append(_write_vcd_from(session, trace_path))
    if want_stats:
        report = session.report(label=target)
        extras.append(observe.format_report(report))
        extras.append(_backend_provenance(last_run()))
        if args.cache:
            extras.append(_format_cache_stats(args.cache_dir))
        if args.json:
            with open(args.json, "w") as fh:
                n = observe.write_jsonl(observe.to_records(report), fh)
            extras.append(f"wrote {args.json}: {n} JSONL records")
    elif args.json:
        from .sweep import dump_json

        dump_json(payload, args.json)
        extras.append(f"wrote {args.json}")
    print("\n\n".join(extras))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
