"""The job-oriented execution core: JobRequest in, JobResult out.

This is the single programmatic "submit a job, get a canonical result"
surface the future simulation-as-a-service API (ROADMAP item 3) will
sit on.  A :class:`JobRequest` names *what* to run — an experiment from
:mod:`repro.registry` (or one sweep point of it), its parameters, seed,
simulation backend, and observability flags — and :func:`execute`
handles *how*: runner resolution, ambient backend selection with
fallback provenance, optional telemetry capture, and canonical
serialization through the sweep serializer (:mod:`repro.sweep
.serialize`), so a job's JSON is byte-identical no matter which entry
point submitted it.  The CLI's experiment verbs, ``repro run``, the
sweep engine's workers, and the fault campaign all route through here.

Usage::

    from repro.jobs import JobRequest, execute

    result = execute(JobRequest("fig3", {"ports": "2,4", "txns": 10}))
    print(result.text)                  # the verb's usual table
    result.write_json("fig3.json")      # canonical JSON payload

Determinism contract: two :func:`execute` calls with equal requests
produce equal :meth:`JobResult.canonical_payload` outputs — wall-clock
time lives only in ``wall_seconds`` (and is excluded from the canonical
form, like everywhere else in the sweep layer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import registry

__all__ = ["JobRequest", "JobResult", "execute", "execute_warm"]

#: How a job's simulation was produced (see :mod:`repro.sweep.warm`):
#: ``"fresh"`` — the design was constructed for this job alone;
#: ``"warm"`` — this job built (and paid for) a reusable warm session;
#: ``"restored"`` — this job ran on an existing warm session after a
#: kernel snapshot restore.
EXECUTIONS = ("fresh", "warm", "restored")

#: Request kinds: a whole experiment (the CLI verb's result) vs one
#: point of its sweep space (the engine's unit of work).
KINDS = ("experiment", "point")


@dataclass(frozen=True)
class JobRequest:
    """One immutable unit of work for :func:`execute`.

    ``kind="experiment"`` runs the registered experiment's runner over
    ``params`` (missing keys mean the experiment's defaults;
    ``seed=None`` means its default seed).  ``kind="point"`` runs the
    named *sweep*'s point runner — ``experiment`` is then the sweep
    name and ``seed`` is required, exactly like a
    :class:`~repro.sweep.point.SweepPoint`.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    backend: str = "threaded"
    kind: str = "experiment"
    telemetry: bool = False
    trace_signals: bool = False

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"one of {sorted(KINDS)}")
        if self.kind == "point" and self.seed is None:
            raise ValueError("point jobs require an explicit seed")

    @classmethod
    def from_point(cls, point, *, telemetry: bool = False) -> "JobRequest":
        """Wrap one :class:`~repro.sweep.point.SweepPoint` as a job."""
        return cls(experiment=point.experiment, params=dict(point.params),
                   seed=point.seed, backend=point.backend, kind="point",
                   telemetry=telemetry)

    def identity(self) -> Dict[str, Any]:
        """The request's deterministic identity (no observability flags —
        telemetry/trace change what is *recorded*, never the result)."""
        ident: Dict[str, Any] = {"experiment": self.experiment,
                                 "kind": self.kind,
                                 "params": dict(self.params),
                                 "seed": self.seed}
        if self.backend != "threaded":
            ident["backend"] = self.backend
        return ident


@dataclass(frozen=True)
class JobResult:
    """What one executed job produced, with full provenance.

    ``payload`` is the runner's raw result (dataclasses/dicts);
    ``text`` the formatter's rendering (``None`` for point jobs —
    sweeps format merged results, not single points).  ``backend`` /
    ``fallback_reason`` record what actually simulated the job, from
    :func:`repro.kernel.backend.last_run`.  ``execution`` records the
    construction provenance (one of :data:`EXECUTIONS`): whether the
    job simulated a freshly built design or reused a warm session.
    ``session`` (telemetry jobs only) is the live capture session, kept
    for VCD export; it is excluded from comparison, so equal jobs
    compare equal.
    """

    request: JobRequest
    payload: Any
    text: Optional[str]
    backend: str
    fallback_reason: Optional[str]
    telemetry: Optional[List[dict]]
    wall_seconds: float
    schema: str
    schema_version: int
    execution: str = "fresh"
    session: Any = field(default=None, repr=False, compare=False)

    def provenance(self) -> str:
        """One provenance line: which backend produced this result."""
        line = f"simulation backend: {self.backend}"
        if self.fallback_reason:
            line += f" (fallback: {self.fallback_reason})"
        if self.execution != "fresh":
            line += f"; execution: {self.execution}"
        return line

    def canonical_payload(self):
        """The payload as canonical JSON-able data (wall-clock-free)."""
        from .sweep.serialize import NONDETERMINISTIC_FIELDS, to_jsonable

        return to_jsonable(self.payload, exclude=NONDETERMINISTIC_FIELDS)

    def write_json(self, path: str) -> None:
        """Dump the payload through the canonical sweep serializer —
        byte-identical to the legacy verbs' ``--json`` output."""
        from .sweep import dump_json

        dump_json(self.payload, path)


def _resolve(request: JobRequest):
    """Resolve the request to ``(runner, formatter, schema, version)``."""
    if request.kind == "point":
        sweep = registry.get_sweep(request.experiment)
        return sweep.runner, None, request.experiment, 1
    spec = registry.get(request.experiment)
    if spec.runner is None:
        raise ValueError(f"experiment {request.experiment!r} is not "
                         "directly runnable (no registered runner)")
    return spec.runner, spec.formatter, spec.schema, spec.schema_version


def execute(request: JobRequest, *,
            telemetry_label: Optional[str] = None) -> JobResult:
    """Run one job: resolve, simulate, format, record provenance.

    The runner executes under the request's ambient backend
    (:func:`repro.kernel.backend.use_backend`); with ``telemetry`` or
    ``trace_signals`` it additionally runs inside its own
    :func:`repro.observe.capture` window, and the flattened report
    records (labelled ``telemetry_label``, default the experiment name)
    ride along on the result.
    """
    from .kernel.backend import last_run, use_backend

    runner, formatter, schema, version = _resolve(request)
    params = dict(request.params)
    t0 = time.perf_counter()
    if request.telemetry or request.trace_signals:
        from . import observe

        # Telemetry forces the threaded kernel (the compiled engine
        # detaches when a hub attaches); running under the requested
        # backend anyway keeps the fallback accounting honest.
        with use_backend(request.backend), \
                observe.capture(
                    trace_signals=request.trace_signals) as session:
            payload = runner(params, request.seed)
        records = (observe.to_records(session.report(
            label=telemetry_label or request.experiment))
            if request.telemetry else None)
    else:
        session = records = None
        with use_backend(request.backend):
            payload = runner(params, request.seed)
    wall = time.perf_counter() - t0
    backend, reason = last_run()
    return JobResult(
        request=request,
        payload=payload,
        text=formatter(payload) if formatter is not None else None,
        backend=backend,
        fallback_reason=reason,
        telemetry=records,
        wall_seconds=wall,
        schema=schema,
        schema_version=version,
        session=session,
    )


def execute_warm(request: JobRequest, adapter, session, *,
                 execution: str = "restored") -> JobResult:
    """Run one point job against a live warm session.

    The warm counterpart of :func:`execute` for ``kind="point"``
    requests: instead of constructing the design, the point is
    evaluated by the experiment's :class:`~repro.sweep.warm
    .BatchAdapter` against ``session`` — a constructed, snapshot-
    enabled simulation owned by the calling worker (see
    :mod:`repro.sweep.warm`, which also handles the restore between
    points).  Backend provenance is read from the session's simulator
    directly — the ambient :func:`~repro.kernel.backend.last_run`
    record is one run stale by the time the caller restores.

    ``execution`` stamps the construction provenance: ``"warm"`` for
    the point that paid for the session build, ``"restored"`` for
    points served after a snapshot restore.
    """
    if request.kind != "point":
        raise ValueError("warm execution only serves point jobs, "
                         f"not {request.kind!r}")
    if execution not in EXECUTIONS:
        raise ValueError(f"unknown execution {execution!r}; "
                         f"one of {EXECUTIONS}")
    t0 = time.perf_counter()
    payload = adapter.run(session, dict(request.params), request.seed)
    wall = time.perf_counter() - t0
    sim = session.sim
    return JobResult(
        request=request,
        payload=payload,
        text=None,
        backend=sim.backend,
        fallback_reason=sim.backend_fallback_reason,
        telemetry=None,
        wall_seconds=wall,
        schema=request.experiment,
        schema_version=1,
        execution=execution,
    )
