"""Network-on-chip: flits, routers (Table 2's SFRouter and WHVCRouter),
and 2-D mesh construction with XY routing.

Quick use::

    from repro.kernel import Simulator
    from repro.noc import Mesh

    sim = Simulator()
    clk = sim.add_clock("clk", period=909)
    mesh = Mesh(sim, clk, width=4, height=4)
    mesh.ni(0).send(dest=15, payloads=["hello", "world"])
    sim.run(until=100_000)
    assert mesh.ni(15).received[0] == (0, ["hello", "world"])
"""

from .flit import NocFlit, make_packet, packet_payloads
from .mesh import Mesh, NetworkInterface
from .noc_channel import NocChannel, NocChannelDemux
from .routing import Port, node_xy, xy_node, xy_route
from .sf_router import SFRouter
from .whvc_router import WHVCRouter

__all__ = [
    "NocFlit", "make_packet", "packet_payloads",
    "Port", "xy_route", "node_xy", "xy_node",
    "WHVCRouter", "SFRouter",
    "Mesh", "NetworkInterface",
    "NocChannel", "NocChannelDemux",
]
