"""2-D mesh construction and network interfaces.

Builds a ``width x height`` mesh of routers (wormhole or
store-and-forward) connected by LI channels, one flit per link per
cycle, with a :class:`NetworkInterface` per node for message-level
send/receive — the NoC substrate of the prototype SoC's PE array.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Generator, List, Optional

from ..connections.channel import Buffer
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope, design_path
from ..kernel import Gate
from .flit import NocFlit, make_packet
from .routing import Port, node_xy, xy_node
from .sf_router import SFRouter
from .whvc_router import WHVCRouter

__all__ = ["Mesh", "NetworkInterface"]


class NetworkInterface:
    """Message-level endpoint at a mesh node.

    ``send`` queues a message for packetization; received messages are
    reassembled and delivered to :attr:`received` (or a handler).
    """

    def __init__(self, sim, clock, mesh: "Mesh", node: int):
        self.node = node
        self.mesh = mesh
        self._sim = sim
        self.last_arrival_time: Optional[int] = None
        self._packet_ids = itertools.count()
        self._tx: deque = deque()
        self._rx_partial: dict = {}
        self.received: list[tuple[int, list]] = []  # (src, payloads)
        self.handler: Optional[Callable[[int, list], None]] = None
        # Idle-wait point for the compiled backend: opened by send() and
        # by the eject channel delivering a flit.  Plain one-cycle wait
        # under the threaded kernel (see repro.kernel.Gate).
        self._gate = Gate()
        with component_scope(sim, f"ni{node}", kind="NetworkInterface",
                             obj=self, clock=clock):
            self.inject_port: Out = Out(name="inject")
            self.eject_port: In = In(name="eject")
            self.messages_sent = 0
            self.messages_received = 0
            sim.add_thread(self._run(), clock, name="ctl")

    def send(self, dest: int, payloads: list, *, vc: int = 0) -> None:
        """Queue one message (any number of flit payloads) to ``dest``."""
        flits = make_packet(src=self.node, dest=dest, payloads=list(payloads),
                            vc=vc, packet_id=next(self._packet_ids))
        self._tx.extend(flits)
        self.messages_sent += 1
        self._gate.open()

    def _run(self) -> Generator:
        gate = self._gate
        # Park only when arrivals can reopen the gate: the eject channel
        # must expose the wake hook (custom RTL/CDC links may not).
        hook = getattr(self.eject_port._channel, "add_wake_gate", None)
        parkable = hook is not None
        if parkable:
            hook(gate)
        # Ports are bound at mesh construction, before the first posedge;
        # bound channel methods resolve any channel-kind override once.
        tx = self._tx
        inject_push = self.inject_port._channel.do_push
        eject_pop = self.eject_port._channel.do_pop
        while True:
            if tx and inject_push(tx[0]):
                tx.popleft()
            ok, flit = eject_pop()
            if ok:
                key = (flit.src, flit.packet_id, flit.vc)
                self._rx_partial.setdefault(key, []).append(flit)
                if flit.is_tail:
                    flits = self._rx_partial.pop(key)
                    payloads = [f.payload for f in flits]
                    self.messages_received += 1
                    self.last_arrival_time = self._sim.now
                    if self.handler is not None:
                        self.handler(flit.src, payloads)
                    else:
                        self.received.append((flit.src, payloads))
            if parkable and not tx and not ok:
                yield gate        # idle: no tx backlog, eject empty
            else:
                yield


class Mesh:
    """A width x height mesh NoC with per-node network interfaces."""

    def __init__(self, sim, clock, *, width: int, height: int,
                 router: str = "whvc", n_vcs: int = 2, link_depth: int = 2,
                 name: str = "mesh", clock_of=None, link_factory=None,
                 **router_kwargs):
        """Build the mesh.

        ``clock_of(node) -> Clock`` gives each node its own clock domain
        (fine-grained GALS); default is the single ``clock``.
        ``link_factory(src_node, dst_node, tag) -> channel-like`` builds
        inter-router links; default is a fast Buffer in the destination
        node's domain.  GALS meshes pass a factory producing
        :class:`~repro.gals.gals_link.GalsLink` CDC links.
        """
        if width < 1 or height < 1:
            raise ValueError("mesh needs width >= 1 and height >= 1")
        if router not in ("whvc", "sf"):
            raise ValueError(f"unknown router type {router!r}")
        self.width = width
        self.height = height
        self.n_nodes = width * height
        self.routers: List = []
        self.nis: List[NetworkInterface] = []
        #: Link inventory for utilization reports:
        #: ``(src_node, dst_node, tag, channel)`` per inter-router link.
        self.links: List[tuple] = []
        self._clock_of = clock_of or (lambda node: clock)
        self._link_factory = link_factory
        self._link_depth = link_depth
        self._sim = sim

        with component_scope(sim, name, kind="Mesh", obj=self,
                             clock=clock) as inst:
            self.name = self._name = inst.name if inst is not None else name

            for node in range(self.n_nodes):
                node_clock = self._clock_of(node)
                if router == "whvc":
                    r = WHVCRouter(sim, node_clock, node=node,
                                   mesh_width=width, n_vcs=n_vcs,
                                   name=f"r{node}", **router_kwargs)
                else:
                    r = SFRouter(sim, node_clock, node=node, mesh_width=width,
                                 name=f"r{node}", **router_kwargs)
                self.routers.append(r)

            # Inter-router links (one channel per direction per edge).
            for node in range(self.n_nodes):
                x, y = node_xy(node, width)
                if x + 1 < width:
                    east = xy_node(x + 1, y, width)
                    self._link(sim, clock, node, Port.EAST, east, Port.WEST,
                               link_depth)
                    self._link(sim, clock, east, Port.WEST, node, Port.EAST,
                               link_depth)
                if y + 1 < height:
                    north = xy_node(x, y + 1, width)
                    self._link(sim, clock, node, Port.NORTH, north,
                               Port.SOUTH, link_depth)
                    self._link(sim, clock, north, Port.SOUTH, node,
                               Port.NORTH, link_depth)

            # Local ports -> network interfaces (in the node's own domain).
            for node in range(self.n_nodes):
                node_clock = self._clock_of(node)
                ni = NetworkInterface(sim, node_clock, self, node)
                inject = Buffer(sim, node_clock, capacity=link_depth,
                                name=f"inj{node}")
                eject = Buffer(sim, node_clock, capacity=link_depth,
                               name=f"ej{node}")
                ni.inject_port.bind(inject)
                self.routers[node].ins[Port.LOCAL].bind(inject)
                self.routers[node].outs[Port.LOCAL].bind(eject)
                ni.eject_port.bind(eject)
                self.nis.append(ni)

        # Observability: registered meshes appear in telemetry reports
        # with per-router flit counts and per-link utilization.
        hub = getattr(sim, "telemetry", None)
        if hub is not None:
            hub.register_mesh(self)

    def _link(self, sim, clock, src: int, src_port: Port, dst: int,
              dst_port: Port, depth: int) -> None:
        local = f"l{src}p{int(src_port)}"
        if self._link_factory is not None:
            chan = self._link_factory(src, dst, local)
        else:
            # Links live in the destination router's clock domain.
            chan = Buffer(sim, self._clock_of(dst), capacity=depth,
                          name=local)
        self.routers[src].outs[src_port].bind(chan)
        self.routers[dst].ins[dst_port].bind(chan)
        # Report keys use the full hierarchical path of the channel.
        self.links.append((src, dst, design_path(chan), chan))

    # ------------------------------------------------------------------
    @property
    def total_flits_forwarded(self) -> int:
        return sum(getattr(r, "flits_forwarded", 0) for r in self.routers)

    def link_utilization(self) -> dict[str, float]:
        """Per-link utilization: transfers per observed channel cycle.

        Uses the always-on :class:`~repro.connections.channel.ChannelStats`
        of each inter-router link; links built by a custom
        ``link_factory`` without ``stats`` (e.g. CDC links) report 0.0.
        """
        out = {}
        for _src, _dst, tag, chan in self.links:
            stats = getattr(chan, "stats", None)
            if stats is not None and stats.cycles:
                out[tag] = stats.transfers / stats.cycles
            else:
                out[tag] = 0.0
        return out

    def ni(self, node: int) -> NetworkInterface:
        return self.nis[node]
