"""LI channels transported over the NoC (section 2.3).

"The physical implementation of LI channels can include clock-domain
crossing logic or even packetize/depacketize logic to send data between
a producer and a consumer across a NoC."

:class:`NocChannel` implements the fast-channel protocol — the same duck
type ``In``/``Out`` ports bind to — over a mesh: pushes at the source
node become NoC messages, pops at the destination node drain a bounded
receive buffer, and **credit-based flow control** bounds in-flight
traffic (each pop returns one credit to the sender over the network).
Producer and consumer code is byte-for-byte identical to the
direct-channel version, which is the library-polymorphism claim the
paper builds MatchLib's reuse story on.

Several logical channels can share one node through a
:class:`NocChannelDemux` bound to the node's network interface.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, Optional

from .mesh import Mesh, NetworkInterface

__all__ = ["NocChannel", "NocChannelDemux"]

_CREDIT = "__credit__"


class NocChannelDemux:
    """Routes a node's incoming messages to its logical channels."""

    def __init__(self, ni: NetworkInterface):
        self.ni = ni
        self._sinks: Dict[int, Any] = {}
        ni.handler = self._on_message

    def register(self, chan_id: int, sink) -> None:
        if chan_id in self._sinks:
            raise ValueError(f"channel id {chan_id} already registered "
                             f"at node {self.ni.node}")
        self._sinks[chan_id] = sink

    def _on_message(self, src: int, payloads: list) -> None:
        chan_id = payloads[0]
        sink = self._sinks.get(chan_id)
        if sink is None:
            raise ValueError(f"node {self.ni.node}: message for unknown "
                             f"channel id {chan_id}")
        sink._deliver(payloads[1])


class NocChannel:
    """A latency-insensitive channel whose wire is the mesh.

    ``src_demux`` / ``dst_demux`` are :class:`NocChannelDemux` at the
    producer's and consumer's nodes.  ``depth`` bounds both the send
    queue and the receive buffer; credits keep at most ``depth``
    messages in flight.
    """

    def __init__(self, sim, mesh: Mesh, *, chan_id: int,
                 src_demux: NocChannelDemux, dst_demux: NocChannelDemux,
                 depth: int = 4, name: str = "nocchan"):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sim = sim
        self.name = name
        self.chan_id = chan_id
        self.depth = depth
        # Fault-injection hook (see repro.faults.plan.ChannelFaults).
        self._faults = None
        self._src_ni = src_demux.ni
        self._dst_ni = dst_demux.ni
        self._tx: deque = deque()
        self._rx: deque = deque()
        self._credits = depth
        self._pushed = False
        self._popped = False
        self.transfers = 0
        self.kind = "NocChannel"
        # Opt-in telemetry on the receive buffer (None when the hub is off).
        hub = getattr(sim, "telemetry", None)
        self.telemetry = hub.register_channel(self) if hub is not None else None
        # Source side receives returned credits; destination receives data.
        src_demux.register(chan_id, _CreditSink(self))
        dst_demux.register(chan_id, _DataSink(self))
        src_clock = mesh._clock_of(self._src_ni.node)
        src_clock.on_edge(self._tick)
        sim.add_thread(self._tx_run(), src_clock, name=f"{name}.tx")

    def _tick(self, clock) -> None:
        if self.telemetry is not None:
            self.telemetry.on_cycle(len(self._rx), self._popped)
        self._pushed = False
        self._popped = False

    def _tx_run(self) -> Generator:
        while True:
            if self._tx and self._credits > 0:
                self._credits -= 1
                msg = self._tx.popleft()
                self._src_ni.send(self._dst_ni.node, [self.chan_id, msg])
            yield

    # delivery callbacks (called from NI handlers) ----------------------
    def _deliver_data(self, msg: Any) -> None:
        self._rx.append(msg)

    def _deliver_credit(self) -> None:
        self._credits += 1

    # FastChannel protocol ----------------------------------------------
    def can_push(self) -> bool:
        return (not self._pushed) and len(self._tx) < self.depth

    def do_push(self, msg: Any) -> bool:
        if not self.can_push():
            if self.telemetry is not None:
                self.telemetry.on_push_rejected()
            return False
        self._pushed = True
        faults = self._faults
        if faults is not None:
            action, msg = faults.on_push(msg)
            if action == 1:  # drop: accepted by the handshake, then lost
                return True
            if action == 2:  # duplicate
                self._tx.append(msg)
        self._tx.append(msg)
        return True

    def can_pop(self) -> bool:
        return (not self._popped) and bool(self._rx)

    def do_pop(self) -> tuple[bool, Optional[Any]]:
        if not self.can_pop():
            return False, None
        self._popped = True
        msg = self._rx.popleft()
        # Return a credit to the sender over the network.
        self._dst_ni.send(self._src_ni.node, [self.chan_id, _CREDIT])
        self.transfers += 1
        return True, msg

    def peek(self) -> tuple[bool, Optional[Any]]:
        if not self._rx:
            return False, None
        return True, self._rx[0]

    @property
    def occupancy(self) -> int:
        return len(self._tx) + len(self._rx)


class _DataSink:
    """Destination-side demux sink: data messages fill the rx buffer."""

    __slots__ = ("chan",)

    def __init__(self, chan: NocChannel):
        self.chan = chan

    def _deliver(self, msg: Any) -> None:
        self.chan._deliver_data(msg)


class _CreditSink:
    """Source-side demux sink: credit returns free a send slot."""

    __slots__ = ("chan",)

    def __init__(self, chan: NocChannel):
        self.chan = chan

    def _deliver(self, msg: Any) -> None:
        if msg != _CREDIT:
            raise ValueError(
                f"channel {self.chan.name}: unexpected message at the "
                f"source endpoint (data flowing backwards?)")
        self.chan._deliver_credit()
