"""Dimension-ordered (XY) routing for 2-D meshes.

XY routing is deadlock-free on a mesh without extra virtual channels:
packets fully resolve X before moving in Y, so the channel dependency
graph is acyclic.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Port", "xy_route", "node_xy", "xy_node"]


class Port(IntEnum):
    """Router port indices (order matters for arbitration fairness)."""

    LOCAL = 0
    NORTH = 1  # +y
    SOUTH = 2  # -y
    EAST = 3   # +x
    WEST = 4   # -x


def node_xy(node: int, width: int) -> tuple[int, int]:
    """Node id -> (x, y) on a ``width``-column mesh."""
    if node < 0:
        raise ValueError(f"bad node id {node}")
    return node % width, node // width


def xy_node(x: int, y: int, width: int) -> int:
    """(x, y) -> node id."""
    if x < 0 or y < 0 or x >= width:
        raise ValueError(f"bad coordinates ({x}, {y}) for width {width}")
    return y * width + x


def xy_route(current: int, dest: int, width: int) -> Port:
    """Output port for a packet at ``current`` heading to ``dest``."""
    cx, cy = node_xy(current, width)
    dx, dy = node_xy(dest, width)
    if dx > cx:
        return Port.EAST
    if dx < cx:
        return Port.WEST
    if dy > cy:
        return Port.NORTH
    if dy < cy:
        return Port.SOUTH
    return Port.LOCAL
