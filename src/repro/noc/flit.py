"""NoC flit and packet definitions.

Wormhole networks move packets as a head flit (carrying the route),
body flits, and a tail flit (releasing the wormhole).  ``vc`` selects a
virtual channel; the WHVC router keeps one flit queue per (input port,
VC) pair, as MatchLib's WHVCRouter does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["NocFlit", "make_packet", "packet_payloads"]


@dataclass(frozen=True)
class NocFlit:
    """One flit of a wormhole packet."""

    src: int          # source node id
    dest: int         # destination node id
    vc: int           # virtual channel
    packet_id: int    # unique per (src, sequence)
    seq: int          # flit index within the packet
    is_head: bool
    is_tail: bool
    payload: Any = None


def make_packet(*, src: int, dest: int, payloads: List[Any], vc: int = 0,
                packet_id: int = 0) -> List[NocFlit]:
    """Build the flit sequence for one packet.

    A single-payload packet is one flit with both head and tail set.
    """
    if not payloads:
        raise ValueError("a packet needs at least one payload flit")
    if vc < 0:
        raise ValueError("vc must be >= 0")
    last = len(payloads) - 1
    return [
        NocFlit(src=src, dest=dest, vc=vc, packet_id=packet_id, seq=i,
                is_head=(i == 0), is_tail=(i == last), payload=p)
        for i, p in enumerate(payloads)
    ]


def packet_payloads(flits: List[NocFlit]) -> List[Any]:
    """Extract payloads from a completed flit sequence, with checks."""
    if not flits or not flits[0].is_head or not flits[-1].is_tail:
        raise ValueError("malformed packet framing")
    if [f.seq for f in flits] != list(range(len(flits))):
        raise ValueError("flits out of order")
    return [f.payload for f in flits]
