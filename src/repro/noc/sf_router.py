"""Store-and-forward router (MatchLib's SFRouter).

Unlike the wormhole router, an SF router buffers the *entire* packet at
each hop before forwarding it, so per-hop latency grows with packet
length.  It exists in MatchLib for short control packets and as the
simpler baseline; the reproduction's NoC benches use it as the ablation
against wormhole switching.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..matchlib.arbiter import RoundRobinArbiter
from ..matchlib.fifo import Fifo
from .flit import NocFlit
from .routing import Port, xy_route

__all__ = ["SFRouter"]

N_PORTS = 5


class SFRouter:
    """Store-and-forward router for a 2-D mesh node."""

    def __init__(self, sim, clock, *, node: int, mesh_width: int,
                 packet_capacity: int = 2, max_packet_flits: int = 16,
                 name: Optional[str] = None):
        if packet_capacity < 1:
            raise ValueError("packet_capacity must be >= 1")
        requested = name or f"sf{node}"
        self.node = node
        self.mesh_width = mesh_width
        self.max_packet_flits = max_packet_flits
        with component_scope(sim, requested, kind="SFRouter", obj=self,
                             clock=clock, default_name=name is None,
                             attrs={"deadlock_free":
                                    "xy dimension-order routing"}) as inst:
            self.name = inst.name if inst is not None else requested
            # Boundary ports on mesh edges legitimately stay unbound.
            self.ins = [In(name=f"in{p}", optional=True)
                        for p in range(N_PORTS)]
            self.outs = [Out(name=f"out{p}", optional=True)
                         for p in range(N_PORTS)]
            # Per-input packet assembly buffer and per-input whole-packet
            # queue.
            self._assembly: list[list[NocFlit]] = [[] for _ in range(N_PORTS)]
            self._packets = [Fifo(capacity=packet_capacity)
                             for _ in range(N_PORTS)]
            self._arbiters = [RoundRobinArbiter(N_PORTS)
                              for _ in range(N_PORTS)]
            # Per-output in-flight packet being streamed out.
            self._sending: list[Optional[list[NocFlit]]] = [None] * N_PORTS
            self.packets_forwarded = 0
            self.flits_forwarded = 0
            #: Cycles an in-flight packet could not stream its next flit out
            #: (downstream link full) — link-level backpressure.
            self.output_stall_cycles = 0
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        while True:
            self._assemble()
            self._forward()
            yield

    def _assemble(self) -> None:
        """Accumulate one flit per input; queue completed packets."""
        for p, port in enumerate(self.ins):
            if not port.bound or self._packets[p].full:
                continue
            ok, flit = port.pop_nb()
            if not ok:
                continue
            buf = self._assembly[p]
            buf.append(flit)
            if len(buf) > self.max_packet_flits:
                raise RuntimeError(
                    f"{self.name}: packet exceeds max_packet_flits "
                    f"({self.max_packet_flits})"
                )
            if flit.is_tail:
                self._packets[p].push(list(buf))
                buf.clear()

    def _forward(self) -> None:
        """Per output: stream the current packet, else arbitrate a new one."""
        for o in range(N_PORTS):
            out = self.outs[o]
            if not out.bound:
                continue
            if self._sending[o] is None:
                requests = [
                    (not q.empty)
                    and xy_route(self.node, q.peek()[0].dest, self.mesh_width) == o
                    for q in self._packets
                ]
                winner = self._arbiters[o].pick(requests)
                if winner is None:
                    continue
                self._sending[o] = self._packets[winner].pop()
            packet = self._sending[o]
            if packet:
                if out.push_nb(packet[0]):
                    packet.pop(0)
                    self.flits_forwarded += 1
                else:
                    self.output_stall_cycles += 1
            if not packet:
                self._sending[o] = None
                self.packets_forwarded += 1
