"""Wormhole router with virtual channels (MatchLib's WHVCRouter).

Microarchitecture (one module thread, one iteration per cycle):

* per-(input port, VC) flit queues,
* XY route computation on head flits,
* per-output round-robin arbitration among competing (port, VC)
  wormholes; a granted wormhole holds the output until its tail flit
  passes (wormhole switching),
* backpressure through the LI channels (a full downstream link simply
  rejects the push; the wormhole stalls in place).

Virtual channels let independent packets interleave on one physical
link: a blocked wormhole on VC 0 does not prevent VC 1 traffic from
using the link.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..connections.channel import FastChannel
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..kernel import Gate
from ..matchlib.arbiter import RoundRobinArbiter
from ..matchlib.fifo import Fifo
from .flit import NocFlit
from .routing import Port, xy_route

__all__ = ["WHVCRouter"]

N_PORTS = 5  # LOCAL, NORTH, SOUTH, EAST, WEST


class WHVCRouter:
    """Wormhole virtual-channel router for a 2-D mesh node."""

    def __init__(self, sim, clock, *, node: int, mesh_width: int,
                 n_vcs: int = 2, vc_depth: int = 4, name: Optional[str] = None):
        if n_vcs < 1 or vc_depth < 1:
            raise ValueError("need n_vcs >= 1 and vc_depth >= 1")
        requested = name or f"whvc{node}"
        self.node = node
        self.mesh_width = mesh_width
        self.n_vcs = n_vcs
        # XY dimension-order routing is deadlock-free by construction
        # (no cyclic turn dependencies), so channel-cycle lint waives
        # cycles through router instances.
        with component_scope(sim, requested, kind="WHVCRouter", obj=self,
                             clock=clock, default_name=name is None,
                             attrs={"deadlock_free":
                                    "xy dimension-order routing"}) as inst:
            self.name = inst.name if inst is not None else requested
            # Boundary ports on mesh edges legitimately stay unbound.
            self.ins = [In(name=f"in{p}", optional=True)
                        for p in range(N_PORTS)]
            self.outs = [Out(name=f"out{p}", optional=True)
                         for p in range(N_PORTS)]
            # Per (input port, vc) flit queue.
            self._queues = [[Fifo(capacity=vc_depth) for _ in range(n_vcs)]
                            for _ in range(N_PORTS)]
            # Per-output arbiter over (port, vc) requesters.
            self._arbiters = [RoundRobinArbiter(N_PORTS * n_vcs)
                              for _ in range(N_PORTS)]
            # Per-output wormhole lock: (in_port, vc) or None.
            self._locks: list[Optional[tuple[int, int]]] = [None] * N_PORTS
            # Cached output request per (port, vc) queue, flattened as
            # p * n_vcs + v: the head flit's computed route when the head
            # is a head flit, else -1 (body flit or empty queue).  Updated
            # at the only two mutation points (accept push, wormhole pop),
            # so arbitration reads it instead of re-peeking every queue
            # for every output every cycle.
            self._head_route = [-1] * (N_PORTS * n_vcs)
            # (peek, pop) / (can_push, push) bound-method pairs per port,
            # snapshotted by _run once the mesh has bound the links.
            self._in_ops: list = []
            self._out_ops: list = []
            # Set by _run when all links are stock FastChannels; the
            # accept/forward loops then read channel state directly.
            self._fast_in: Optional[list] = None
            self._fast_out: Optional[list] = None
            self._active_locks = 0  # outputs with a wormhole in flight
            self._buffered = 0  # flits across all VC queues
            self.flits_forwarded = 0
            self.packets_forwarded = 0
            #: Cycles a granted wormhole could not advance (downstream full
            #: or the next flit not yet arrived) — link-level backpressure.
            self.output_stall_cycles = 0
            # Idle-wait point for the compiled backend (plain one-cycle
            # wait threaded); reopened by arrivals on any input link.
            self._gate = Gate()
            sim.add_thread(self._run(), clock, name="ctl")

    # ------------------------------------------------------------------
    def _route_of(self, flit: NocFlit) -> Port:
        return xy_route(self.node, flit.dest, self.mesh_width)

    def _run(self) -> Generator:
        # Ports are bound at mesh elaboration, before the first posedge;
        # boundary ports stay unbound forever, so snapshot the channels
        # and bind their handshake methods once (bound methods resolve
        # any channel-kind override, so this is the port call minus the
        # per-cycle attribute walk).  The idle-exit reads
        # FastChannel._queue directly; custom link kinds (GALS links,
        # RTL signal links) run the full body always.
        in_channels = [p._channel for p in self.ins if p._channel is not None]
        fast_links = all(isinstance(ch, FastChannel) for ch in in_channels)
        self._in_ops = [(p._channel.peek, p._channel.do_pop)
                        if p._channel is not None else None
                        for p in self.ins]
        self._out_ops = [(p._channel.can_push, p._channel.do_push)
                         if p._channel is not None else None
                         for p in self.outs]
        # Direct-state fast paths apply only when every link is a stock
        # FastChannel (the inlined checks mirror peek()/can_push()).
        if fast_links:
            self._fast_in = [(p, port._channel)
                             for p, port in enumerate(self.ins)
                             if port._channel is not None]
        if all(p._channel is None or isinstance(p._channel, FastChannel)
               for p in self.outs):
            self._fast_out = [p._channel for p in self.outs]
        gate = self._gate
        if fast_links:
            for ch in in_channels:
                ch.add_wake_gate(gate)
        while True:
            # Idle-exit: nothing buffered, no wormhole holding an output,
            # nothing arriving on any input link.  The full body would be
            # a provable no-op (peeks fail, arbiters see no requests, no
            # stall counting without a lock), so skip it.  Any held lock
            # forces the full body: a starved wormhole must keep counting
            # output_stall_cycles.
            if (fast_links and self._buffered == 0 and self._active_locks == 0
                    and all(not ch._queue for ch in in_channels)):
                yield gate
                continue
            self._accept_flits()
            self._forward_flits()
            yield

    def _accept_flits(self) -> None:
        """Move at most one flit per input port into its VC queue."""
        fast = self._fast_in
        if fast is not None:
            # Inlined peek (stalled/empty check) and Fifo.push; do_pop
            # stays a call so handshake stats and flags update as ever.
            queues = self._queues
            n_vcs = self.n_vcs
            head_route = self._head_route
            accepted = 0
            for p, ch in fast:
                chq = ch._queue
                if not chq or ch._stalled:
                    continue
                flit = chq[0]
                queue = queues[p][flit.vc % n_vcs]
                items = queue._queue
                if len(items) >= queue.capacity:
                    continue  # backpressure: leave it in the channel
                ok, flit = ch.do_pop()
                if ok:
                    was_empty = not items
                    items.append(flit)
                    queue.total_pushed += 1
                    occ = len(items)
                    if occ > queue.peak_occupancy:
                        queue.peak_occupancy = occ
                    accepted += 1
                    if was_empty:
                        vc = flit.vc % n_vcs
                        head_route[p * n_vcs + vc] = (
                            self._route_of(flit) if flit.is_head else -1)
            if accepted:
                self._buffered += accepted
            return
        for p, ops in enumerate(self._in_ops):
            if ops is None:
                continue
            ok, flit = ops[0]()
            if not ok:
                continue
            queue = self._queues[p][flit.vc % self.n_vcs]
            if queue.full:
                continue  # backpressure: leave it in the channel
            ok, flit = ops[1]()
            if ok:
                was_empty = queue.empty
                queue.push(flit)
                self._buffered += 1
                if was_empty:
                    vc = flit.vc % self.n_vcs
                    self._head_route[p * self.n_vcs + vc] = (
                        self._route_of(flit) if flit.is_head else -1)

    def _forward_flits(self) -> None:
        """Arbitrate each output and forward one flit per output."""
        fast = self._fast_out
        locks = self._locks
        head_route = self._head_route
        for out_port in range(N_PORTS):
            if fast is not None:
                ch = fast[out_port]
                # inlined can_push: not pushed yet and capacity left
                if ch is None or ch._pushed \
                        or ch._occ_start >= ch.capacity:
                    continue
            else:
                ops = self._out_ops[out_port]
                if ops is None or not ops[0]():
                    continue
            lock = locks[out_port]
            if lock is not None:
                self._advance_wormhole(out_port, *lock)
                continue
            # Head flits requesting this output, from the cached routes.
            # No requesters means pick() would be a stateless no-op.
            if out_port not in head_route:
                continue
            # Inlined round-robin pick over the route cache: scan from
            # the arbiter's priority pointer, grant the first requester
            # (same rotation and grant count pick() would apply).
            arb = self._arbiters[out_port]
            n = arb.n
            idx = arb._next
            while head_route[idx] != out_port:
                idx += 1
                if idx >= n:
                    idx -= n
            arb._next = (idx + 1) % n
            arb.grants[idx] += 1
            p, v = divmod(idx, self.n_vcs)
            self._locks[out_port] = (p, v)
            self._active_locks += 1
            self._advance_wormhole(out_port, p, v)

    def _advance_wormhole(self, out_port: int, p: int, v: int) -> None:
        # Direct deque access: Fifo peek/pop/empty carry no stats, so
        # the inlined form is observably identical.
        items = self._queues[p][v]._queue
        if not items:
            self.output_stall_cycles += 1
            return  # next flit not here yet; hold the lock
        flit = items[0]
        if self._out_ops[out_port][1](flit):
            items.popleft()
            self._buffered -= 1
            self.flits_forwarded += 1
            slot = p * self.n_vcs + v
            if not items:
                self._head_route[slot] = -1
            else:
                nxt = items[0]
                self._head_route[slot] = (
                    self._route_of(nxt) if nxt.is_head else -1)
            if flit.is_tail:
                self._locks[out_port] = None
                self._active_locks -= 1
                self.packets_forwarded += 1
        else:
            self.output_stall_cycles += 1
