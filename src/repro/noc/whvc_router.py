"""Wormhole router with virtual channels (MatchLib's WHVCRouter).

Microarchitecture (one module thread, one iteration per cycle):

* per-(input port, VC) flit queues,
* XY route computation on head flits,
* per-output round-robin arbitration among competing (port, VC)
  wormholes; a granted wormhole holds the output until its tail flit
  passes (wormhole switching),
* backpressure through the LI channels (a full downstream link simply
  rejects the push; the wormhole stalls in place).

Virtual channels let independent packets interleave on one physical
link: a blocked wormhole on VC 0 does not prevent VC 1 traffic from
using the link.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..connections.channel import FastChannel
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..matchlib.arbiter import RoundRobinArbiter
from ..matchlib.fifo import Fifo
from .flit import NocFlit
from .routing import Port, xy_route

__all__ = ["WHVCRouter"]

N_PORTS = 5  # LOCAL, NORTH, SOUTH, EAST, WEST


class WHVCRouter:
    """Wormhole virtual-channel router for a 2-D mesh node."""

    def __init__(self, sim, clock, *, node: int, mesh_width: int,
                 n_vcs: int = 2, vc_depth: int = 4, name: Optional[str] = None):
        if n_vcs < 1 or vc_depth < 1:
            raise ValueError("need n_vcs >= 1 and vc_depth >= 1")
        requested = name or f"whvc{node}"
        self.node = node
        self.mesh_width = mesh_width
        self.n_vcs = n_vcs
        # XY dimension-order routing is deadlock-free by construction
        # (no cyclic turn dependencies), so channel-cycle lint waives
        # cycles through router instances.
        with component_scope(sim, requested, kind="WHVCRouter", obj=self,
                             clock=clock, default_name=name is None,
                             attrs={"deadlock_free":
                                    "xy dimension-order routing"}) as inst:
            self.name = inst.name if inst is not None else requested
            # Boundary ports on mesh edges legitimately stay unbound.
            self.ins = [In(name=f"in{p}", optional=True)
                        for p in range(N_PORTS)]
            self.outs = [Out(name=f"out{p}", optional=True)
                         for p in range(N_PORTS)]
            # Per (input port, vc) flit queue.
            self._queues = [[Fifo(capacity=vc_depth) for _ in range(n_vcs)]
                            for _ in range(N_PORTS)]
            # Per-output arbiter over (port, vc) requesters.
            self._arbiters = [RoundRobinArbiter(N_PORTS * n_vcs)
                              for _ in range(N_PORTS)]
            # Per-output wormhole lock: (in_port, vc) or None.
            self._locks: list[Optional[tuple[int, int]]] = [None] * N_PORTS
            self._active_locks = 0  # outputs with a wormhole in flight
            self._buffered = 0  # flits across all VC queues
            self.flits_forwarded = 0
            self.packets_forwarded = 0
            #: Cycles a granted wormhole could not advance (downstream full
            #: or the next flit not yet arrived) — link-level backpressure.
            self.output_stall_cycles = 0
            sim.add_thread(self._run(), clock, name="ctl")

    # ------------------------------------------------------------------
    def _route_of(self, flit: NocFlit) -> Port:
        return xy_route(self.node, flit.dest, self.mesh_width)

    def _run(self) -> Generator:
        # Ports are bound at mesh elaboration, before the first posedge;
        # boundary ports stay unbound forever, so snapshot the channels.
        # The idle-exit reads FastChannel._queue directly; custom link
        # kinds (GALS links, RTL signal links) run the full body always.
        in_channels = [p._channel for p in self.ins if p._channel is not None]
        fast_links = all(isinstance(ch, FastChannel) for ch in in_channels)
        while True:
            # Idle-exit: nothing buffered, no wormhole holding an output,
            # nothing arriving on any input link.  The full body would be
            # a provable no-op (peeks fail, arbiters see no requests, no
            # stall counting without a lock), so skip it.  Any held lock
            # forces the full body: a starved wormhole must keep counting
            # output_stall_cycles.
            if (fast_links and self._buffered == 0 and self._active_locks == 0
                    and all(not ch._queue for ch in in_channels)):
                yield
                continue
            self._accept_flits()
            self._forward_flits()
            yield

    def _accept_flits(self) -> None:
        """Move at most one flit per input port into its VC queue."""
        for p, port in enumerate(self.ins):
            if not port.bound:
                continue
            ok, flit = port.peek_nb()
            if not ok:
                continue
            queue = self._queues[p][flit.vc % self.n_vcs]
            if queue.full:
                continue  # backpressure: leave it in the channel
            ok, flit = port.pop_nb()
            if ok:
                queue.push(flit)
                self._buffered += 1

    def _forward_flits(self) -> None:
        """Arbitrate each output and forward one flit per output."""
        for out_port in range(N_PORTS):
            out = self.outs[out_port]
            if not out.bound or not out.can_push():
                continue
            lock = self._locks[out_port]
            if lock is not None:
                self._advance_wormhole(out_port, *lock)
                continue
            # Collect head flits requesting this output, by (port, vc).
            requests = []
            for p in range(N_PORTS):
                for v in range(self.n_vcs):
                    q = self._queues[p][v]
                    wants = (not q.empty and q.peek().is_head
                             and self._route_of(q.peek()) == out_port)
                    requests.append(wants)
            winner = self._arbiters[out_port].pick(requests)
            if winner is None:
                continue
            p, v = divmod(winner, self.n_vcs)
            self._locks[out_port] = (p, v)
            self._active_locks += 1
            self._advance_wormhole(out_port, p, v)

    def _advance_wormhole(self, out_port: int, p: int, v: int) -> None:
        queue = self._queues[p][v]
        if queue.empty:
            self.output_stall_cycles += 1
            return  # next flit not here yet; hold the lock
        flit = queue.peek()
        if self.outs[out_port].push_nb(flit):
            queue.pop()
            self._buffered -= 1
            self.flits_forwarded += 1
            if flit.is_tail:
                self._locks[out_port] = None
                self._active_locks -= 1
                self.packets_forwarded += 1
        else:
            self.output_stall_cycles += 1
