"""Design-productivity model (section 4).

"We estimate that by leveraging OOHLS, we were able to achieve a
productivity of between 2K-20K gates (NAND2 equivalents) per
engineer-day on unique unit-level designs, estimated to be significantly
higher than a baseline RTL-based design methodology."

The model grounds that range: effort per unit is driven by how much new
source a designer writes and verifies.  OOHLS raises productivity through
(1) source compression — loosely-timed C++ describes a gate of hardware
in far fewer lines than RTL — and (2) library reuse: MatchLib components
and Connections channels arrive pre-verified, so only the integration
code is new.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["UnitEffort", "MethodologyModel", "OOHLS_METHODOLOGY",
           "RTL_METHODOLOGY", "ProductivityReport", "productivity_report"]


@dataclass(frozen=True)
class UnitEffort:
    """One unique unit-level design."""

    name: str
    gates: float               # NAND2-equivalent size of the unit
    reuse_fraction: float      # fraction implemented by library instantiation

    def __post_init__(self):
        if self.gates <= 0:
            raise ValueError("gates must be positive")
        if not 0.0 <= self.reuse_fraction <= 1.0:
            raise ValueError("reuse_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MethodologyModel:
    """Source-density and effort coefficients of a design methodology."""

    name: str
    #: Gates of synthesized hardware per line of new source.
    gates_per_line: float
    #: New source lines written and debugged per engineer-day.
    lines_per_day: float
    #: Verification days per design day (testbench, debug, coverage).
    verification_ratio: float
    #: Residual integration cost for reused library code, as a fraction
    #: of what writing it from scratch would have cost.
    reuse_residual: float

    def unit_days(self, unit: UnitEffort) -> float:
        """Engineer-days to design + verify one unique unit."""
        effective_gates = unit.gates * (
            (1.0 - unit.reuse_fraction)
            + unit.reuse_fraction * self.reuse_residual
        )
        lines = effective_gates / self.gates_per_line
        design_days = lines / self.lines_per_day
        return design_days * (1.0 + self.verification_ratio)

    def productivity(self, unit: UnitEffort) -> float:
        """Gates per engineer-day for one unit."""
        return unit.gates / self.unit_days(unit)


#: OOHLS: loosely-timed templated C++ elaborates to ~40 gates/line
#: (lane replication, unrolled datapaths); MatchLib reuse costs ~15 % of
#: from-scratch effort; stall injection and C++ testbenches hold
#: verification near parity with design effort.
OOHLS_METHODOLOGY = MethodologyModel(
    name="OOHLS", gates_per_line=40.0, lines_per_day=120.0,
    verification_ratio=1.0, reuse_residual=0.15,
)

#: Hand RTL: ~10 gates/line of Verilog with generate loops; verification
#: dominates (the paper's "thousands of engineer-years" problem), and
#: RTL-level IP reuse still costs substantial integration/verification.
RTL_METHODOLOGY = MethodologyModel(
    name="hand RTL", gates_per_line=10.0, lines_per_day=70.0,
    verification_ratio=2.5, reuse_residual=0.6,
)


@dataclass(frozen=True)
class ProductivityReport:
    methodology: str
    per_unit: List[tuple]  # (name, gates/day)
    total_gates: float
    total_days: float

    @property
    def overall_productivity(self) -> float:
        return self.total_gates / self.total_days

    def to_text(self) -> str:
        lines = [f"{self.methodology}: "
                 f"{self.overall_productivity:,.0f} gates/engineer-day overall"]
        for name, p in self.per_unit:
            lines.append(f"  {name:>16}: {p:>9,.0f} gates/day")
        return "\n".join(lines)


def productivity_report(units: Sequence[UnitEffort],
                        model: MethodologyModel) -> ProductivityReport:
    """Per-unit and aggregate productivity under one methodology."""
    per_unit = [(u.name, model.productivity(u)) for u in units]
    total_days = sum(model.unit_days(u) for u in units)
    total_gates = sum(u.gates for u in units)
    return ProductivityReport(model.name, per_unit, total_gates, total_days)
