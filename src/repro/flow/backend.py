"""Back-end (RTL-to-layout) flow-runtime model (sections 3 and 4).

The paper: "With the small partition sizes and fine-grained GALS
approach, we were able to implement a 12-hour RTL-to-layout turnaround
time.  This enabled dozens of daily iterations during the
march-to-tapeout phase."

The model captures why partitioning + GALS gets there and a flat
synchronous flow does not:

* per-stage runtimes grow superlinearly with partition gate count
  (place and route are the worst offenders),
* replicated partitions are implemented once and stamped,
* partitions run in parallel across a compute farm,
* a synchronous hierarchical flow adds top-level clock-tree synthesis
  and cross-partition timing-closure iterations that GALS eliminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..gals.overhead import Partition

__all__ = ["FlowRuntimeModel", "TurnaroundReport"]


@dataclass(frozen=True)
class FlowRuntimeModel:
    """Tool-runtime coefficients (hours), calibrated to ~1M-gate blocks.

    Stage runtime = ``coeff * (gates / 1e6) ** exponent`` hours.
    """

    stage_coeff_hours: Dict[str, float] = field(default_factory=lambda: {
        "synthesis": 1.5,
        "floorplan": 0.5,
        "place": 2.5,
        "cts": 1.0,
        "route": 3.0,
        "sta_signoff": 1.5,
    })
    stage_exponent: Dict[str, float] = field(default_factory=lambda: {
        "synthesis": 1.1,
        "floorplan": 1.0,
        "place": 1.3,
        "cts": 1.1,
        "route": 1.4,
        "sta_signoff": 1.2,
    })
    #: Synchronous hierarchical flows: top-level clock distribution and
    #: cross-partition timing closure, in hours per closure iteration.
    top_level_cts_hours: float = 6.0
    cross_partition_closure_hours: float = 4.0
    sync_closure_iterations: int = 3

    def partition_hours(self, gates: float) -> float:
        """RTL-to-layout hours for one partition, stages in sequence."""
        if gates <= 0:
            raise ValueError("gates must be positive")
        total = 0.0
        for stage, coeff in self.stage_coeff_hours.items():
            total += coeff * (gates / 1e6) ** self.stage_exponent[stage]
        return total

    def turnaround(self, partitions: Sequence[Partition], *,
                   gals: bool = True, parallel: bool = True
                   ) -> "TurnaroundReport":
        """Full-chip RTL-to-layout turnaround.

        With ``parallel=True`` unique partitions run concurrently on the
        farm (replicated partitions are stamped from one implementation);
        the critical path is the slowest unique partition, plus the
        top-level work the clocking style demands.
        """
        unique: Dict[str, float] = {}
        for p in partitions:
            # Strip replication indices: pe0..pe14 are one unique design.
            key = p.name.rstrip("0123456789")
            unique[key] = max(unique.get(key, 0.0), p.logic_gates)
        per_unique = {name: self.partition_hours(g)
                      for name, g in unique.items()}
        if parallel:
            partition_hours = max(per_unique.values())
        else:
            partition_hours = sum(per_unique.values())
        top_hours = 0.0
        if not gals:
            top_hours = (self.top_level_cts_hours
                         + self.cross_partition_closure_hours
                         * self.sync_closure_iterations)
        return TurnaroundReport(
            unique_partitions=len(unique),
            per_partition_hours=per_unique,
            partition_hours=partition_hours,
            top_level_hours=top_hours,
        )

    def flat_hours(self, partitions: Sequence[Partition]) -> float:
        """The non-hierarchical alternative: one flat P&R of everything."""
        total_gates = sum(p.logic_gates for p in partitions)
        return self.partition_hours(total_gates)


@dataclass(frozen=True)
class TurnaroundReport:
    unique_partitions: int
    per_partition_hours: Dict[str, float]
    partition_hours: float
    top_level_hours: float

    @property
    def total_hours(self) -> float:
        return self.partition_hours + self.top_level_hours

    @property
    def daily_iterations(self) -> float:
        """How many full turnarounds fit in 24 hours."""
        return 24.0 / self.total_hours

    def to_text(self) -> str:
        lines = [f"{self.unique_partitions} unique partitions; "
                 f"turnaround {self.total_hours:.1f} h "
                 f"({self.daily_iterations:.1f} iterations/day)"]
        for name, hours in sorted(self.per_partition_hours.items()):
            lines.append(f"  {name:>12}: {hours:5.1f} h")
        if self.top_level_hours:
            lines.append(f"  {'top-level':>12}: {self.top_level_hours:5.1f} h "
                         f"(CTS + sync closure)")
        return "\n".join(lines)
