"""Front-to-back flow orchestration: backend turnaround, productivity,
and the chip inventory connecting the HLS engine to both (the
project-level analyses of section 4).
"""

from .backend import FlowRuntimeModel, TurnaroundReport
from .frontend import FlowReport, crossbar_testbench, run_frontend_flow
from .inventory import (
    UnitRecord,
    inventory_efforts,
    inventory_partitions,
    testchip_inventory,
)
from .productivity import (
    OOHLS_METHODOLOGY,
    RTL_METHODOLOGY,
    MethodologyModel,
    ProductivityReport,
    UnitEffort,
    productivity_report,
)

__all__ = [
    "FlowRuntimeModel", "TurnaroundReport",
    "FlowReport", "run_frontend_flow", "crossbar_testbench",
    "UnitEffort", "MethodologyModel", "ProductivityReport",
    "OOHLS_METHODOLOGY", "RTL_METHODOLOGY", "productivity_report",
    "UnitRecord", "testchip_inventory", "inventory_partitions",
    "inventory_efforts",
]
