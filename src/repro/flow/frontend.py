"""Front-end flow orchestration (Figure 1, end to end).

Runs one design through the paper's C++-to-gates pipeline:

1. **C++ simulation** — the fast (sim-accurate) functional model against
   a testbench,
2. **RTL cosim** — the same testbench over signal-level channels (the
   verification step Figure 1 labels "RTL cosim"), with output equality
   and elapsed-cycle comparison,
3. **HLS compilation** — schedule the architecture's dataflow graph
   under the clock constraint,
4. **logic synthesis & analysis** — area, power, and generated Verilog,

and returns the flow's "Results and Metrics": performance, power, area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hls.area import AreaReport, estimate_area
from ..hls.ir import DataflowGraph
from ..hls.power import PowerReport, estimate_power
from ..hls.rtl_gen import emit_verilog
from ..hls.schedule import Schedule, schedule

__all__ = ["FlowReport", "run_frontend_flow", "crossbar_testbench"]


@dataclass(frozen=True)
class FlowReport:
    """Figure 1's "Results and Metrics" for one design."""

    design: str
    functional_ok: bool
    cosim_ok: bool
    cycles_fast: int
    cycles_rtl: int
    area: AreaReport
    power: PowerReport
    verilog: str
    schedule: Schedule

    @property
    def cycle_error(self) -> float:
        if self.cycles_rtl == 0:
            return 0.0
        return abs(self.cycles_fast - self.cycles_rtl) / self.cycles_rtl

    def to_text(self) -> str:
        return "\n".join([
            f"design {self.design}:",
            f"  functional sim : {'PASS' if self.functional_ok else 'FAIL'} "
            f"({self.cycles_fast} cycles)",
            f"  RTL cosim      : {'PASS' if self.cosim_ok else 'FAIL'} "
            f"({self.cycles_rtl} cycles, "
            f"{100 * self.cycle_error:.1f}% vs fast model)",
            f"  area           : {self.area.total:,.0f} NAND2-eq, "
            f"latency {self.area.latency}",
            f"  power          : {self.power.total_mw:.3f} mW",
            f"  verilog        : {len(self.verilog.splitlines())} lines",
        ])


def run_frontend_flow(
    design: DataflowGraph,
    *,
    testbench: Callable[[str], tuple],
    clock_period_ps: float = 909.0,
    expected: Optional[object] = None,
    activity: float = 0.2,
) -> FlowReport:
    """Run the full Figure 1 pipeline for one design.

    ``testbench(mode)`` must run the design's architectural model with
    channels of the given mode (``"fast"`` or ``"rtl"``) and return
    ``(outputs, elapsed_cycles)``.  ``expected`` (if given) is the golden
    output; otherwise the fast model's output is the reference.
    """
    fast_out, fast_cycles = testbench("fast")
    golden = expected if expected is not None else fast_out
    functional_ok = fast_out == golden

    rtl_out, rtl_cycles = testbench("rtl")
    cosim_ok = rtl_out == golden

    sched = schedule(design, clock_period_ps=clock_period_ps)
    area = estimate_area(sched)
    power = estimate_power(sched, activity=activity, area=area)
    verilog = emit_verilog(sched)

    return FlowReport(
        design=design.name,
        functional_ok=functional_ok,
        cosim_ok=cosim_ok,
        cycles_fast=fast_cycles,
        cycles_rtl=rtl_cycles,
        area=area,
        power=power,
        verilog=verilog,
        schedule=sched,
    )


def crossbar_testbench(n_ports: int = 4, txns_per_port: int = 40,
                       seed: int = 5) -> Callable[[str], tuple]:
    """Ready-made testbench for the arbitrated crossbar architecture.

    Returns a callable suitable for :func:`run_frontend_flow`: it builds
    the crossbar's architectural model over fast or RTL-cosim channels,
    streams random traffic, and returns (sorted deliveries, cycles).
    """
    import random

    from ..connections.channel import Buffer
    from ..connections.ports import In, Out
    from ..connections.rtl_adapter import RtlChannel
    from ..kernel import Simulator
    from ..matchlib.arbitrated_crossbar import ArbitratedCrossbarModule

    rng = random.Random(seed)
    traffic = [
        [(rng.randrange(n_ports), (port, i)) for i in range(txns_per_port)]
        for port in range(n_ports)
    ]

    def run(mode: str) -> tuple:
        sim = Simulator()
        clk = sim.add_clock("clk", period=10)
        make = (Buffer if mode == "fast"
                else lambda s, c, **kw: RtlChannel(s, c, capacity=4,
                                                   name=kw.get("name", "ch")))
        xbar = ArbitratedCrossbarModule(sim, clk, n_ports, n_ports)
        in_chans = [make(sim, clk, name=f"i{i}") for i in range(n_ports)]
        out_chans = [make(sim, clk, name=f"o{o}") for o in range(n_ports)]
        for i in range(n_ports):
            xbar.ins[i].bind(in_chans[i])
            xbar.outs[i].bind(out_chans[i])
        total = n_ports * txns_per_port
        received = []
        done = {}

        def producer(i):
            src = Out(in_chans[i])
            for msg in traffic[i]:
                yield from src.push(msg)

        def consumer(o):
            dst = In(out_chans[o])
            while True:
                ok, msg = dst.pop_nb()
                if ok:
                    received.append(msg)
                    if len(received) >= total:
                        done["time"] = sim.now
                yield

        for i in range(n_ports):
            sim.add_thread(producer(i), clk, name=f"p{i}")
            sim.add_thread(consumer(i), clk, name=f"c{i}")
        sim.run(until=total * 4000)
        if "time" not in done:
            raise RuntimeError(f"crossbar testbench did not drain in {mode}")
        return sorted(map(str, received)), done["time"] // 10

    return run
