"""Chip inventory: ties the HLS engine to the backend/productivity models.

The front-end flow (Figure 1) ends in per-unit area reports; the
back-end and effort analyses consume them.  This module builds the
prototype SoC's unit inventory with HLS-estimated areas for the
datapath-like units and architectural estimates for the rest, producing
the partition list and effort table used by the turnaround and
productivity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..gals.overhead import Partition
from ..hls import estimate_area, schedule, vector_mac_design
from ..hls.designs import crossbar_dst_loop_design
from .productivity import UnitEffort

__all__ = ["UnitRecord", "testchip_inventory", "inventory_partitions",
           "inventory_efforts"]


@dataclass(frozen=True)
class UnitRecord:
    """One unique unit-level design in the SoC.

    ``gates`` is designed standard-cell logic; ``macro_gates`` is SRAM /
    hard-macro area instantiated (not designed) by the unit.
    """

    name: str
    gates: float
    replicas: int
    reuse_fraction: float
    source: str  # "hls" if the area came from the HLS engine
    macro_gates: float = 0.0


def testchip_inventory(*, clock_period_ps: float = 909.0) -> List[UnitRecord]:
    """The prototype SoC's unique units with estimated NAND2 areas.

    Datapath-shaped units are pushed through the HLS engine; memory
    macros and the Chisel-generated RISC-V use architectural estimates
    (macro area is not HLS-visible, and the paper also treats the
    RISC-V as external Verilog).
    """
    # PE datapath: 8-lane 16-bit MAC array, HLS-scheduled.
    pe_datapath = estimate_area(
        schedule(vector_mac_design(8, 16), clock_period_ps=clock_period_ps))
    # Global-memory crossbar: 8x32 dst-loop crossbar, HLS-scheduled.
    gmem_xbar = estimate_area(
        schedule(crossbar_dst_loop_design(8, 32),
                 clock_period_ps=clock_period_ps))

    scratchpad_macro_gates = 550_000   # banked SRAM macros
    pe_misc_logic = 240_000            # spad periphery, control, router if.
    pe_logic = pe_datapath.total + pe_misc_logic

    gmem_macro_gates = 3_000_000       # SRAM macro area, per partition
    gmem_logic = gmem_xbar.total + 450_000  # arbitration + periphery

    return [
        UnitRecord("pe", pe_logic, replicas=15, reuse_fraction=0.7,
                   source="hls", macro_gates=scratchpad_macro_gates),
        UnitRecord("gmem", gmem_logic, replicas=2, reuse_fraction=0.8,
                   source="hls", macro_gates=gmem_macro_gates),
        UnitRecord("riscv", 900_000, replicas=1, reuse_fraction=0.95,
                   source="external", macro_gates=500_000),
        UnitRecord("noc_router", 90_000, replicas=20, reuse_fraction=0.9,
                   source="hls"),
        UnitRecord("io", 700_000, replicas=1, reuse_fraction=0.4,
                   source="estimate"),
    ]


def inventory_partitions(inventory: List[UnitRecord]) -> List[Partition]:
    """Physical partitions from the inventory (routers fold into hosts)."""
    partitions: List[Partition] = []
    for unit in inventory:
        if unit.name == "noc_router":
            continue  # routers are instantiated inside each partition
        for i in range(unit.replicas):
            suffix = str(i) if unit.replicas > 1 else ""
            partitions.append(Partition(f"{unit.name}{suffix}",
                                        logic_gates=unit.gates,
                                        macro_gates=unit.macro_gates,
                                        n_interfaces=5))
    return partitions


def inventory_efforts(inventory: List[UnitRecord]) -> List[UnitEffort]:
    """Unique-unit effort records (replicas are free after the first)."""
    return [UnitEffort(u.name, u.gates, u.reuse_fraction)
            for u in inventory if u.source != "external"]
