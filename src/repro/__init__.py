"""repro — a Python reproduction of the DAC 2018 paper
"A Modular Digital VLSI Flow for High-Productivity SoC Design"
(Khailany et al., NVIDIA / DARPA CRAFT).

Subpackages
-----------
kernel       event-driven simulation kernel (SystemC analog)
connections  latency-insensitive channels (the paper's Connections library)
matchlib     the MatchLib hardware component library (Table 2)
hls          a small high-level-synthesis engine (scheduling, area, timing)
noc          network-on-chip routers and mesh topologies
axi          AXI-style interconnect components
gals         fine-grained GALS clocking and pausible bisynchronous FIFOs
soc          the prototype machine-learning SoC (Figure 5)
workloads    ML / computer-vision workloads run on the SoC
flow         front-to-back flow orchestration, backend and productivity models
observe      simulation observability: telemetry counters, reports, JSONL logs
sweep        parallel sweep engine with content-addressed result caching
faults       fault-injection campaigns and the deadlock/livelock watchdog

Modules
-------
registry     the unified experiment registry (one ExperimentSpec per
             experiment; the CLI, sweeps and fault campaigns derive
             their capabilities from it)
jobs         job-oriented execution core: JobRequest in, JobResult out
"""

__version__ = "1.0.0"

__all__ = [
    "kernel",
    "connections",
    "matchlib",
    "hls",
    "noc",
    "axi",
    "gals",
    "soc",
    "workloads",
    "flow",
    "observe",
    "sweep",
    "faults",
]
