"""AXI interconnect fabric: N masters, M slaves, address-range decode.

The bridge/fabric component of Table 2's AXI family.  Each slave owns an
address window; the fabric routes requests by address (rebasing to the
slave's local addresses) and returns responses to the requesting master.
One outstanding transaction per master per direction keeps response
routing trivial — the configuration the prototype SoC's control plane
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..connections.channel import Buffer
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..kernel import Gate
from .master import AxiMaster
from .slave import _SlaveBase
from .types import AxiAR, AxiAW, AxiB, AxiR, AxiResp, AxiW

__all__ = ["AddressRange", "AxiInterconnect"]


@dataclass(frozen=True)
class AddressRange:
    """Half-open address window [base, base + size) mapped to a slave."""

    base: int
    size: int

    def __post_init__(self):
        if self.size < 1 or self.base < 0:
            raise ValueError("need base >= 0 and size >= 1")

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def rebase(self, addr: int) -> int:
        return addr - self.base


class AxiInterconnect:
    """Single-threaded AXI crossbar with address decoding.

    Wire masters with :meth:`connect_master` and slaves with
    :meth:`connect_slave` *before* the simulation starts.
    """

    def __init__(self, sim, clock, *, name: str = "axix", channel_depth: int = 2):
        self._sim = sim
        self._clock = clock
        self._depth = channel_depth
        # One outstanding transaction per master per direction means the
        # fabric's request/response loops always drain, so channel-cycle
        # lint waives cycles through the fabric instance.
        with component_scope(sim, name, kind="AxiInterconnect", obj=self,
                             clock=clock,
                             attrs={"deadlock_free":
                                    "single outstanding txn per master"}
                             ) as inst:
            self._inst = inst
            self.name = inst.name if inst is not None else name
            # Per-master channel bundles (fabric side).
            self._m_aw: List[In] = []
            self._m_w: List[In] = []
            self._m_b: List[Out] = []
            self._m_ar: List[In] = []
            self._m_r: List[Out] = []
            # Per-slave channel bundles (fabric side) and ranges.
            self._s_aw: List[Out] = []
            self._s_w: List[Out] = []
            self._s_b: List[In] = []
            self._s_ar: List[Out] = []
            self._s_r: List[In] = []
            self.ranges: List[AddressRange] = []
            self.transactions = 0
            self.decode_errors = 0
            # Idle-wait point for the compiled backend: reopened when any
            # master's aw/ar delivers (plain one-cycle wait threaded).
            self._gate = Gate()
            sim.add_thread(self._run(), clock, name="ctl")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _enter(self):
        """Re-enter the fabric's scope for post-construction wiring."""
        design = getattr(self._sim, "design", None)
        if design is None or self._inst is None:
            from contextlib import nullcontext
            return nullcontext()
        return design.enter(self._inst)

    def _chan(self, tag: str) -> Buffer:
        return Buffer(self._sim, self._clock, capacity=self._depth, name=tag)

    def connect_master(self, master: AxiMaster) -> int:
        """Attach a master; returns its index."""
        idx = len(self._m_aw)
        with self._enter():
            for tag, m_port, lst, fabric_end in (
                ("aw", master.aw, self._m_aw, In),
                ("w", master.w, self._m_w, In),
                ("b", master.b, self._m_b, Out),
                ("ar", master.ar, self._m_ar, In),
                ("r", master.r, self._m_r, Out),
            ):
                chan = self._chan(f"m{idx}.{tag}")
                m_port.bind(chan)
                end = fabric_end(chan, name=f"m{idx}.{tag}")
                lst.append(end)
        return idx

    def connect_slave(self, slave: _SlaveBase, range_: AddressRange) -> int:
        """Attach a slave owning ``range_``; returns its index."""
        for existing in self.ranges:
            if (range_.base < existing.base + existing.size
                    and existing.base < range_.base + range_.size):
                raise ValueError("overlapping slave address ranges")
        idx = len(self._s_aw)
        with self._enter():
            for tag, s_port, lst, fabric_end in (
                ("aw", slave.aw, self._s_aw, Out),
                ("w", slave.w, self._s_w, Out),
                ("b", slave.b, self._s_b, In),
                ("ar", slave.ar, self._s_ar, Out),
                ("r", slave.r, self._s_r, In),
            ):
                chan = self._chan(f"s{idx}.{tag}")
                end = fabric_end(chan, name=f"s{idx}.{tag}")
                s_port.bind(chan)
                lst.append(end)
        self.ranges.append(range_)
        return idx

    def _decode(self, addr: int) -> Optional[int]:
        for idx, r in enumerate(self.ranges):
            if r.contains(addr):
                return idx
        return None

    # ------------------------------------------------------------------
    # fabric engine: serve masters round-robin, one txn at a time
    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        # Request channels are fabric-built Buffers (see _chan), so the
        # wake hook always exists; masters connected after the first
        # posedge simply join the watch set on the next idle pass.
        gate = self._gate
        watched = 0
        while True:
            if watched < len(self._m_aw):
                for ports in (self._m_aw[watched:], self._m_ar[watched:]):
                    for port in ports:
                        port._channel.add_wake_gate(gate)
                watched = len(self._m_aw)
            progressed = False
            for m in range(len(self._m_aw)):
                ok, aw = self._m_aw[m].pop_nb()
                if ok:
                    yield from self._route_write(m, aw)
                    progressed = True
                ok, ar = self._m_ar[m].pop_nb()
                if ok:
                    yield from self._route_read(m, ar)
                    progressed = True
            if not progressed:
                yield gate

    def _route_write(self, m: int, aw: AxiAW) -> Generator:
        s = self._decode(aw.addr)
        if s is None:
            # Consume the data beats, return a decode error.
            while True:
                w: AxiW = yield from self._m_w[m].pop()
                if w.last:
                    break
            self.decode_errors += 1
            yield from self._m_b[m].push(AxiB(resp=AxiResp.DECERR, id_=aw.id_))
            return
        rng = self.ranges[s]
        yield from self._s_aw[s].push(
            AxiAW(addr=rng.rebase(aw.addr), length=aw.length, id_=aw.id_))
        while True:
            w = yield from self._m_w[m].pop()
            yield from self._s_w[s].push(w)
            if w.last:
                break
        rsp: AxiB = yield from self._s_b[s].pop()
        yield from self._m_b[m].push(rsp)
        self.transactions += 1

    def _route_read(self, m: int, ar: AxiAR) -> Generator:
        s = self._decode(ar.addr)
        if s is None:
            self.decode_errors += 1
            yield from self._m_r[m].push(
                AxiR(data=0, last=True, resp=AxiResp.DECERR, id_=ar.id_))
            return
        rng = self.ranges[s]
        yield from self._s_ar[s].push(
            AxiAR(addr=rng.rebase(ar.addr), length=ar.length, id_=ar.id_))
        while True:
            beat: AxiR = yield from self._s_r[s].pop()
            yield from self._m_r[m].push(beat)
            if beat.last:
                break
        self.transactions += 1
