"""AXI master interface helper.

Owns the five channel endpoints on the master side and provides
blocking ``read``/``write`` generators for use inside a module's thread
— the way the RISC-V controller of the prototype SoC programs the
accelerator's control registers over the AXI bus.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..connections.ports import In, Out
from .types import AxiAR, AxiAW, AxiB, AxiR, AxiResp, AxiW

__all__ = ["AxiMaster", "AxiError"]


class AxiError(RuntimeError):
    """Raised when a transaction returns a non-OKAY response."""


class AxiMaster:
    """Master-side port bundle with blocking transaction helpers."""

    def __init__(self, *, name: str = "axim", id_: int = 0):
        self.name = name
        self.id_ = id_
        self.aw: Out = Out(name=f"{name}.aw")
        self.w: Out = Out(name=f"{name}.w")
        self.b: In = In(name=f"{name}.b")
        self.ar: Out = Out(name=f"{name}.ar")
        self.r: In = In(name=f"{name}.r")
        self.reads_done = 0
        self.writes_done = 0

    def write(self, addr: int, data: Any) -> Generator:
        """Blocking single-beat write; raises :class:`AxiError` on error."""
        result = yield from self.write_burst(addr, [data])
        return result

    def write_burst(self, addr: int, beats: List[Any]) -> Generator:
        """Blocking burst write of ``beats`` consecutive words."""
        if not beats:
            raise ValueError("burst needs at least one beat")
        yield from self.aw.push(AxiAW(addr=addr, length=len(beats), id_=self.id_))
        for i, data in enumerate(beats):
            yield from self.w.push(AxiW(data=data, last=(i == len(beats) - 1),
                                        id_=self.id_))
        rsp: AxiB = yield from self.b.pop()
        if rsp.resp != AxiResp.OKAY:
            raise AxiError(f"{self.name}: write to {addr:#x} -> {rsp.resp.name}")
        self.writes_done += 1
        return rsp

    def read(self, addr: int) -> Generator:
        """Blocking single-beat read; returns the data word."""
        beats = yield from self.read_burst(addr, 1)
        return beats[0]

    def read_burst(self, addr: int, length: int) -> Generator:
        """Blocking burst read; returns the list of data beats."""
        if length < 1:
            raise ValueError("burst length must be >= 1")
        yield from self.ar.push(AxiAR(addr=addr, length=length, id_=self.id_))
        beats: List[Any] = []
        while True:
            beat: AxiR = yield from self.r.pop()
            if beat.resp != AxiResp.OKAY:
                raise AxiError(f"{self.name}: read at {addr:#x} -> {beat.resp.name}")
            beats.append(beat.data)
            if beat.last:
                break
        if len(beats) != length:
            raise AxiError(
                f"{self.name}: read burst returned {len(beats)} beats, "
                f"expected {length}"
            )
        self.reads_done += 1
        return beats
