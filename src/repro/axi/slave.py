"""AXI slave interfaces.

:class:`AxiMemorySlave` serves reads/writes from a
:class:`~repro.matchlib.mem_array.MemArray`;
:class:`AxiRegisterSlave` exposes a register file with read/write
callbacks — the control/status register block every accelerator in the
prototype SoC hangs off the AXI bus.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..kernel import Gate
from ..matchlib.mem_array import MemArray
from .types import AxiAR, AxiAW, AxiB, AxiR, AxiResp, AxiW

__all__ = ["AxiMemorySlave", "AxiRegisterSlave"]


class _SlaveBase:
    """Shared five-channel slave plumbing and the service loop."""

    def __init__(self, sim, clock, *, name: str, latency: int = 1):
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.latency = latency
        with component_scope(sim, name, kind=type(self).__name__, obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.aw: In = In(name="aw")
            self.w: In = In(name="w")
            self.b: Out = Out(name="b")
            self.ar: In = In(name="ar")
            self.r: Out = Out(name="r")
            self.reads_served = 0
            self.writes_served = 0
            # Idle-wait point for the compiled backend: reopened when a
            # request lands on aw or ar (plain one-cycle wait threaded).
            self._gate = Gate()
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        # Park only when both request channels expose the wake hook.
        gate = self._gate
        hooks = [getattr(port._channel, "add_wake_gate", None)
                 for port in (self.aw, self.ar)]
        parkable = all(hook is not None for hook in hooks)
        if parkable:
            for hook in hooks:
                hook(gate)
        while True:
            progressed = False
            ok, aw = self.aw.pop_nb()
            if ok:
                yield from self._serve_write(aw)
                progressed = True
            ok, ar = self.ar.pop_nb()
            if ok:
                yield from self._serve_read(ar)
                progressed = True
            if not progressed:
                yield gate if parkable else None

    def _serve_write(self, aw: AxiAW) -> Generator:
        resp = AxiResp.OKAY
        for beat in range(aw.length):
            w: AxiW = yield from self.w.pop()
            if not self._do_write(aw.addr + beat, w.data):
                resp = AxiResp.SLVERR
        if self.latency:
            yield self.latency
        yield from self.b.push(AxiB(resp=resp, id_=aw.id_))
        self.writes_served += 1

    def _serve_read(self, ar: AxiAR) -> Generator:
        if self.latency:
            yield self.latency
        for beat in range(ar.length):
            ok, data = self._do_read(ar.addr + beat)
            yield from self.r.push(AxiR(
                data=data,
                last=(beat == ar.length - 1),
                resp=AxiResp.OKAY if ok else AxiResp.SLVERR,
                id_=ar.id_,
            ))
        self.reads_served += 1

    # subclass hooks ----------------------------------------------------
    def _do_read(self, addr: int) -> tuple[bool, Any]:
        raise NotImplementedError

    def _do_write(self, addr: int, data: Any) -> bool:
        raise NotImplementedError


class AxiMemorySlave(_SlaveBase):
    """Memory-backed AXI slave."""

    def __init__(self, sim, clock, memory: MemArray, *, name: str = "axis",
                 latency: int = 1):
        self.memory = memory
        super().__init__(sim, clock, name=name, latency=latency)

    def _do_read(self, addr: int) -> tuple[bool, Any]:
        if not 0 <= addr < self.memory.entries:
            return False, 0
        return True, self.memory.read(addr)

    def _do_write(self, addr: int, data: Any) -> bool:
        if not 0 <= addr < self.memory.entries:
            return False
        self.memory.write(addr, data)
        return True


class AxiRegisterSlave(_SlaveBase):
    """Register-file AXI slave with per-register write callbacks.

    ``on_write`` (if given) is called as ``on_write(addr, value)`` after
    each register update — how accelerator control units observe kick-off
    writes.
    """

    def __init__(self, sim, clock, *, n_regs: int, name: str = "axireg",
                 latency: int = 0,
                 on_write: Optional[Callable[[int, Any], None]] = None):
        if n_regs < 1:
            raise ValueError("need at least one register")
        self.regs: Dict[int, Any] = {i: 0 for i in range(n_regs)}
        self.on_write = on_write
        super().__init__(sim, clock, name=name, latency=latency)

    def _do_read(self, addr: int) -> tuple[bool, Any]:
        if addr not in self.regs:
            return False, 0
        return True, self.regs[addr]

    def _do_write(self, addr: int, data: Any) -> bool:
        if addr not in self.regs:
            return False
        self.regs[addr] = data
        if self.on_write is not None:
            self.on_write(addr, data)
        return True
