"""AXI channel message types.

A five-channel AXI-style interface (Table 2's "AXI Components"): write
address (AW), write data (W), write response (B), read address (AR),
read data (R).  Each channel is carried over an LI channel, which is
exactly how the paper implements AXI on top of Connections.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

__all__ = ["AxiResp", "AxiAW", "AxiW", "AxiB", "AxiAR", "AxiR"]


class AxiResp(IntEnum):
    """Response codes (subset of the AXI spec)."""

    OKAY = 0
    SLVERR = 2
    DECERR = 3


@dataclass(frozen=True)
class AxiAW:
    """Write-address beat: start address and burst length (beats)."""

    addr: int
    length: int = 1
    id_: int = 0

    def __post_init__(self):
        if self.length < 1:
            raise ValueError("burst length must be >= 1")


@dataclass(frozen=True)
class AxiW:
    """Write-data beat."""

    data: Any
    last: bool = True
    id_: int = 0


@dataclass(frozen=True)
class AxiB:
    """Write response."""

    resp: AxiResp = AxiResp.OKAY
    id_: int = 0


@dataclass(frozen=True)
class AxiAR:
    """Read-address beat: start address and burst length (beats)."""

    addr: int
    length: int = 1
    id_: int = 0

    def __post_init__(self):
        if self.length < 1:
            raise ValueError("burst length must be >= 1")


@dataclass(frozen=True)
class AxiR:
    """Read-data beat."""

    data: Any
    last: bool = True
    resp: AxiResp = AxiResp.OKAY
    id_: int = 0
