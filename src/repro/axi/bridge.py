"""AXI-over-NoC bridges (Table 2: "bridges for AXI interconnect").

A pair of modules lets an AXI master at one mesh node talk to an AXI
slave at another:

* :class:`AxiNocInitiator` — sits where the master is: terminates the
  master's five channels, packs each transaction into a NoC message,
  and replays the remote response;
* :class:`AxiNocTarget` — sits where the slave is: unpacks transaction
  messages and drives the slave's channels as a local master.

Message formats (tuples over the mesh's message layer):
``("axi_w", txn_id, addr, [beats])`` / ``("axi_r", txn_id, addr, length)``
answered by ``("axi_b", txn_id, resp)`` / ``("axi_rd", txn_id, resp,
[beats])``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, Generator, List

from ..connections.ports import In, Out
from ..noc.mesh import NetworkInterface
from .types import AxiAR, AxiAW, AxiB, AxiR, AxiResp, AxiW

__all__ = ["AxiNocInitiator", "AxiNocTarget"]


class AxiNocInitiator:
    """Slave-facing bridge: AXI channels in, NoC messages out.

    Bind the local master's channels to ``aw``/``w``/``b``/``ar``/``r``
    exactly as if this were the slave.
    """

    def __init__(self, sim, clock, ni: NetworkInterface, *, target_node: int,
                 name: str = "axi_noc_init"):
        self.name = name
        self.ni = ni
        self.target_node = target_node
        self.aw: In = In(name=f"{name}.aw")
        self.w: In = In(name=f"{name}.w")
        self.b: Out = Out(name=f"{name}.b")
        self.ar: In = In(name=f"{name}.ar")
        self.r: Out = Out(name=f"{name}.r")
        self._txn_ids = itertools.count()
        self._responses: Dict[int, tuple] = {}
        self.transactions = 0
        ni.handler = self._on_message
        sim.add_thread(self._run(), clock, name=name)

    def _on_message(self, src: int, payloads: List[Any]) -> None:
        kind, txn_id = payloads[0], payloads[1]
        self._responses[txn_id] = tuple(payloads)

    def _await(self, txn_id: int) -> Generator:
        while txn_id not in self._responses:
            yield
        return self._responses.pop(txn_id)

    def _run(self) -> Generator:
        while True:
            progressed = False
            ok, aw = self.aw.pop_nb()
            if ok:
                yield from self._forward_write(aw)
                progressed = True
            ok, ar = self.ar.pop_nb()
            if ok:
                yield from self._forward_read(ar)
                progressed = True
            if not progressed:
                yield

    def _forward_write(self, aw: AxiAW) -> Generator:
        beats = []
        while True:
            w: AxiW = yield from self.w.pop()
            beats.append(w.data)
            if w.last:
                break
        txn_id = next(self._txn_ids)
        self.ni.send(self.target_node, ["axi_w", txn_id, aw.addr, beats])
        rsp = yield from self._await(txn_id)
        yield from self.b.push(AxiB(resp=AxiResp(rsp[2]), id_=aw.id_))
        self.transactions += 1

    def _forward_read(self, ar: AxiAR) -> Generator:
        txn_id = next(self._txn_ids)
        self.ni.send(self.target_node, ["axi_r", txn_id, ar.addr, ar.length])
        rsp = yield from self._await(txn_id)
        resp, beats = AxiResp(rsp[2]), rsp[3]
        for i, data in enumerate(beats):
            yield from self.r.push(AxiR(data=data, last=(i == len(beats) - 1),
                                        resp=resp, id_=ar.id_))
        self.transactions += 1


class AxiNocTarget:
    """Master-facing bridge: NoC messages in, AXI channels out.

    Bind ``aw``/``w``/``b``/``ar``/``r`` to the local slave's channels
    exactly as a master would.
    """

    def __init__(self, sim, clock, ni: NetworkInterface,
                 *, name: str = "axi_noc_target"):
        self.name = name
        self.ni = ni
        self.aw: Out = Out(name=f"{name}.aw")
        self.w: Out = Out(name=f"{name}.w")
        self.b: In = In(name=f"{name}.b")
        self.ar: Out = Out(name=f"{name}.ar")
        self.r: In = In(name=f"{name}.r")
        self._requests: deque = deque()
        self.transactions = 0
        ni.handler = lambda src, p: self._requests.append((src, p))
        sim.add_thread(self._run(), clock, name=name)

    def _run(self) -> Generator:
        while True:
            if not self._requests:
                yield
                continue
            src, msg = self._requests.popleft()
            kind, txn_id = msg[0], msg[1]
            if kind == "axi_w":
                yield from self._do_write(src, txn_id, msg[2], msg[3])
            elif kind == "axi_r":
                yield from self._do_read(src, txn_id, msg[2], msg[3])
            else:
                raise ValueError(f"{self.name}: unknown bridge message "
                                 f"{kind!r}")
            self.transactions += 1

    def _do_write(self, src: int, txn_id: int, addr: int,
                  beats: List[Any]) -> Generator:
        yield from self.aw.push(AxiAW(addr=addr, length=len(beats)))
        for i, data in enumerate(beats):
            yield from self.w.push(AxiW(data=data, last=(i == len(beats) - 1)))
        rsp: AxiB = yield from self.b.pop()
        self.ni.send(src, ["axi_b", txn_id, int(rsp.resp)])

    def _do_read(self, src: int, txn_id: int, addr: int,
                 length: int) -> Generator:
        yield from self.ar.push(AxiAR(addr=addr, length=length))
        beats = []
        resp = AxiResp.OKAY
        while True:
            beat: AxiR = yield from self.r.pop()
            beats.append(beat.data)
            if beat.resp != AxiResp.OKAY:
                resp = beat.resp
            if beat.last:
                break
        self.ni.send(src, ["axi_rd", txn_id, int(resp), beats])
