"""AXI components (Table 2): master/slave interfaces and the
interconnect fabric, all carried over LI channels.

Quick use::

    from repro.axi import AxiMaster, AxiMemorySlave, AxiInterconnect, AddressRange

    fabric = AxiInterconnect(sim, clk)
    fabric.connect_master(master := AxiMaster())
    fabric.connect_slave(AxiMemorySlave(sim, clk, mem), AddressRange(0x1000, 256))
    # inside a thread:  data = yield from master.read(0x1004)
"""

from .bridge import AxiNocInitiator, AxiNocTarget
from .interconnect import AddressRange, AxiInterconnect
from .master import AxiError, AxiMaster
from .slave import AxiMemorySlave, AxiRegisterSlave
from .types import AxiAR, AxiAW, AxiB, AxiR, AxiResp, AxiW

__all__ = [
    "AxiResp", "AxiAW", "AxiW", "AxiB", "AxiAR", "AxiR",
    "AxiMaster", "AxiError",
    "AxiMemorySlave", "AxiRegisterSlave",
    "AxiInterconnect", "AddressRange",
    "AxiNocInitiator", "AxiNocTarget",
]
