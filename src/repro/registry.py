"""The unified experiment registry: one declarative spec per experiment.

Before this module existed the repository kept four parallel, hand-
synchronized per-experiment registries — CLI verbs in ``repro.cli``,
``DESIGN_BUILDERS`` in ``repro.experiments.designs``, ``SWEEP_SPECS``
in ``repro.experiments.sweeps``, and fault ``HARNESSES`` in
``repro.faults.campaign`` — and drift between them was a matter of
time (the CLI's fault-harness choices were a static copy).  This module
replaces all four with **one** declarative :class:`ExperimentSpec` that
each experiment module registers exactly once; every legacy registry
survives as a read-through view derived from the specs:

* :func:`design_builders_view` → ``repro.experiments.designs
  .DESIGN_BUILDERS`` (experiment name → construction-only builder),
* :func:`sweep_specs_view` → ``repro.experiments.sweeps.SWEEP_SPECS``
  (sweep name → :class:`SweepSpec`),
* :func:`harnesses_view` → ``repro.faults.campaign.HARNESSES``
  (harness name → fault harness),
* :func:`commands_view` → the CLI's verb table.

The views are live: registering a spec (or attaching a capability to
one) updates every view at once, so the CLI's choices, the sweep
worker's runner resolution, and the campaign runner can never disagree
about what the system can run.

Registration is import-driven and lazy: importing this module costs
nothing, and the first lookup calls :func:`load`, which imports the
experiment catalog (``repro.experiments`` and ``repro.faults.campaign``
— every experiment module registers its spec at import time).  Worker
processes resolve runners by name through the same path, so spawn- and
fork-started pools both see the full catalog.

Usage::

    from repro import registry

    spec = registry.get("fig3")
    payload = spec.runner({"ports": "2,4", "txns": 10}, seed=1)
    print(spec.formatter(payload))

See ``docs/REGISTRY.md`` for the full walkthrough, including the
job-oriented execution core (:mod:`repro.jobs`) built on top.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional
from typing import Tuple

__all__ = [
    "CliParam", "SweepSpec", "ExperimentSpec",
    "register", "register_sweep", "attach_harness",
    "get", "names", "specs", "load",
    "build_design", "get_sweep", "get_harness",
    "design_builders_view", "sweep_specs_view", "harnesses_view",
    "commands_view",
]


@dataclass(frozen=True)
class CliParam:
    """One experiment-specific CLI parameter (e.g. ``fig3 --ports``).

    The same declaration drives the legacy verb's flag
    (``repro fig3 --ports 2,4``), the generic runner's key/value form
    (``repro run fig3 -p ports=2,4``), and ``repro describe``'s
    parameter table.  ``type`` parses the string form; the parsed value
    lands in the runner's ``params`` dict under ``name``.
    """

    name: str
    default: Any
    type: Callable[[str], Any] = str
    help: str = ""

    @property
    def flag(self) -> str:
        return "--" + self.name.replace("_", "-")


@dataclass(frozen=True)
class SweepSpec:
    """One registered sweep: space builder + point runner + formatter.

    (Moved here from ``repro.experiments.sweeps``, which still re-exports
    it.)  ``replay``, when set, opts the experiment into incremental
    sweeps (``run_sweep(..., incremental=True)``): it carries the
    semantic map from sweep points to captured traces and back.
    Experiments without one still work incrementally — every point just
    falls back to full simulation with the reason recorded.

    ``batch``, when set, opts the experiment into warm batched sweeps
    (``run_sweep(..., warm=True)``): it carries the construct-once map —
    build one snapshot-eligible session per structural base, then
    evaluate every point against it via mutate/run/restore.  Experiments
    without one still accept ``--warm``; every point falls back to a
    fresh per-point simulation with the reason recorded.
    """

    name: str
    help: str
    space: Callable[..., List[Any]]
    runner: Callable[[dict, int], dict]
    summarize: Optional[Callable[[List[dict]], str]] = None
    replay: Optional[Any] = None  # repro.trace.adapter.ReplayAdapter
    batch: Optional[Any] = None   # repro.sweep.warm.BatchAdapter


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the system knows how to do with one experiment.

    One spec per experiment, declared where the experiment lives.  The
    capability fields are all optional; a spec with only a fault
    harness (``packet_stream``) or only a sweep (``fault_campaign``) is
    legal and simply ``hidden`` from the CLI's experiment verbs.

    ``runner(params, seed)`` returns the experiment's result payload
    (plain dataclasses/dicts, serializable through
    :mod:`repro.sweep.serialize`); ``formatter(payload)`` renders it as
    the verb's usual table.  ``seed=None`` means "use the experiment's
    default" — deterministic experiments accept and ignore it.
    """

    name: str
    summary: str
    #: (params, seed) -> result payload.  ``None`` = not directly
    #: runnable (harness- or sweep-only specs).
    runner: Optional[Callable[[dict, Optional[int]], Any]] = None
    #: payload -> human-readable text (the legacy verb's output).
    formatter: Optional[Callable[[Any], str]] = None
    #: Construction-only design builder (returns the Simulator) for
    #: ``inspect``/``lint``.  ``None`` = analytic, no simulated design.
    design: Optional[Callable[[], Any]] = None
    #: Parameter-sweep capability (space/runner/summarize/replay).
    sweep: Optional[SweepSpec] = None
    #: Fault-campaign harness (attached by ``repro.faults.campaign``).
    harness: Optional[Any] = None
    #: Experiment-specific CLI parameters.
    params: Tuple[CliParam, ...] = ()
    #: Declared compiled-backend eligibility: whether
    #: ``--backend compiled`` is expected to engage (False = the
    #: capability check is known to fall back; the run still works).
    compiled: bool = True
    #: Whether ``--seed`` changes the result (False = accepted, ignored).
    seedable: bool = True
    #: Canonical result schema tag + version, stamped on every
    #: :class:`repro.jobs.JobResult` for downstream consumers.
    schema: str = ""
    schema_version: int = 1
    #: Hidden specs have no CLI experiment verb (harness fixtures, the
    #: fault_campaign meta-sweep).
    hidden: bool = False
    #: Stable ordering for ``repro list`` (ascending, then name).
    order: int = 1000

    def __post_init__(self):
        if not self.schema:
            object.__setattr__(
                self, "schema", self.name.replace("-", "_"))

    @property
    def runnable(self) -> bool:
        """True when the spec backs a CLI experiment verb."""
        return self.runner is not None and not self.hidden

    def capabilities(self) -> Dict[str, Any]:
        """Capability summary (``repro list`` / ``repro describe``)."""
        return {
            "design": self.design is not None,
            "sweep": self.sweep.name if self.sweep else None,
            "replay": (getattr(self.sweep.replay, "kind", None)
                       if self.sweep and self.sweep.replay else None),
            "warm": bool(self.sweep is not None
                         and self.sweep.batch is not None),
            "harness": (getattr(self.harness, "name", None)
                        if self.harness else None),
            "compiled": self.compiled,
            "seedable": self.seedable,
            "schema": f"{self.schema}/v{self.schema_version}",
        }


# ----------------------------------------------------------------------
# the registry proper
# ----------------------------------------------------------------------
_SPECS: Dict[str, ExperimentSpec] = {}
#: sweep name -> spec name (a spec's sweep may use a different name:
#: the "stalls" experiment owns the "stall_verification" sweep).
_SWEEP_INDEX: Dict[str, str] = {}
#: harness name -> spec name.
_HARNESS_INDEX: Dict[str, str] = {}
#: Harnesses attached before their spec was registered (import-order
#: independence for ``repro.faults.campaign``).
_PENDING_HARNESSES: Dict[str, Any] = {}

_LOADED = False
_LOADING = False

#: Modules whose import registers the bundled experiment catalog.
_CATALOG_MODULES = ("repro.experiments", "repro.faults.campaign",
                    "repro.verify")


def load() -> None:
    """Import the experiment catalog (idempotent, re-entrant safe).

    Every bundled experiment module registers its spec at import time;
    this imports them all so views and lookups are complete.  Safe to
    call from inside a catalog module's own import (the re-entrancy
    guard makes the nested call a no-op).
    """
    global _LOADED, _LOADING
    if _LOADED or _LOADING:
        return
    _LOADING = True
    try:
        import importlib

        for module in _CATALOG_MODULES:
            importlib.import_module(module)
        _LOADED = True
    finally:
        _LOADING = False


def _reindex(spec: ExperimentSpec) -> None:
    if spec.sweep is not None:
        owner = _SWEEP_INDEX.get(spec.sweep.name)
        if owner is not None and owner != spec.name:
            raise ValueError(
                f"sweep {spec.sweep.name!r} is already registered by "
                f"experiment {owner!r}")
        _SWEEP_INDEX[spec.sweep.name] = spec.name
    if spec.harness is not None:
        hname = spec.harness.name
        owner = _HARNESS_INDEX.get(hname)
        if owner is not None and owner != spec.name:
            raise ValueError(
                f"fault harness {hname!r} is already registered by "
                f"experiment {owner!r}")
        _HARNESS_INDEX[hname] = spec.name


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or re-register) one experiment's spec.

    Returns the stored spec — with any harness that was attached before
    registration folded in.  Re-registering the same name replaces the
    old spec (module reloads); sweep/harness *names* stay unique across
    distinct specs.
    """
    pending = _PENDING_HARNESSES.pop(spec.name, None)
    if pending is not None and spec.harness is None:
        spec = replace(spec, harness=pending)
    _reindex(spec)
    _SPECS[spec.name] = spec
    return spec


def attach_harness(name: str, harness: Any) -> None:
    """Attach a fault harness to the named spec (deferred if unknown).

    ``repro.faults.campaign`` lives downstream of the experiment
    modules, so harnesses are attached after the fact; attaching before
    the spec exists parks the harness until :func:`register` sees it.
    """
    spec = _SPECS.get(name)
    if spec is None:
        _PENDING_HARNESSES[name] = harness
        return
    register(replace(spec, harness=harness))


def register_sweep(sweep: SweepSpec) -> SweepSpec:
    """Register a bare sweep (the legacy ``register_sweep`` surface).

    If a spec already owns a sweep with this name the sweep is replaced
    in place; otherwise a hidden sweep-only spec is created (tests
    register synthetic experiments this way, and fork-started workers
    inherit them).
    """
    owner = _SWEEP_INDEX.get(sweep.name)
    if owner is not None:
        register(replace(_SPECS[owner], sweep=sweep))
    else:
        register(ExperimentSpec(
            name=sweep.name, summary=sweep.help, sweep=sweep, hidden=True))
    return sweep


def get(name: str) -> ExperimentSpec:
    """Look up a spec by experiment name (loads the catalog first)."""
    load()
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; one of "
            f"{sorted(_SPECS)}") from None


def names(*, hidden: bool = False, runnable: bool = False) -> List[str]:
    """Registered experiment names in ``order``-then-name order."""
    load()
    out = [s for s in _SPECS.values() if hidden or not s.hidden]
    if runnable:
        out = [s for s in out if s.runnable]
    return [s.name for s in sorted(out, key=lambda s: (s.order, s.name))]


def specs(*, hidden: bool = False) -> List[ExperimentSpec]:
    """Registered specs in ``order``-then-name order."""
    return [_SPECS[n] for n in names(hidden=hidden)]


# ----------------------------------------------------------------------
# capability lookups (the programmatic face of the old registries)
# ----------------------------------------------------------------------
def build_design(experiment: str):
    """Construct the named experiment's design; returns its Simulator.

    Raises ``KeyError`` for unknown experiments and ``ValueError`` for
    analytic experiments that have no simulated design.
    """
    load()
    if experiment not in _SPECS or _SPECS[experiment].hidden:
        raise KeyError(
            f"unknown experiment {experiment!r}; one of "
            f"{sorted(design_builders_view())}")
    spec = _SPECS[experiment]
    if spec.design is None:
        raise ValueError(f"experiment {experiment!r} is analytic — "
                         "it builds no simulated design")
    return spec.design()


def get_sweep(name: str) -> SweepSpec:
    """Look up a sweep by *sweep* name (may differ from the spec name)."""
    load()
    try:
        return _SPECS[_SWEEP_INDEX[name]].sweep
    except KeyError:
        raise KeyError(f"unknown sweep experiment {name!r}; one of "
                       f"{sorted(_SWEEP_INDEX)}") from None


def get_harness(name: str) -> Any:
    """Look up a fault harness by *harness* name."""
    load()
    try:
        return _SPECS[_HARNESS_INDEX[name]].harness
    except KeyError:
        raise KeyError(f"unknown fault-campaign harness {name!r}; "
                       f"one of {sorted(_HARNESS_INDEX)}") from None


def sweep_owner(sweep_name: str) -> Optional[ExperimentSpec]:
    """The spec that owns the named sweep (None when unregistered)."""
    load()
    owner = _SWEEP_INDEX.get(sweep_name)
    return _SPECS.get(owner) if owner is not None else None


# ----------------------------------------------------------------------
# deprecated read-through views (the old registries' import surface)
# ----------------------------------------------------------------------
class _RegistryView(Mapping):
    """A live, read-only Mapping derived from the registered specs.

    ``keys`` enumerates the view's key set from the current registry
    state and ``value`` projects one key to the legacy registry's value
    — so code importing ``DESIGN_BUILDERS`` / ``SWEEP_SPECS`` /
    ``HARNESSES`` keeps working, while the specs stay the single source
    of truth.
    """

    def __init__(self, keys: Callable[[], List[str]],
                 value: Callable[[str], Any], kind: str):
        self._keys = keys
        self._value = value
        self._kind = kind

    def __getitem__(self, key: str) -> Any:
        load()
        if key not in self._keys():
            raise KeyError(key)
        return self._value(key)

    def __iter__(self) -> Iterator[str]:
        load()
        return iter(self._keys())

    def __len__(self) -> int:
        load()
        return len(self._keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<registry view: {self._kind} ({len(self)} entries)>"


def design_builders_view() -> Mapping:
    """``DESIGN_BUILDERS``: experiment verb -> builder (None=analytic)."""
    return _RegistryView(
        keys=lambda: [n for n, s in _SPECS.items() if s.runnable],
        value=lambda n: _SPECS[n].design,
        kind="design builders")


def sweep_specs_view() -> Mapping:
    """``SWEEP_SPECS``: sweep name -> :class:`SweepSpec`."""
    return _RegistryView(
        keys=lambda: list(_SWEEP_INDEX),
        value=lambda n: _SPECS[_SWEEP_INDEX[n]].sweep,
        kind="sweep specs")


def harnesses_view() -> Mapping:
    """``HARNESSES``: harness name -> fault harness."""
    return _RegistryView(
        keys=lambda: list(_HARNESS_INDEX),
        value=lambda n: _SPECS[_HARNESS_INDEX[n]].harness,
        kind="fault harnesses")


def commands_view() -> Mapping:
    """The CLI's verb table: name -> (runner, summary) for compat."""
    return _RegistryView(
        keys=lambda: names(runnable=True),
        value=lambda n: (_SPECS[n].runner, _SPECS[n].summary),
        kind="CLI commands")
