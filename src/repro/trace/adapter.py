"""Replay adapters: per-experiment glue for incremental sweeps.

The trace subsystem is experiment-agnostic — it captures op scripts
and replays timing.  What it cannot know is an experiment's *semantic*
mapping: which swept parameters are structural (they change the design
or the behaviour, so the point needs a fresh simulation) vs derivable
(they only retune replay-safe latency knobs), how a parameter point
projects onto its structural **base** configuration, and how a
:class:`~repro.trace.replay.ReplayResult` folds back into the
experiment's usual result record.  A :class:`ReplayAdapter` packages
exactly that, and hangs off the experiment registry
(:class:`repro.registry.SweepSpec.replay`); :func:`adapter_for`
resolves one by sweep name.

Two adapter kinds exist:

* ``"trace"`` — the real thing: one full capture per structural base,
  analytical replay per satellite point (``li_latency``, the
  ``stall_verification`` latency sub-space);
* ``"analytic"`` — for experiments with no simulation kernel at all
  (``gals_overhead``): every point is trivially derivable by evaluating
  the closed-form runner in-process, skipping the process pool.

:func:`classify` is the static half of the capability check (the
dynamic half is capture's recorded reasons): it verifies that a point
differs from its base projection only in declared replay-safe
parameters, returning a recorded fallback reason otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Optional, Tuple

__all__ = ["ReplayAdapter", "adapter_for", "classify"]


@dataclass(frozen=True)
class ReplayAdapter:
    """How one experiment's sweep points map onto capture + replay.

    ``capture(base_params, base_seed)`` runs one full simulation of the
    structural base under :func:`repro.trace.capture.capture` and
    returns the trace dict (including recorded ineligibility reasons —
    the engine falls back on those).  ``overrides(params, seed)`` and
    ``derive(trace, replay_result, params, seed)`` turn a satellite
    point into replay inputs and its result record.
    """

    kind: str = "trace"                       # "trace" | "analytic"
    #: Parameters a satellite point may change relative to its base.
    safe_params: FrozenSet[str] = frozenset()
    base_params: Optional[Callable[[dict], dict]] = None
    base_seed: Optional[Callable[[dict, int], int]] = None
    capture: Optional[Callable[[dict, int], dict]] = None
    overrides: Optional[Callable[[dict, int], dict]] = None
    derive: Optional[Callable[[dict, Any, dict, int], dict]] = None


def adapter_for(experiment: str) -> Optional[ReplayAdapter]:
    """The replay adapter registered for the named sweep, or ``None``.

    Resolved through :mod:`repro.registry` by sweep name — the lookup
    the engine's capture workers use, so only the experiment name (plain
    data) ever crosses a process boundary.  Raises ``KeyError`` for
    unregistered sweeps, exactly like ``registry.get_sweep``.
    """
    from ..registry import get_sweep

    return get_sweep(experiment).replay


def classify(adapter: Optional[ReplayAdapter], params: dict,
             seed: int) -> Tuple[str, Optional[str], Optional[dict],
                                 Optional[int]]:
    """Statically classify one sweep point.

    Returns ``(mode, reason, base_params, base_seed)`` where ``mode``
    is ``"derived"`` (replay can serve it, pending the capture's own
    eligibility) or ``"structural"`` (needs a fresh simulation, with
    the recorded ``reason``).
    """
    if adapter is None:
        return ("structural",
                "experiment registers no replay adapter", None, None)
    if adapter.kind == "analytic":
        return "derived", None, None, None
    base = adapter.base_params(params)
    diff = {k for k in set(params) | set(base)
            if params.get(k) != base.get(k)}
    unsafe = diff - adapter.safe_params
    if unsafe:
        return ("structural",
                f"parameters {sorted(unsafe)} are structural "
                f"(replay-safe: {sorted(adapter.safe_params)})",
                None, None)
    bseed = adapter.base_seed(params, seed) if adapter.base_seed else seed
    return "derived", None, base, bseed
