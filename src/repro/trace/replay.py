"""Trace replay: re-derive a run's timing analytically from its trace.

Given a captured trace (:mod:`repro.trace.capture`) and a set of
replay-safe parameter overrides — per-channel FIFO ``capacity``,
``extra_latency``, injected ``stall`` schedule ``(probability, seed)``,
and the global clock ``period`` — :func:`replay` recomputes everything
the full simulator would have measured at the new point **without
running the kernel**: per-channel transfer/attempt/rejection counters,
stall cycles, occupancy sums, and per-op completion cycles, all
byte-identical to a fresh threaded simulation (the differential suite
in ``tests/trace/`` enforces this against the kernel as oracle).

How it works
------------
The captured op scripts fix *behaviour*; replay recomputes *timing* by
propagating latencies through the trace's dependency graph with an
event-driven scheduler over the same automaton ``FastChannel`` executes
(``src/repro/connections/channel.py``):

* at each posedge ``c``: transit messages with ``ready <= c`` arrive,
  the occupancy snapshot freezes, the per-cycle push/pop slots clear,
  and a stalled channel consumes one RNG draw;
* ``push`` at cycle ``c`` succeeds iff the slot is free and
  ``occ_start + 1 <= capacity`` (``occ_start`` counts queue **and**
  transit, frozen before same-cycle pops) and makes the message ready
  at ``c + 1 + extra_latency``;
* ``pop`` at cycle ``c`` succeeds iff the slot is free, the channel is
  not stalled this cycle, and an arrival with ``ready <= c`` is
  unconsumed;
* a blocking op attempts once per consecutive posedge until it
  succeeds, each refusal counting one attempt + one rejection.

Instead of iterating every cycle, the scheduler keeps a heap of thread
events and jumps each blocked op straight to its earliest admissible
success cycle (next arrival / next unstalled cycle / next capacity
slot), accounting the skipped attempts arithmetically.  Occupancy sums
come from the closed form: an arrival at ``ready`` adds
``horizon - ready + 1`` queue-cycles, a pop at ``p`` removes
``horizon - p``.  The stall schedule is a pure function of
``(seed, probability, tick index)`` because ``FastChannel._tick`` draws
once per cycle regardless of traffic, so a replayed schedule with the
same seed is exactly the schedule a fresh run would draw.

Soundness guards
----------------
Replay refuses (:class:`ReplayError`) rather than extrapolate when the
new timing would expose behaviour the capture never observed:

* a thread whose generator had **not** finished at the captured horizon
  completes its last observed op *earlier* than in the capture — ops
  just beyond the captured horizon could now fit inside it;
* an op the capture left pending (still blocked at the horizon) would
  now complete.

The sweep engine treats a :class:`ReplayError` as one more fallback
reason and re-simulates that point exactly.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from .capture import TRACE_SCHEMA

__all__ = ["ReplayError", "Replayer", "ReplayResult", "replay",
           "stall_schedule"]

_OP_PUSH = 0
_OP_POP = 1

#: Raw per-seed RNG draw streams, shared across replay calls (a sweep
#: replays hundreds of points against a handful of seeds).
_DRAW_CACHE: Dict[int, List[float]] = {}
_DRAW_CACHE_MAX = 64

#: (seed, probability, horizon) -> (stalled bits, next_clear jumps,
#: stall-cycle count).  A dense sweep replays the same few injected
#: schedules hundreds of times; building the O(horizon) arrays once
#: per schedule moves them off the per-point path entirely.
_STALL_CACHE: Dict[Tuple[int, float, int],
                   Tuple[List[bool], List[int], int]] = {}
_STALL_CACHE_MAX = 256


class ReplayError(RuntimeError):
    """The trace cannot be replayed exactly at the requested point."""


def stall_schedule(seed: int, probability: float, horizon: int) -> List[bool]:
    """Stalled/clear bit per tick ``1..horizon`` (index 0 unused).

    Mirrors ``FastChannel.set_stall`` + ``_tick``: ``Random(seed)``
    draws once per posedge; the channel stalls when the draw is below
    ``probability``.
    """
    draws = _DRAW_CACHE.get(seed)
    if draws is None or len(draws) < horizon:
        rng = Random(seed)
        draws = [rng.random() for _ in range(horizon)]
        if len(_DRAW_CACHE) >= _DRAW_CACHE_MAX:
            _DRAW_CACHE.clear()
        _DRAW_CACHE[seed] = draws
    bits = [False] * (horizon + 1)
    for c in range(1, horizon + 1):
        bits[c] = draws[c - 1] < probability
    return bits


def _stall_artifacts(seed: int, probability: float,
                     horizon: int) -> Tuple[List[bool], List[int], int]:
    """Cached ``(stalled, next_clear, stall_cycles)`` for one schedule."""
    key = (seed, probability, horizon)
    cached = _STALL_CACHE.get(key)
    if cached is not None:
        return cached
    stalled = stall_schedule(seed, probability, horizon)
    nc = [horizon + 1] * (horizon + 2)
    for c in range(horizon, 0, -1):
        nc[c] = c if not stalled[c] else nc[c + 1]
    count = sum(stalled[1:horizon + 1])
    if len(_STALL_CACHE) >= _STALL_CACHE_MAX:
        _STALL_CACHE.clear()
    _STALL_CACHE[key] = (stalled, nc, count)
    return stalled, nc, count


@dataclass(slots=True)
class _Channel:
    """Replay-side channel state (counts only — no message payloads)."""

    path: str
    capacity: int
    extra_latency: int
    stall_probability: float
    stall_seed: Optional[int]
    horizon: int
    # arrivals not yet consumed: ready cycles in FIFO order
    arrivals: List[int] = field(default_factory=list)
    arrival_head: int = 0
    pushes: int = 0               # accepted pushes (any ready cycle)
    pops: int = 0                 # completed pops
    # Committed pop cycles, strictly increasing.  Kept as a list (not
    # just a count) because a blocked pop can *jump* straight to its
    # success cycle, committing ahead of the heap frontier — push-side
    # occupancy tests must therefore count pops by cycle, not total.
    pop_cycles: List[int] = field(default_factory=list)
    last_push_cycle: int = -1
    last_pop_cycle: int = -1
    push_attempts: int = 0
    pop_attempts: int = 0
    push_rejections: int = 0
    pop_rejections: int = 0
    occupancy_sum: int = 0
    # stalled[c] for tick c, None when no stall injection
    stalled: Optional[List[bool]] = None
    # first clear (unstalled) cycle >= c, horizon+1 when none
    next_clear: Optional[List[int]] = None
    stall_cycles: int = 0
    parked_pusher: Optional[int] = None   # thread index blocked on full
    parked_popper: Optional[int] = None   # thread index blocked on empty

    def prepare_stall(self) -> None:
        if self.stall_probability <= 0.0:
            return
        if self.stall_seed is None:
            raise ReplayError(
                f"channel {self.path!r} has stall injection with an "
                "unknown seed")
        self.stalled, self.next_clear, self.stall_cycles = _stall_artifacts(
            self.stall_seed, self.stall_probability, self.horizon)

    def occupancy_before(self, cycle: int) -> int:
        """Frozen ``_occ_start`` a push attempt at ``cycle`` observes.

        Counts queue + transit: every push accepted before ``cycle``
        minus every pop completed strictly before ``cycle`` (a pop this
        very cycle happens after the snapshot froze).  The single
        pusher's own pushes all predate its current attempt, so
        ``self.pushes`` needs no cycle filter; pops do (see
        ``pop_cycles``).
        """
        return self.pushes - bisect_left(self.pop_cycles, cycle)

    def accept_push(self, cycle: int) -> int:
        ready = cycle + 1 + self.extra_latency
        self.arrivals.append(ready)
        self.pushes += 1
        self.last_push_cycle = cycle
        if ready <= self.horizon:
            self.occupancy_sum += self.horizon - ready + 1
        return ready

    def accept_pop(self, cycle: int) -> None:
        self.arrival_head += 1
        self.pops += 1
        self.pop_cycles.append(cycle)
        self.last_pop_cycle = cycle
        self.occupancy_sum -= self.horizon - cycle

    def head_ready(self) -> Optional[int]:
        if self.arrival_head < len(self.arrivals):
            return self.arrivals[self.arrival_head]
        return None


@dataclass(slots=True)
class _Thread:
    path: str
    ops: List[Tuple[int, int, int]]   # (kind, chan, gap) per op
    base_last_done: Optional[int]     # last completed op's cycle in capture
    base_finished: bool               # generator exhausted in capture
    has_pending: bool                 # capture ended mid-op
    idx: int = 0
    attempt_start: int = -1           # first attempt cycle of current op
    done_cycles: List[int] = field(default_factory=list)
    stuck: bool = False               # current op cannot complete by horizon


@dataclass
class ReplayResult:
    """Analytically re-derived measurements for one parameter point."""

    cycles: int                       # posedges covered (capture horizon)
    period: int
    now: int                          # time of the last posedge
    channels: Dict[str, dict]
    threads: Dict[str, dict]


def _normalize_channels(trace: dict, overrides: dict
                        ) -> List[Tuple[str, int, int, float,
                                        Optional[int]]]:
    """Validated ``(path, capacity, extra_latency, p, seed)`` per channel.

    Pure parameter resolution — no evaluator state is built, so the
    result doubles as the memo signature for :class:`Replayer`.
    """
    chan_over = dict(overrides.get("channels") or {})
    resolved = []
    for rec in trace["channels"]:
        over = chan_over.pop(rec["path"], None) or {}
        unknown = set(over) - {"capacity", "extra_latency", "stall"}
        if unknown:
            raise ReplayError(
                f"unknown override keys for channel {rec['path']!r}: "
                f"{sorted(unknown)} (replay-safe keys: capacity, "
                "extra_latency, stall)")
        capacity = over.get("capacity", rec["capacity"])
        if capacity < 1:
            raise ReplayError(
                f"channel {rec['path']!r}: capacity must be >= 1")
        extra = over.get("extra_latency", rec["extra_latency"])
        if extra < 0:
            raise ReplayError(
                f"channel {rec['path']!r}: extra_latency must be >= 0")
        if "stall" in over:
            stall = over["stall"]
            if stall is None:
                probability, seed = 0.0, None
            else:
                probability, seed = float(stall[0]), int(stall[1])
                if not 0.0 <= probability <= 1.0:
                    raise ReplayError(
                        f"channel {rec['path']!r}: stall probability "
                        f"must be in [0,1], got {probability}")
        else:
            probability = rec["stall_probability"]
            seed = rec["stall_seed"]
        resolved.append((rec["path"], capacity, extra, probability, seed))
    if chan_over:
        raise ReplayError(
            f"overrides name unknown channels: {sorted(chan_over)}")
    return resolved


def _scripts(trace: dict) -> List[_Thread]:
    threads: List[_Thread] = []
    for rec in trace["threads"]:
        ops: List[Tuple[int, int, int]] = []
        prev_done: Optional[int] = None
        for kind, chan, first, done in rec["ops"]:
            gap = first if prev_done is None else first - prev_done
            ops.append((kind, chan, gap))
            prev_done = done
        if rec["pending"] is not None:
            kind, chan, first = rec["pending"]
            gap = first if prev_done is None else first - prev_done
            ops.append((kind, chan, gap))
        threads.append(_Thread(
            path=rec["path"], ops=ops,
            base_last_done=rec["ops"][-1][3] if rec["ops"] else None,
            base_finished=rec["finished"],
            has_pending=rec["pending"] is not None,
        ))
    return threads


class Replayer:
    """Precompiled analytical evaluator for one captured trace.

    Construction validates the trace and parses the op scripts once;
    :meth:`replay` then serves any number of override points against
    it.  Evaluations are memoized by the resolved per-channel
    parameters, so satellites that differ only in clock ``period``
    (which rescales ``now`` but cannot change cycle counts) cost a
    dictionary lookup — the trace-graph analogue of re-evaluating a
    design at a new clock without re-simulating.
    """

    def __init__(self, trace: dict):
        if trace.get("schema") != TRACE_SCHEMA:
            raise ReplayError(
                f"unsupported trace schema {trace.get('schema')!r} "
                f"(expected {TRACE_SCHEMA!r})")
        if not trace["eligible"]:
            raise ReplayError(
                "trace is not replayable: " + "; ".join(trace["reasons"]))
        self._trace = trace
        self.horizon = trace["clock"]["cycles"]
        self.base_period = trace["clock"]["period"]
        self._templates = _scripts(trace)
        self._memo: Dict[tuple, Tuple[Dict[str, dict], Dict[str, dict]]] = {}

    def replay(self, overrides: Optional[dict] = None) -> ReplayResult:
        """Re-derive the run's measurements under ``overrides``.

        ``overrides`` is a plain dict::

            {"period": 12,                      # optional clock period
             "channels": {"tb.pipe.buf": {
                 "capacity": 8,                 # effective FIFO depth
                 "extra_latency": 1,            # retiming stages
                 "stall": [0.3, 17],            # (probability, seed)
             }}}

        ``"stall": None`` clears injection.  Raises
        :class:`ReplayError` for structural override keys or points
        whose timing would expose behaviour outside the captured
        horizon.
        """
        overrides = overrides or {}
        unknown = set(overrides) - {"period", "channels"}
        if unknown:
            raise ReplayError(
                f"unknown override keys: {sorted(unknown)} "
                "(replay-safe keys: period, channels)")
        period = overrides.get("period", self.base_period)
        if not isinstance(period, int) or period <= 0:
            raise ReplayError(
                f"period must be a positive int, got {period!r}")
        resolved = _normalize_channels(self._trace, overrides)
        sig = tuple(resolved)
        core = self._memo.get(sig)
        if core is None:
            core = self._evaluate(resolved)
            self._memo[sig] = core
        channel_core, thread_core = core
        horizon = self.horizon
        return ReplayResult(
            cycles=horizon,
            period=period,
            now=(horizon - 1) * period if horizon else 0,
            channels={path: dict(rec)
                      for path, rec in channel_core.items()},
            threads={path: {**rec, "op_cycles": list(rec["op_cycles"])}
                     for path, rec in thread_core.items()},
        )

    def _evaluate(self, resolved) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        horizon = self.horizon
        channels = []
        for path, capacity, extra, probability, seed in resolved:
            chan = _Channel(path=path, capacity=capacity,
                            extra_latency=extra,
                            stall_probability=probability,
                            stall_seed=seed, horizon=horizon)
            chan.prepare_stall()
            channels.append(chan)
        threads = [
            _Thread(path=t.path, ops=t.ops,
                    base_last_done=t.base_last_done,
                    base_finished=t.base_finished,
                    has_pending=t.has_pending)
            for t in self._templates
        ]
        return _run_schedule(horizon, channels, threads)


def _run_schedule(horizon: int, channels: List[_Channel],
                  threads: List[_Thread]
                  ) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    # -- event-driven schedule: (cycle, seq, thread index) -------------
    agenda: List[Tuple[int, int, int]] = []
    seq = 0
    for t, th in enumerate(threads):
        if th.ops:
            kind, chan, gap = th.ops[0]
            th.attempt_start = gap
            if gap <= horizon:
                heapq.heappush(agenda, (gap, seq, t))
                seq += 1
            else:
                th.stuck = True

    def advance(th: _Thread, t: int, done: int) -> None:
        """Record op completion at ``done`` and schedule the next op."""
        th.done_cycles.append(done)
        th.idx += 1
        if th.idx >= len(th.ops):
            return
        nonlocal seq
        gap = th.ops[th.idx][2]
        start = done + gap
        th.attempt_start = start
        if start <= horizon:
            heapq.heappush(agenda, (start, seq, t))
            seq += 1
        else:
            th.stuck = True

    def park_wake(t: Optional[int], cycle: int) -> None:
        if t is None:
            return
        nonlocal seq
        if cycle <= horizon:
            heapq.heappush(agenda, (cycle, seq, t))
            seq += 1
        else:
            threads[t].stuck = True

    while agenda:
        cycle, _, t = heapq.heappop(agenda)
        th = threads[t]
        kind, c, _gap = th.ops[th.idx]
        chan = channels[c]
        start = th.attempt_start

        if kind == _OP_PUSH:
            chan.parked_pusher = None
            attempt = cycle
            # Same-cycle slot reuse: a push right after a push completed
            # this very cycle is refused by the _pushed flag once.
            if chan.last_push_cycle == attempt:
                attempt += 1
                if attempt > horizon:
                    continue
            if chan.occupancy_before(attempt) + 1 > chan.capacity:
                # Full: every cycle from `start` keeps rejecting until
                # enough pops free a slot.  A blocked pop may already
                # have committed its (future) success cycle, so first
                # look for the committed pop that opens the slot; park
                # only when it has not been scheduled yet.
                target = chan.pushes - chan.capacity + 1
                if target <= len(chan.pop_cycles):
                    park_wake(t, max(attempt,
                                     chan.pop_cycles[target - 1] + 1))
                else:
                    chan.parked_pusher = t
                continue
            done = attempt
            ready = chan.accept_push(done)
            chan.push_attempts += done - start + 1
            chan.push_rejections += done - start
            # An arrival may unblock a popper parked on empty.
            if chan.parked_popper is not None:
                parked = chan.parked_popper
                chan.parked_popper = None
                park_wake(parked, max(threads[parked].attempt_start, ready))
            advance(th, t, done)
        else:
            chan.parked_popper = None
            attempt = cycle
            if chan.last_pop_cycle == attempt:
                attempt += 1
                if attempt > horizon:
                    continue
            ready = chan.head_ready()
            if ready is None:
                # Empty with nothing in flight: park until a push lands.
                chan.parked_popper = t
                continue
            candidate = max(attempt, ready)
            if chan.next_clear is not None:
                candidate = chan.next_clear[candidate] \
                    if candidate <= horizon else horizon + 1
            if candidate > horizon:
                # Stalled (or still in transit) through the horizon.
                th.stuck = True
                continue
            done = candidate
            chan.accept_pop(done)
            chan.pop_attempts += done - start + 1
            chan.pop_rejections += done - start
            # A freed slot may unblock a pusher parked on full.
            if chan.parked_pusher is not None:
                parked = chan.parked_pusher
                chan.parked_pusher = None
                park_wake(parked, max(threads[parked].attempt_start,
                                      done + 1))
            advance(th, t, done)

    # -- account attempts of ops still blocked at the horizon ----------
    for th in threads:
        if th.idx < len(th.ops) and th.attempt_start >= 0:
            start = min(th.attempt_start, horizon + 1)
            rejected = horizon - start + 1
            if rejected > 0:
                kind, c, _gap = th.ops[th.idx]
                chan = channels[c]
                if kind == _OP_PUSH:
                    chan.push_attempts += rejected
                    chan.push_rejections += rejected
                else:
                    chan.pop_attempts += rejected
                    chan.pop_rejections += rejected
            th.stuck = True

    # -- soundness guards ----------------------------------------------
    for th in threads:
        script_done = th.idx >= len(th.ops)
        if th.has_pending and script_done:
            raise ReplayError(
                f"thread {th.path!r}: an op left pending at the captured "
                "horizon completes under the new timing (behaviour "
                "beyond the capture is unknown)")
        if (not th.base_finished and not th.has_pending and script_done
                and th.base_last_done is not None
                and th.done_cycles[-1] < th.base_last_done):
            raise ReplayError(
                f"thread {th.path!r} runs ahead of the capture "
                f"(op {len(th.done_cycles)} completes at cycle "
                f"{th.done_cycles[-1]} vs {th.base_last_done}); ops "
                "beyond the captured horizon could surface")

    channel_out: Dict[str, dict] = {}
    for chan in channels:
        channel_out[chan.path] = {
            "transfers": chan.pops,
            "push_attempts": chan.push_attempts,
            "pop_attempts": chan.pop_attempts,
            "push_rejections": chan.push_rejections,
            "pop_rejections": chan.pop_rejections,
            "stall_cycles": chan.stall_cycles,
            "occupancy_sum": chan.occupancy_sum,
            "cycles": horizon,
        }
    thread_out: Dict[str, dict] = {}
    for th in threads:
        thread_out[th.path] = {
            "op_cycles": list(th.done_cycles),
            "ops_done": len(th.done_cycles),
            "script_len": len(th.ops),
            "finished_script": th.idx >= len(th.ops),
            "stuck": th.stuck,
            "last_done": th.done_cycles[-1] if th.done_cycles else None,
        }
    return channel_out, thread_out


def replay(trace: dict, overrides: Optional[dict] = None) -> ReplayResult:
    """One-shot :class:`Replayer` — see :meth:`Replayer.replay`."""
    return Replayer(trace).replay(overrides)
