"""Trace-based incremental re-simulation (ROADMAP item 2).

Capture one full simulation per *structural* configuration as a
latency-annotated op trace, then re-derive measurements for thousands
of parameter points that vary only replay-safe knobs — FIFO depths,
injected stall schedules, retiming latency, clock period — without
re-running the kernel.  See ``docs/INCREMENTAL_SIM.md``.

* :mod:`repro.trace.capture` — scoped instrumentation producing a
  JSON-able trace dict plus recorded ineligibility reasons,
* :mod:`repro.trace.replay` — the exact analytical evaluator,
* :mod:`repro.trace.adapter` — per-experiment glue classifying sweep
  points as derivable vs structural for ``sweep --incremental``.
"""

from .capture import CaptureError, TRACE_SCHEMA, capture, captured_trace
from .replay import (ReplayError, Replayer, ReplayResult, replay,
                     stall_schedule)
from .adapter import ReplayAdapter, classify

__all__ = [
    "CaptureError", "TRACE_SCHEMA", "capture", "captured_trace",
    "ReplayError", "Replayer", "ReplayResult", "replay", "stall_schedule",
    "ReplayAdapter", "classify",
]
