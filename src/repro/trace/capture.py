"""Trace capture: record one full simulation as a replayable op script.

The LightningSimV2 observation (PAPERS.md) adapted to this kernel: for
a latency-insensitive design, one full simulation fixes everything
*behavioural* — which thread performs which channel operation, in which
order, with how many idle cycles between them — and only the *timing*
of those operations depends on the latency parameters (FIFO depths,
injected stall schedules, clock period).  Capture therefore runs the
design once under instrumentation and records, per thread, the sequence
of blocking channel operations with their cycle stamps; replay
(:mod:`repro.trace.replay`) then re-derives the timing analytically for
any replay-safe parameter point without re-running the kernel.

What one capture records:

* per-channel structural config — kind, capacity, ``extra_latency``,
  stall injection ``(probability, seed)`` — in clock-callback order
  (the tick phase's dispatch order, via :func:`repro.design.lower.lower`),
* per-thread **op scripts**: each blocking ``push``/``pop`` as
  ``(kind, channel, first_attempt_cycle, success_cycle)`` — a blocking
  port op attempts once per posedge, so the raw attempt stream groups
  losslessly into ops — plus the trailing still-blocked op if the run
  ended mid-handshake,
* push→pop dependency edges from the elaborated
  :class:`~repro.design.lower.NodeSchedule` (message *k* into a channel
  is consumed by pop *k*: single-producer single-consumer FIFO order),
* the horizon (total posedges ticked) and the final per-channel
  counters, which double as the round-trip oracle.

Eligibility
-----------
Replay is exact only for designs whose behaviour is provably
timing-independent.  Capture watches for everything that breaks that
proof and records human-readable **fallback reasons** instead of
failing (mirroring :mod:`repro.compile.capability`):

* non-blocking port ops (``push_nb``/``pop_nb``/``peek_nb``/
  ``can_push``/``can_pop``) — their control flow observes timing,
* more than one clock, generator/paused/stopped clocks,
* combinational methods, raw signal registration, event waits, timed
  events scheduled mid-run,
* channels with more than one pushing or popping thread (arbitration
  order is timing-dependent),
* fault-injection hooks, mid-run ``set_stall`` reconfiguration,
  channels pre-loaded before capture.

A trace with reasons is still returned — the sweep engine records the
reasons and falls back to full simulation for that parameter group.

Instrumentation is **scoped**: port/channel methods are class-patched
only inside the :func:`capture` context (zero overhead for normal
runs), and the recorder attaches as the simulator's watchdog so the
instrumented delta loop exposes the running thread (``sim._current``)
for op attribution — which also forces the threaded kernel, the
reference semantics replay must match.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = ["TRACE_SCHEMA", "CaptureError", "capture", "captured_trace"]

TRACE_SCHEMA = "repro-trace/1"

#: The single active recorder (captures never nest; sweeps capture in
#: worker processes, one at a time per process).
_ACTIVE: Optional["_Recorder"] = None

_OP_PUSH = 0
_OP_POP = 1


class CaptureError(RuntimeError):
    """Raised on illegal capture use (nesting, started simulator)."""


class _Recorder:
    """Collects op attempts and eligibility findings for one simulator."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.reasons: List[str] = []
        self._reason_keys: set = set()
        self.channels: List[Any] = []          # FastChannel, tick order
        self._chan_index: Dict[int, int] = {}
        self.threads: List[Any] = []           # kernel Thread, registration order
        self._thread_index: Dict[int, int] = {}
        self.thread_paths: List[str] = []
        self.channel_paths: List[str] = []
        #: Per-thread completed ops: [kind, chan, first_cycle, done_cycle].
        self.ops: List[List[list]] = []
        #: Per-thread open (not yet successful) op group or None.
        self._open: List[Optional[list]] = []
        #: id(channel) -> seed passed to set_stall inside the window.
        self.stall_seeds: Dict[int, Optional[int]] = {}
        self.clock = None

    # -- findings ------------------------------------------------------
    def reason(self, key: str, text: str) -> None:
        """Record one fallback reason (deduplicated by ``key``)."""
        if key not in self._reason_keys:
            self._reason_keys.add(key)
            self.reasons.append(text)

    # -- structural snapshot (capture entry) ---------------------------
    def snapshot(self) -> None:
        sim = self.sim
        clocks = sim._clocks
        if len(clocks) != 1:
            self.reason("clocks", f"design has {len(clocks)} clocks "
                        "(trace replay supports exactly one)")
        for clock in clocks:
            if clock.generator is not None:
                self.reason("clockgen", f"clock {clock.name!r} has a per-edge "
                            "period generator (GALS / adaptive clocking)")
            if clock._stopped:
                self.reason("stopped", f"clock {clock.name!r} is stopped")
            if clock.cycles:
                self.reason("started", f"clock {clock.name!r} already ticked "
                            f"{clock.cycles} cycles before capture")
            if clock.next_edge is not None \
                    and clock._pause_until > clock.next_edge:
                self.reason("paused", f"clock {clock.name!r} has a pending "
                            "pause (pausible clocking)")
        if sim._queue:
            self.reason("timed", f"{len(sim._queue)} pending timed events in "
                        "the heap (delayed notifications, unclocked threads, "
                        "or methods)")
        if sim._method_count:
            self.reason("methods", f"{sim._method_count} combinational "
                        "methods registered (signal sensitivity)")
        n_signals = sum(len(inst.signals)
                        for inst in sim.design.root.walk())
        if n_signals:
            self.reason("signals", f"{n_signals} raw signals registered "
                        "(signal timing is not captured)")
        if not clocks:
            return
        self.clock = clocks[0]

        # Node schedule: channel tick order, thread paths, handshake
        # edges — the same lowering the compiled backend executes.
        try:
            from ..design.lower import lower

            schedule = lower(sim)
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            self.reason("lower", f"design does not lower to a node "
                        f"schedule: {exc}")
            schedule = None
        if schedule is not None:
            for node in schedule.channels:
                if not node.managed:
                    self.reason(f"unmanaged:{node.path}",
                                f"per-edge callback {node.path!r} is not a "
                                "FastChannel tick (RTL adapter or custom "
                                "bookkeeping)")
                    continue
                self._chan_index[id(node.channel)] = len(self.channels)
                self.channels.append(node.channel)
                self.channel_paths.append(node.path)
                if node.channel.occupancy:
                    self.reason(f"preloaded:{node.path}",
                                f"channel {node.path!r} holds "
                                f"{node.channel.occupancy} messages before "
                                "capture")
                if node.channel._faults is not None:
                    self.reason(f"faults:{node.path}",
                                f"channel {node.path!r} has fault injection "
                                "attached")
            for node in schedule.threads:
                self._thread_index[id(node.thread)] = len(self.threads)
                self.threads.append(node.thread)
                self.thread_paths.append(node.path)
                self.ops.append([])
                self._open.append(None)

    # -- watchdog protocol (forces the instrumented delta loop) --------
    def on_block(self, port, channel, op) -> None:
        """Blocking-port hook; attribution rides on the op stream."""
        return None

    def on_unblock(self, token) -> None:  # pragma: no cover - token is None
        return None

    # -- op stream -----------------------------------------------------
    def on_op(self, channel, kind: int, ok: bool) -> None:
        idx = self._chan_index.get(id(channel))
        if idx is None:
            # A channel constructed after capture entry (or outside the
            # lowered schedule): behaviourally unknown.
            self.reason("latechan", f"channel {channel.path!r} appeared "
                        "after capture started")
            return
        thread = self.sim._current
        if thread is None:
            self.reason(f"nothread:{channel.path}",
                        f"channel {channel.path!r} accessed outside any "
                        "kernel thread")
            return
        t = self._thread_index.get(id(thread))
        if t is None:
            self.reason("latethread", f"thread {thread.name!r} appeared "
                        "after capture started")
            return
        cycle = self.clock.cycles if self.clock is not None else 0
        group = self._open[t]
        if group is not None:
            if group[0] != kind or group[1] != idx \
                    or cycle != group[3] + 1:
                # A blocking op attempts exactly once per consecutive
                # posedge until it succeeds; anything else means the
                # thread's control flow observed timing.
                self.reason(f"interleave:{self.thread_paths[t]}",
                            f"thread {self.thread_paths[t]!r} interleaves "
                            "channel operations (timing-dependent control "
                            "flow)")
                self._open[t] = None
                group = None
            else:
                group[3] = cycle
        if ok:
            if group is None:
                self.ops[t].append([kind, idx, cycle, cycle])
            else:
                group[3] = cycle
                self.ops[t].append(group)
                self._open[t] = None
        elif group is None:
            self._open[t] = [kind, idx, cycle, cycle]

    def on_nb(self, port_kind: str) -> None:
        thread = self.sim._current
        name = getattr(thread, "name", None) or "<outside threads>"
        t = self._thread_index.get(id(thread)) if thread is not None else None
        path = self.thread_paths[t] if t is not None else name
        self.reason(f"nb:{path}:{port_kind}",
                    f"thread {path!r} used non-blocking {port_kind} "
                    "(behaviour is timing-dependent)")

    def on_set_stall(self, channel) -> None:
        if self.clock is not None and self.clock.cycles:
            self.reason(f"midstall:{channel.path}",
                        f"channel {channel.path!r} reconfigured stall "
                        "injection mid-run")

    def on_event_wait(self) -> None:
        self.reason("event", "a thread waits on an Event "
                    "(delta-cycle notification timing)")

    def on_schedule(self) -> None:
        self.reason("schedule", "a timed event was scheduled during "
                    "capture (delayed notification or unclocked work)")

    # -- finalize ------------------------------------------------------
    def finalize(self) -> dict:
        sim = self.sim
        # One pass over all op scripts: which threads push/pop each channel.
        pushers_of: Dict[int, set] = {}
        poppers_of: Dict[int, set] = {}
        for t, ops in enumerate(self.ops):
            groups = list(ops)
            if self._open[t] is not None:
                groups.append(self._open[t])
            for op in groups:
                side = pushers_of if op[0] == _OP_PUSH else poppers_of
                side.setdefault(op[1], set()).add(t)
        channels = []
        for c, (chan, path) in enumerate(zip(self.channels,
                                             self.channel_paths)):
            pushers = sorted(pushers_of.get(c, ()))
            poppers = sorted(poppers_of.get(c, ()))
            if len(pushers) > 1:
                self.reason(f"pushers:{path}",
                            f"channel {path!r} has {len(pushers)} pushing "
                            "threads (arbitration order is timing-"
                            "dependent)")
            if len(poppers) > 1:
                self.reason(f"poppers:{path}",
                            f"channel {path!r} has {len(poppers)} popping "
                            "threads (arbitration order is timing-"
                            "dependent)")
            stats = chan.stats
            channels.append({
                "path": path,
                "kind": chan.kind,
                "capacity": chan.capacity,
                "extra_latency": chan.extra_latency,
                "stall_probability": chan._stall_probability,
                "stall_seed": self.stall_seeds.get(id(chan)),
                "pusher": pushers[0] if len(pushers) == 1 else None,
                "popper": poppers[0] if len(poppers) == 1 else None,
                "stats": {
                    "transfers": stats.transfers,
                    "push_attempts": stats.push_attempts,
                    "pop_attempts": stats.pop_attempts,
                    "push_rejections": stats.push_rejections,
                    "pop_rejections": stats.pop_rejections,
                    "stall_cycles": stats.stall_cycles,
                    "occupancy_sum": stats.occupancy_sum,
                    "cycles": stats.cycles,
                },
            })
        for chan, rec in zip(self.channels, channels):
            if rec["stall_probability"] > 0.0 and rec["stall_seed"] is None:
                # set_stall predates the capture window: the seed lives
                # only inside the Random instance, unrecoverable.
                self.reason(f"stallseed:{rec['path']}",
                            f"channel {rec['path']!r} has stall injection "
                            "whose seed predates the capture window")
        threads = []
        for t, path in enumerate(self.thread_paths):
            pending = self._open[t]
            threads.append({
                "path": path,
                "ops": [[op[0], op[1], op[2], op[3]] for op in self.ops[t]],
                "pending": [pending[0], pending[1], pending[2]]
                           if pending is not None else None,
                # Generator exhausted: the op script is provably complete
                # (replay's hidden-op guard needs this — an unfinished
                # thread may hold ops just beyond the captured horizon).
                "finished": bool(self.threads[t].done),
            })
        edges = []
        for c, rec in enumerate(channels):
            if rec["pusher"] is not None:
                edges.append([threads[rec["pusher"]]["path"], rec["path"],
                              "push"])
            if rec["popper"] is not None:
                edges.append([rec["path"], threads[rec["popper"]]["path"],
                              "pop"])
        clock = self.clock
        return {
            "schema": TRACE_SCHEMA,
            "clock": {
                "name": clock.name if clock is not None else None,
                "period": clock.period if clock is not None else None,
                "cycles": clock.cycles if clock is not None else 0,
            },
            "now": sim.now,
            "channels": channels,
            "threads": threads,
            "edges": edges,
            "eligible": not self.reasons,
            "reasons": list(self.reasons),
        }


# ----------------------------------------------------------------------
# scoped instrumentation
# ----------------------------------------------------------------------
@contextmanager
def _patched(recorder: "_Recorder"):
    """Class-patch port/channel/kernel hooks for one capture window."""
    from ..connections.channel import FastChannel
    from ..connections.ports import In, Out
    from ..kernel.simulator import Event

    sim = recorder.sim
    orig_push = FastChannel.do_push
    orig_pop = FastChannel.do_pop
    orig_stall = FastChannel.set_stall
    orig_push_nb = Out.push_nb
    orig_can_push = Out.can_push
    orig_pop_nb = In.pop_nb
    orig_peek_nb = In.peek_nb
    orig_can_pop = In.can_pop
    orig_subscribe = Event._subscribe
    orig_schedule = sim.schedule

    def do_push(self, msg):
        ok = orig_push(self, msg)
        if self.sim is sim:
            recorder.on_op(self, _OP_PUSH, ok)
        return ok

    def do_pop(self):
        ok, msg = orig_pop(self)
        if self.sim is sim:
            recorder.on_op(self, _OP_POP, ok)
        return ok, msg

    def set_stall(self, probability, *, seed=0):
        orig_stall(self, probability, seed=seed)
        if self.sim is sim:
            recorder.on_set_stall(self)
            recorder.stall_seeds[id(self)] = seed if probability > 0.0 else None

    def push_nb(self, msg):
        if self.channel.sim is sim:
            recorder.on_nb("push_nb")
        return orig_push_nb(self, msg)

    def can_push(self):
        if self.channel.sim is sim:
            recorder.on_nb("can_push")
        return orig_can_push(self)

    def pop_nb(self):
        if self.channel.sim is sim:
            recorder.on_nb("pop_nb")
        return orig_pop_nb(self)

    def peek_nb(self):
        if self.channel.sim is sim:
            recorder.on_nb("peek_nb")
        return orig_peek_nb(self)

    def can_pop(self):
        if self.channel.sim is sim:
            recorder.on_nb("can_pop")
        return orig_can_pop(self)

    def subscribe(self, thread, _orig=orig_subscribe):
        if self.sim is sim:
            recorder.on_event_wait()
        return _orig(self, thread)

    def schedule(delay, fn):
        recorder.on_schedule()
        return orig_schedule(delay, fn)

    FastChannel.do_push = do_push
    FastChannel.do_pop = do_pop
    FastChannel.set_stall = set_stall
    Out.push_nb = push_nb
    Out.can_push = can_push
    In.pop_nb = pop_nb
    In.peek_nb = peek_nb
    In.can_pop = can_pop
    Event._subscribe = subscribe
    sim.schedule = schedule
    try:
        yield
    finally:
        FastChannel.do_push = orig_push
        FastChannel.do_pop = orig_pop
        FastChannel.set_stall = orig_stall
        Out.push_nb = orig_push_nb
        Out.can_push = orig_can_push
        In.pop_nb = orig_pop_nb
        In.peek_nb = orig_peek_nb
        In.can_pop = orig_can_pop
        Event._subscribe = orig_subscribe
        del sim.__dict__["schedule"]


@contextmanager
def capture(sim):
    """Capture everything ``sim`` does inside the block as a trace.

    Usage::

        with capture(sim) as session:
            sim.run(until=100_000)
        trace = session.trace   # plain JSON-able dict

    The simulator must not have run yet (op scripts start at cycle 1).
    Capture forces the threaded kernel (the recorder attaches as the
    simulator's watchdog, which the compiled backend's capability check
    refuses) — the reference semantics replay reproduces.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise CaptureError("trace captures do not nest")
    if sim.watchdog is not None:
        raise CaptureError("simulator already has a watchdog attached")
    recorder = _Recorder(sim)
    recorder.snapshot()
    session = _Session(recorder)
    _ACTIVE = recorder
    sim.watchdog = recorder
    try:
        with _patched(recorder):
            yield session
    finally:
        _ACTIVE = None
        sim.watchdog = None
        session.trace = recorder.finalize()


class _Session:
    """Handle yielded by :func:`capture`; ``trace`` is set at exit."""

    def __init__(self, recorder: "_Recorder") -> None:
        self._recorder = recorder
        self.trace: Optional[dict] = None


def captured_trace(build, run) -> dict:
    """Build a design, run it under capture, return the trace.

    ``build()`` constructs and returns the simulator (plus anything the
    caller needs — only the first element of a tuple is treated as the
    simulator); ``run(built)`` executes it.  Convenience wrapper used by
    replay adapters and the round-trip tests.
    """
    built = build()
    sim = built[0] if isinstance(built, tuple) else built
    with capture(sim) as session:
        run(built)
    return session.trace
