"""Stateful invariant machines (Hypothesis ``RuleBasedStateMachine``).

Three rule-based machines drive real components against executable
models of their contracts, letting Hypothesis search *sequences* of
operations no directed test would write:

* :class:`ChannelMachine` — a :func:`~repro.connections.Buffer` against
  a transparent-box mirror of its documented cycle semantics (one
  push/pop per cycle, one-cycle handshake plus ``extra_latency``
  transit, stall gating, snapshot/restore);
* :class:`RouterMachine` — a :class:`~repro.noc.WHVCRouter` mesh node
  under random packet injection: XY routing correctness, per-packet
  flit order, wormhole contiguity per (output, VC), and loss-free
  delivery once drained;
* :class:`CacheMachine` — a :class:`~repro.sweep.cache.ResultCache`
  (plus a second handle on the same directory) against a stored-value
  model: a lookup never returns a *wrong* value, entry counts respect
  ``max_entries``, corrupt entries are dropped and counted, and the
  cross-process stats merge is monotone.

Run them via ``<Machine>.TestCase`` (pytest collects these in
``tests/verify/test_machines.py``) or ``repro verify``'s stateful
phase.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from ..connections import Buffer
from ..kernel import Simulator
from ..noc import Port, WHVCRouter, make_packet, xy_route
from ..sweep.cache import ResultCache
from ..sweep.point import SweepPoint

__all__ = ["ChannelMachine", "RouterMachine", "CacheMachine"]


class ChannelMachine(RuleBasedStateMachine):
    """A Buffer channel vs an executable model of its cycle contract."""

    @initialize(capacity=st.integers(1, 3), extra_latency=st.integers(0, 1))
    def build(self, capacity, extra_latency):
        self.sim = Simulator()
        self.clk = self.sim.add_clock("clk", period=10)
        self.chan = Buffer(self.sim, self.clk, capacity=capacity,
                           extra_latency=extra_latency, name="dut")
        self.capacity = capacity
        self.extra_latency = extra_latency
        # model state mirrors FastChannel._tick/do_push/do_pop exactly
        self.queue: list = []
        self.transit: list = []
        self.occ_start = 0
        self.pushed = False
        self.popped = False
        self.stall_probability = 0.0
        self.stalled = False
        self.next_msg = 0
        self.snaps: dict = {}
        self.sim.run_cycles(self.clk, 1)  # align: first tick has run
        self._model_tick()

    def _model_tick(self):
        cycles = self.clk.cycles
        while self.transit and self.transit[0][0] <= cycles:
            self.queue.append(self.transit.pop(0)[1])
        self.occ_start = len(self.queue) + len(self.transit)
        self.pushed = False
        self.popped = False
        # only the deterministic stall probabilities are drawn (0 or 1),
        # so the RNG in the real channel cannot diverge from the model
        self.stalled = self.stall_probability >= 1.0

    def _model_state(self):
        return (list(self.queue), list(self.transit), self.occ_start,
                self.pushed, self.popped, self.stall_probability,
                self.stalled)

    @rule()
    def tick(self):
        self.sim.run_cycles(self.clk, 1)
        self._model_tick()

    @rule()
    def push(self):
        msg = self.next_msg
        self.next_msg += 1
        expect = (not self.pushed
                  and self.occ_start + 1 <= self.capacity)
        assert self.chan.do_push(msg) == expect
        if expect:
            self.pushed = True
            self.transit.append(
                (self.clk.cycles + 1 + self.extra_latency, msg))
            self.occ_start += 1

    @rule()
    def pop(self):
        expect = (not self.popped and not self.stalled
                  and bool(self.queue))
        ok, value = self.chan.do_pop()
        assert ok == expect
        if expect:
            self.popped = True
            assert value == self.queue.pop(0)

    @rule()
    def peek(self):
        expect = (not self.stalled and bool(self.queue))
        ok, value = self.chan.peek()
        assert ok == expect
        if expect:
            assert value == self.queue[0]

    @rule(probability=st.sampled_from((0.0, 1.0)))
    def set_stall(self, probability):
        self.chan.set_stall(probability, seed=0)
        self.stall_probability = probability
        if probability == 0.0:
            self.stalled = False  # set_stall(0) resets immediately

    @rule(tag=st.integers(0, 2))
    def snapshot(self, tag):
        self.snaps[tag] = (self.chan._snapshot_state(),
                           self._model_state())

    @rule(tag=st.integers(0, 2))
    def restore(self, tag):
        if tag not in self.snaps:
            return
        real, model = self.snaps[tag]
        self.chan._restore_state(real)
        (self.queue, self.transit, self.occ_start, self.pushed,
         self.popped, self.stall_probability, self.stalled) = (
            list(model[0]), list(model[1])) + model[2:]

    @invariant()
    def mirrors_agree(self):
        if not hasattr(self, "chan"):
            return  # before initialize
        assert tuple(self.chan._queue) == tuple(self.queue)
        assert tuple(self.chan._transit) == tuple(self.transit)
        assert self.chan._occ_start == self.occ_start
        assert self.chan._pushed == self.pushed
        assert self.chan._popped == self.popped
        assert self.chan._stalled == self.stalled
        assert len(self.queue) + len(self.transit) <= self.capacity


class RouterMachine(RuleBasedStateMachine):
    """WHVC mesh-node arbitration under random packet injection.

    The machine plays node 0 of a 2x2 mesh, injecting packets on the
    three connected inputs and draining the three connected outputs.
    """

    MESH_WIDTH = 2
    IN_PORTS = (Port.LOCAL, Port.NORTH, Port.EAST)
    OUT_PORTS = (Port.LOCAL, Port.NORTH, Port.EAST)

    @initialize(n_vcs=st.integers(1, 2), vc_depth=st.integers(1, 3))
    def build(self, n_vcs, vc_depth):
        self.sim = Simulator()
        self.clk = self.sim.add_clock("clk", period=10)
        self.n_vcs = n_vcs
        self.router = WHVCRouter(self.sim, self.clk, node=0,
                                 mesh_width=self.MESH_WIDTH,
                                 n_vcs=n_vcs, vc_depth=vc_depth)
        self.in_chans = {}
        self.out_chans = {}
        for port in self.IN_PORTS:
            chan = Buffer(self.sim, self.clk, capacity=2,
                          name=f"link_in{int(port)}")
            self.router.ins[port].bind(chan)
            self.in_chans[port] = chan
        for port in self.OUT_PORTS:
            chan = Buffer(self.sim, self.clk, capacity=2,
                          name=f"link_out{int(port)}")
            self.router.outs[port].bind(chan)
            self.out_chans[port] = chan
        self.pending = {port: [] for port in self.IN_PORTS}
        self.sent: dict = {}      # packet_id -> flit count
        self.delivered: dict = {}  # packet_id -> [flit, ...]
        self.out_log = {port: [] for port in self.OUT_PORTS}
        self.next_packet = 0

    @rule(src=st.sampled_from(IN_PORTS), dest=st.integers(0, 3),
          vc=st.integers(0, 1), length=st.integers(1, 3),
          data=st.data())
    def send_packet(self, src, dest, vc, length, data):
        pid = self.next_packet
        self.next_packet += 1
        flits = make_packet(src=int(src), dest=dest, vc=vc % self.n_vcs,
                            packet_id=pid,
                            payloads=list(range(length)))
        self.pending[src].extend(flits)
        self.sent[pid] = length

    @rule(cycles=st.integers(1, 4))
    def step(self, cycles):
        for _ in range(cycles):
            self.sim.run_cycles(self.clk, 1)
            for port, chan in self.in_chans.items():
                queue = self.pending[port]
                if queue and chan.do_push(queue[0]):
                    queue.pop(0)
            self._drain_outputs()

    def _drain_outputs(self):
        for port, chan in self.out_chans.items():
            ok, flit = chan.do_pop()
            if ok:
                self.out_log[port].append(flit)
                self.delivered.setdefault(flit.packet_id, []).append(flit)

    @invariant()
    def routing_and_order_hold(self):
        if not hasattr(self, "router"):
            return
        for port, flits in self.out_log.items():
            for flit in flits:
                assert xy_route(0, flit.dest, self.MESH_WIDTH) == port, (
                    f"flit for node {flit.dest} left via {port!r}")
            # Wormhole contiguity: within one (output, VC) stream,
            # packets never interleave — a head locks the output for
            # its VC until the tail passes.
            for vc in range(self.n_vcs):
                current = None
                for flit in flits:
                    if flit.vc != vc:
                        continue
                    if current is None:
                        assert flit.is_head
                        current = flit.packet_id
                    else:
                        assert flit.packet_id == current, (
                            f"packets {current} and {flit.packet_id} "
                            f"interleaved on {port!r}/vc{vc}")
                    if flit.is_tail:
                        current = None
        for pid, flits in self.delivered.items():
            assert [f.seq for f in flits] == list(range(len(flits))), (
                f"packet {pid} flits out of order")

    def teardown(self):
        # Loss-free delivery: with the testbench feeding and draining,
        # every injected flit must eventually leave the right output.
        if not hasattr(self, "router"):
            return
        outstanding = sum(self.sent.values()) - sum(
            len(f) for f in self.delivered.values())
        budget = 40 * (outstanding + sum(
            len(q) for q in self.pending.values())) + 60
        for _ in range(budget):
            if (not any(self.pending.values())
                    and all(len(self.delivered.get(pid, [])) == n
                            for pid, n in self.sent.items())):
                break
            self.sim.run_cycles(self.clk, 1)
            for port, chan in self.in_chans.items():
                queue = self.pending[port]
                if queue and chan.do_push(queue[0]):
                    queue.pop(0)
            self._drain_outputs()
        self.routing_and_order_hold()
        for pid, n in self.sent.items():
            got = self.delivered.get(pid, [])
            assert len(got) == n, (
                f"packet {pid}: {len(got)}/{n} flits delivered")
            assert got[0].is_head and got[-1].is_tail
        super().teardown()


class CacheMachine(RuleBasedStateMachine):
    """ResultCache semantics under put/get/evict/corrupt/stats-merge."""

    @initialize(max_entries=st.integers(2, 5))
    def build(self, max_entries):
        self.root = tempfile.mkdtemp(prefix="repro-verify-cache-")
        self.max_entries = max_entries
        self.cache = ResultCache(root=self.root, max_entries=max_entries,
                                 version="v", rev="r")
        # A second handle on the same directory: the concurrent-sweep
        # shape the cross-process stats merge exists for.
        self.other = ResultCache(root=self.root, max_entries=max_entries,
                                 version="v", rev="r")
        self.stored: dict = {}   # key index -> last value written
        self.merged_floor: dict = {}

    def _point(self, idx):
        return SweepPoint(experiment="verify_probe",
                          params={"idx": idx}, seed=idx)

    @rule(idx=st.integers(0, 7), value=st.integers(0, 999),
          handle=st.booleans())
    def put(self, idx, value, handle):
        cache = self.cache if handle else self.other
        cache.put(self._point(idx), {"v": value}, cost=0.0)
        self.stored[idx] = value

    @rule(idx=st.integers(0, 7), handle=st.booleans())
    def get(self, idx, handle):
        cache = self.cache if handle else self.other
        before = cache.stats.lookups
        value = cache.get(self._point(idx))
        assert cache.stats.lookups == before + 1
        if value is not None:
            # Never a wrong value: evictions may forget, never corrupt.
            assert idx in self.stored
            assert value == {"v": self.stored[idx]}
        elif idx not in self.stored:
            pass  # a true miss
        # else: evicted (or corrupted-and-dropped) — a legal miss

    @precondition(lambda self: getattr(self, "stored", None))
    @rule()
    def corrupt_one_entry(self):
        entries = [p for _, _, p in self.cache._entries()]
        if not entries:
            return
        path = entries[0]
        path.write_text("{ truncated garbage")
        idx = None  # find which stored point this file belongs to
        for candidate in list(self.stored):
            if self.cache._path(self.cache.key_for(
                    self._point(candidate))) == path:
                idx = candidate
                break
        before = self.cache.stats.corrupt_dropped
        value = self.cache.get(self._point(idx)) if idx is not None \
            else None
        if idx is not None:
            assert value is None
            assert self.cache.stats.corrupt_dropped == before + 1
            assert not path.exists()
            del self.stored[idx]

    @rule(handle=st.booleans())
    def flush_stats(self, handle):
        cache = self.cache if handle else self.other
        merged = cache.flush_stats()
        for name, floor in self.merged_floor.items():
            assert merged.get(name, 0) >= floor, (
                f"persistent counter {name} went backwards")
        self.merged_floor = {k: v for k, v in merged.items()}

    @invariant()
    def within_limits(self):
        if not hasattr(self, "cache"):
            return
        assert len(self.cache) <= self.max_entries
        for cache in (self.cache, self.other):
            stats = cache.stats
            assert stats.hits >= 0 and stats.misses >= 0
            assert stats.lookups == stats.hits + stats.misses

    def teardown(self):
        shutil.rmtree(self.root, ignore_errors=True)
        super().teardown()
