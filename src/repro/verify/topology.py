"""Generated design topologies: spec, golden model, and builder.

The verification campaigns need *legal* random designs — lint-clean by
construction, deterministic, and provably live — so the strategies draw
declarative :class:`TopologySpec` values and this module turns them
into simulations.  The family is a layered **in-forest** of LI
dataflow:

* layer 0: sources, each streaming a fixed packet list into one channel;
* middle layers: units that merge their input channels (statically
  scheduled round-robin), add a per-unit constant, and forward into
  exactly one output channel;
* last layer: sinks that merge and record.

Every non-sink node drives exactly **one** output channel (no forks),
and every merge follows a pop schedule computed from the exact
per-input message counts (:func:`merge_schedule`).  That makes the
design deadlock-free by construction: the channel graph is an acyclic
forest, and no thread ever waits on a message that cannot arrive.
Forks are deliberately excluded — a round-robin fork feeding skewed
merges through bounded channels *can* deadlock, which would make hangs
an expected outcome rather than a bug signal.

Layers may live in different clock domains; domain crossings become
:class:`~repro.gals.GalsLink` bridges (CDC-safe, so the crossing lint
rule stays clean), everything else draws from the Table 1 channel
kinds.  :func:`golden_outputs` computes the expected sink sequences
with pure Python — the oracle the simulations are held to.

``inject`` seeds a deliberate bug for shrinking demos:

* ``"deadlock"`` — every sink with an input pops one message too many
  (re-enacting the deadlock fixture of the fault campaigns);
* ``"corrupt"`` — sinks record ``value ^ 1`` (silent data corruption).

This module imports no Hypothesis; strategies live in
:mod:`repro.verify.strategies`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..connections import Buffer, Bypass, Combinational, In, Out, Pipeline
from ..gals import GalsLink
from ..kernel import Simulator

__all__ = [
    "ChannelSpec",
    "TopologySpec",
    "BuiltTopology",
    "merge_schedule",
    "node_inputs",
    "edge_sequences",
    "golden_outputs",
    "validate",
    "build_topology",
    "INJECT_MODES",
]

#: Table 1 channel kinds a generated edge may use.
CHANNEL_KINDS = ("buffer", "bypass", "pipeline", "comb")

INJECT_MODES = (None, "none", "deadlock", "corrupt")

_FACTORIES = {
    "buffer": Buffer,
    "bypass": Bypass,
    "pipeline": Pipeline,
}


@dataclass(frozen=True)
class ChannelSpec:
    """One generated edge's channel configuration."""

    kind: str = "buffer"
    capacity: int = 2
    extra_latency: int = 0


@dataclass(frozen=True)
class TopologySpec:
    """Declarative layered in-forest design (see module docstring).

    ``consumers[i][j]`` names the layer ``i+1`` node fed by node ``j``
    of layer ``i`` — one entry per producer, so fan-out is exactly one
    and the graph is a forest by construction.  ``streams`` carries the
    per-source packet lists, ``addends`` the per-unit constants.
    """

    periods: Tuple[int, ...] = (10,)
    domains: Tuple[int, ...] = (0, 0)
    widths: Tuple[int, ...] = (1, 1)
    consumers: Tuple[Tuple[int, ...], ...] = ((0,),)
    channels: Tuple[Tuple[ChannelSpec, ...], ...] = ((ChannelSpec(),),)
    streams: Tuple[Tuple[int, ...], ...] = ((1, 2, 3),)
    addends: Tuple[Tuple[int, ...], ...] = ()

    @property
    def n_layers(self) -> int:
        return len(self.widths)

    @property
    def total_messages(self) -> int:
        return sum(len(s) for s in self.streams)

    def describe(self) -> dict:
        """A JSON-friendly summary (counterexample reports)."""
        return {
            "periods": list(self.periods),
            "domains": list(self.domains),
            "widths": list(self.widths),
            "consumers": [list(c) for c in self.consumers],
            "channels": [[[c.kind, c.capacity, c.extra_latency]
                          for c in layer] for layer in self.channels],
            "streams": [list(s) for s in self.streams],
            "addends": [list(a) for a in self.addends],
        }


def validate(spec: TopologySpec) -> None:
    """Raise ``ValueError`` on a malformed spec (strategy sanity net)."""
    if len(spec.widths) < 2:
        raise ValueError("need at least a source and a sink layer")
    if any(w < 1 for w in spec.widths):
        raise ValueError("every layer needs at least one node")
    if len(spec.domains) != len(spec.widths):
        raise ValueError("one domain per layer")
    if any(not 0 <= d < len(spec.periods) for d in spec.domains):
        raise ValueError("layer domain out of range")
    if len(spec.consumers) != len(spec.widths) - 1:
        raise ValueError("one consumer row per producing layer")
    if len(spec.channels) != len(spec.widths) - 1:
        raise ValueError("one channel row per producing layer")
    for i, row in enumerate(spec.consumers):
        if len(row) != spec.widths[i]:
            raise ValueError(f"consumer row {i} width mismatch")
        if any(not 0 <= k < spec.widths[i + 1] for k in row):
            raise ValueError(f"consumer row {i} target out of range")
        if len(spec.channels[i]) != spec.widths[i]:
            raise ValueError(f"channel row {i} width mismatch")
    for row in spec.channels:
        for chan in row:
            if chan.kind not in CHANNEL_KINDS:
                raise ValueError(f"unknown channel kind {chan.kind!r}")
            if chan.capacity < 1 or chan.extra_latency < 0:
                raise ValueError("bad channel capacity/latency")
    if len(spec.streams) != spec.widths[0]:
        raise ValueError("one stream per source")
    if len(spec.addends) != max(0, len(spec.widths) - 2):
        raise ValueError("one addend row per unit layer")
    for i, row in enumerate(spec.addends):
        if len(row) != spec.widths[i + 1]:
            raise ValueError(f"addend row {i} width mismatch")


def merge_schedule(counts: Tuple[int, ...]) -> Tuple[int, ...]:
    """Static round-robin pop order over inputs, skipping exhausted ones.

    ``counts[i]`` is the exact number of messages input ``i`` will
    carry; the schedule visits inputs round-robin but only while they
    still have messages, so a consumer following it never blocks on an
    input that is already dry.
    """
    remaining = list(counts)
    total = sum(remaining)
    schedule: List[int] = []
    idx = 0
    n = len(remaining)
    while len(schedule) < total:
        if remaining[idx] > 0:
            schedule.append(idx)
            remaining[idx] -= 1
        idx = (idx + 1) % n
    return tuple(schedule)


def node_inputs(spec: TopologySpec, layer: int, node: int) \
        -> Tuple[int, ...]:
    """Producer indices in ``layer - 1`` feeding ``(layer, node)``."""
    return tuple(j for j in range(spec.widths[layer - 1])
                 if spec.consumers[layer - 1][j] == node)


def edge_sequences(spec: TopologySpec) -> Dict[Tuple[int, int],
                                               Tuple[int, ...]]:
    """Message sequence carried by every edge ``(layer, producer)``."""
    seq: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for j, stream in enumerate(spec.streams):
        seq[(0, j)] = tuple(stream)
    for layer in range(1, spec.n_layers - 1):
        for node in range(spec.widths[layer]):
            merged = _merge_node(spec, seq, layer, node)
            addend = spec.addends[layer - 1][node]
            seq[(layer, node)] = tuple(v + addend for v in merged)
    return seq


def _merge_node(spec, seq, layer, node) -> Tuple[int, ...]:
    inputs = node_inputs(spec, layer, node)
    streams = [seq[(layer - 1, j)] for j in inputs]
    cursors = [0] * len(inputs)
    merged = []
    for idx in merge_schedule(tuple(len(s) for s in streams)):
        merged.append(streams[idx][cursors[idx]])
        cursors[idx] += 1
    return tuple(merged)


def golden_outputs(spec: TopologySpec) -> Tuple[Tuple[int, ...], ...]:
    """Expected recorded sequence per sink (pure-Python dataflow)."""
    seq = edge_sequences(spec)
    last = spec.n_layers - 1
    return tuple(_merge_node(spec, seq, last, node)
                 for node in range(spec.widths[last]))


@dataclass
class BuiltTopology:
    """A spec elaborated into a runnable simulation."""

    spec: TopologySpec
    sim: Simulator
    clocks: tuple
    #: Edge ``(layer, producer)`` -> channel object, insertion-ordered.
    channels: dict
    #: Dotted design paths of the same edges, same order (fault targets).
    paths: Tuple[str, ...]
    expected: Tuple[Tuple[int, ...], ...]
    got: Tuple[List[int], ...]
    #: Watchdog/run budget in cycles of ``clocks[0]``.
    cycle_budget: int
    _done: List[bool] = field(default_factory=list)

    def done(self) -> bool:
        """True once every sink has drained its schedule."""
        return all(self._done)

    def run(self, *, chunk: int = 128) -> None:
        """Run until every sink finishes or the cycle budget lapses.

        Chunked so GALS fifo helper threads (which never terminate) do
        not keep the simulation alive after the payload work is done; a
        watchdog attached by the caller fires inside the chunks.
        """
        clk = self.clocks[0]
        # One spare chunk past the budget so a budget-kind watchdog
        # check scheduled at the boundary still gets to run.
        limit = self.cycle_budget + 2 * chunk
        while not self.done() and clk.cycles < limit:
            self.sim.run_cycles(clk, chunk)


def _cycle_budget(spec: TopologySpec) -> int:
    # Worst case per delivered message: channel latency, merge-schedule
    # turn waits, and GALS crossing settle, all scaled by the slowest
    # domain's period ratio; plus headroom for generated stall bursts
    # (starts <= 200, lengths <= 300 in the strategies).
    ratio = max(spec.periods) // min(spec.periods) + 1
    hops = spec.total_messages * (spec.n_layers - 1)
    return 800 + 40 * ratio * max(1, hops)


def build_topology(spec: TopologySpec, *, inject: Optional[str] = None,
                   backend: Optional[str] = None) -> BuiltTopology:
    """Elaborate ``spec`` into a :class:`BuiltTopology`.

    All threads are factory-registered (snapshot- and compiled-backend
    eligible); channel/unit names are unique by construction so lint's
    duplicate-name rule cannot fire.
    """
    validate(spec)
    if inject not in INJECT_MODES:
        raise ValueError(f"unknown inject mode {inject!r}")
    inject = None if inject == "none" else inject
    sim = Simulator(backend=backend)
    clocks = tuple(sim.add_clock(f"clk{d}", period=p)
                   for d, p in enumerate(spec.periods))
    seq = edge_sequences(spec)
    expected = golden_outputs(spec)
    channels: dict = {}
    paths: List[str] = []
    got: Tuple[List[int], ...] = tuple([] for _ in range(spec.widths[-1]))
    done = [False] * spec.widths[-1]

    with sim.design.scope("top", kind="GeneratedTopology"):
        for layer in range(spec.n_layers - 1):
            dom_tx = spec.domains[layer]
            dom_rx = spec.domains[layer + 1]
            for j in range(spec.widths[layer]):
                cspec = spec.channels[layer][j]
                name = f"c{layer}_{j}"
                if dom_tx != dom_rx:
                    chan = GalsLink(sim, clocks[dom_tx], clocks[dom_rx],
                                    capacity=max(2, cspec.capacity),
                                    name=name)
                elif cspec.kind == "comb":
                    chan = Combinational(sim, clocks[dom_tx], name=name,
                                         extra_latency=cspec.extra_latency)
                else:
                    chan = _FACTORIES[cspec.kind](
                        sim, clocks[dom_tx], capacity=cspec.capacity,
                        extra_latency=cspec.extra_latency, name=name)
                channels[(layer, j)] = chan
                paths.append(f"top.{name}")

        for j, stream in enumerate(spec.streams):
            clk = clocks[spec.domains[0]]
            with sim.design.scope(f"src{j}", kind="Source", clock=clk):
                out = Out(channels[(0, j)], name="out")
                sim.add_thread(_source(out, tuple(stream)), clk,
                               name="ctl")

        for layer in range(1, spec.n_layers - 1):
            clk = clocks[spec.domains[layer]]
            for node in range(spec.widths[layer]):
                inputs = node_inputs(spec, layer, node)
                schedule = merge_schedule(
                    tuple(len(seq[(layer - 1, j)]) for j in inputs))
                with sim.design.scope(f"u{layer}_{node}", kind="Unit",
                                      clock=clk):
                    ins = tuple(In(channels[(layer - 1, j)],
                                   name=f"in{pos}")
                                for pos, j in enumerate(inputs))
                    out = Out(channels[(layer, node)], name="out")
                    sim.add_thread(
                        _unit(ins, out, schedule,
                              spec.addends[layer - 1][node]),
                        clk, name="ctl")

        last = spec.n_layers - 1
        clk = clocks[spec.domains[last]]
        for node in range(spec.widths[last]):
            inputs = node_inputs(spec, last, node)
            schedule = merge_schedule(
                tuple(len(seq[(last - 1, j)]) for j in inputs))
            with sim.design.scope(f"sink{node}", kind="Sink", clock=clk):
                ins = tuple(In(channels[(last - 1, j)], name=f"in{pos}")
                            for pos, j in enumerate(inputs))
                sim.add_thread(
                    _sink(ins, schedule, got[node], done, node, inject),
                    clk, name="ctl")

    return BuiltTopology(spec=spec, sim=sim, clocks=clocks,
                         channels=channels, paths=tuple(paths),
                         expected=expected, got=got,
                         cycle_budget=_cycle_budget(spec), _done=done)


def _source(out, stream):
    def factory():
        def run():
            for value in stream:
                yield from out.push(value)
        return run()
    return factory


def _unit(ins, out, schedule, addend):
    def factory():
        def run():
            for idx in schedule:
                value = yield from ins[idx].pop()
                yield from out.push(value + addend)
        return run()
    return factory


def _sink(ins, schedule, record, done, node, inject):
    def factory():
        def run():
            for idx in schedule:
                value = yield from ins[idx].pop()
                record.append(value ^ 1 if inject == "corrupt" else value)
            if inject == "deadlock" and ins:
                # The seeded bug: one pop beyond the schedule re-enacts
                # the deadlock fixture on a generated design.
                yield from ins[0].pop()
            done[node] = True
        return run()
    return factory
