"""Tiered Hypothesis settings profiles shared by tests and campaigns.

One registration point for the dev/ci/thorough example budgets so every
property in the repo — the ``repro verify`` oracle families, the
stateful machines, and the ad-hoc properties under ``tests/`` — scales
with a single knob instead of hard-coding ``max_examples`` per test:

* ``dev`` (default): small budgets, keeps ``pytest -x -q`` fast;
* ``ci``: >= 100 examples per property (the CI jobs export
  ``REPRO_HYPOTHESIS_PROFILE=ci``);
* ``thorough``: overnight-grade budgets for bug hunts.

``conftest.py`` calls :func:`load_profile` at collection time, honoring
the ``REPRO_HYPOTHESIS_PROFILE`` environment variable; tests that need
a different budget *scale* the active profile via
:func:`property_settings` rather than pinning absolute counts.
"""

from __future__ import annotations

import os

from . import require_hypothesis

__all__ = [
    "PROFILES",
    "ENV_VAR",
    "register_profiles",
    "load_profile",
    "profile_settings",
    "property_settings",
]

#: Examples-per-property budget of each tier.
PROFILES = {"dev": 20, "ci": 100, "thorough": 400}

ENV_VAR = "REPRO_HYPOTHESIS_PROFILE"

_REGISTERED = False


def register_profiles() -> None:
    """Register the dev/ci/thorough profiles with Hypothesis (idempotent).

    Simulation-heavy properties legitimately have slow examples, so all
    tiers disable the deadline and the too-slow health check;
    ``print_blob`` keeps every failure replayable via
    ``@reproduce_failure``.
    """
    global _REGISTERED
    if _REGISTERED:
        return
    require_hypothesis("repro.verify.profiles")
    from hypothesis import HealthCheck, settings

    for name, max_examples in PROFILES.items():
        settings.register_profile(
            name,
            max_examples=max_examples,
            deadline=None,
            print_blob=True,
            suppress_health_check=[HealthCheck.too_slow],
        )
    _REGISTERED = True


def load_profile(name: str | None = None) -> str:
    """Register and globally load a profile; returns the loaded name.

    ``name=None`` reads ``REPRO_HYPOTHESIS_PROFILE`` and falls back to
    ``dev`` — the tier-1 suite stays fast unless CI opts in.
    """
    if name is None:
        name = os.environ.get(ENV_VAR, "dev")
    if name not in PROFILES:
        raise ValueError(
            f"unknown hypothesis profile {name!r}; "
            f"one of {sorted(PROFILES)}")
    register_profiles()
    from hypothesis import settings

    settings.load_profile(name)
    return name


def profile_settings(name: str):
    """The registered ``settings`` object for ``name`` (no global load)."""
    if name not in PROFILES:
        raise ValueError(
            f"unknown hypothesis profile {name!r}; "
            f"one of {sorted(PROFILES)}")
    register_profiles()
    from hypothesis import settings

    return settings.get_profile(name)


def property_settings(*, scale: float = 1.0, floor: int = 5, **overrides):
    """A ``settings`` decorator scaled from the *active* profile.

    ``scale`` multiplies the loaded profile's ``max_examples`` (a heavy
    property passes ``scale=0.25`` instead of pinning an absolute
    count, so the ci/thorough tiers still raise its budget); ``floor``
    is the minimum examples regardless of scaling.  Extra keyword
    overrides pass straight through to ``settings``.
    """
    require_hypothesis("repro.verify.profiles")
    from hypothesis import settings

    base = settings.default.max_examples
    overrides.setdefault("deadline", None)
    return settings(max_examples=max(floor, int(round(base * scale))),
                    **overrides)
