"""Generative design verification (property-based campaigns).

The curated experiments and seeded fault menus exercise designs we
wrote by hand; this package turns the claim "LI channels make designs
correct under arbitrary timing" into a *property* over designs nobody
wrote.  Hypothesis strategies draw legal random topologies from the
``repro.design`` primitives (lint-clean by construction), and three
oracle families check every draw:

* **differential** — the threaded kernel and the compiled backend
  produce byte-identical sink outputs, cycle counts, and channel
  telemetry on the same generated design;
* **li** — sink outputs match the golden dataflow model and are
  invariant under any generated stall schedule (latency-insensitivity),
  with zero watchdog ``HangError`` on live designs;
* **classification** — under generated lossy fault plans the
  campaign-style triage always lands in {clean, detected, hang}; lint
  and the watchdog classify, they never crash, and a silent-corruption
  escape is a failure.

Counterexamples shrink through Hypothesis's shrinker jointly over
topology + plan + stimulus and persist to the example database, so a
failing campaign replays deterministically (``docs/ROBUSTNESS.md``).

This module is importable (and the ``repro verify`` verb registers)
without ``hypothesis`` installed; actually *running* a campaign raises
:class:`VerifyUnavailable` with install guidance when it is missing.
"""

from __future__ import annotations

from importlib import util as _importlib_util

from .. import registry

__all__ = [
    "VerifyUnavailable",
    "hypothesis_available",
    "require_hypothesis",
]


class VerifyUnavailable(RuntimeError):
    """``repro verify`` needs the optional ``hypothesis`` dependency."""


def hypothesis_available() -> bool:
    """Whether the optional ``hypothesis`` dependency is importable."""
    return _importlib_util.find_spec("hypothesis") is not None


def require_hypothesis(what: str = "repro verify") -> None:
    """Raise :class:`VerifyUnavailable` when ``hypothesis`` is absent."""
    if not hypothesis_available():
        raise VerifyUnavailable(
            f"{what} needs the optional 'hypothesis' dependency; "
            "install it with: pip install 'repro[test]' "
            "(or: pip install hypothesis)")


def _runner(params, seed=None):
    # Lazy import: the registry catalog (and `repro list`) must load
    # without hypothesis; only execution requires it.
    require_hypothesis()
    from .runner import run_verification

    return run_verification(params, seed)


def _formatter(payload):
    from .runner import format_report

    return format_report(payload)


registry.register(registry.ExperimentSpec(
    name="verify",
    summary="property-based verification: generated topologies vs "
            "differential/LI/classification oracles",
    runner=_runner,
    formatter=_formatter,
    params=(
        registry.CliParam(
            "profile", "dev",
            help="hypothesis settings profile (dev, ci, thorough)"),
        registry.CliParam(
            "checks", "all",
            help="comma-separated oracle families to run "
                 "(differential, li, classification; 'all')"),
        registry.CliParam(
            "max_examples", 0, type=int,
            help="override examples per family (0 = profile default)"),
        registry.CliParam(
            "inject", "none",
            help="deliberately seed a bug to demo shrinking "
                 "(none, deadlock, corrupt)"),
    ),
    compiled=False,  # the differential oracle drives both backends itself
    seedable=True,
    order=110,
))
