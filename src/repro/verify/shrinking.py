"""Hypothesis-driven shrinking of failing fault-campaign schedules.

``repro.faults.campaign.shrink`` is a greedy 1-minimal pass: it only
ever removes one directive at a time and accepts the first reduction
that still reproduces.  :func:`shrink_plan` instead hands the search to
Hypothesis's shrinker over directive *subsets*, which explores
multi-directive removals and always lands on a minimal reproducing
subset — while validating candidates against the full
:func:`~repro.faults.campaign.outcome_class` (a livelock must stay a
livelock), exactly like the fixed greedy pass.

The generated-design campaigns (:mod:`repro.verify.runner`) do not go
through here at all: their counterexamples are Hypothesis examples in
the first place, so the shrinker reduces them *jointly* over topology,
plan, and stimulus and persists them to the example database.  This
module covers the other direction — hand-built or menu-drawn
:class:`~repro.faults.FaultPlan` objects from ``repro faults``.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..faults.plan import FaultPlan
from . import require_hypothesis

__all__ = ["shrink_plan"]


def shrink_plan(harness_name: str, plan: FaultPlan, seed: int,
                target_outcome: Optional[str] = None, *,
                max_examples: int = 64) -> FaultPlan:
    """Minimal directive subset of ``plan`` with the same outcome class.

    Drop-in alternative to :func:`repro.faults.campaign.shrink`
    (``repro faults --shrink hypothesis``).  Each candidate subset costs
    one campaign execution; results are memoized, the search is
    derandomized, and nothing is written to the example database (the
    subsets are specific to this plan object).
    """
    require_hypothesis("repro faults --shrink hypothesis")
    from hypothesis import HealthCheck, find, settings
    from hypothesis import strategies as st
    from hypothesis.errors import NoSuchExample

    from ..faults import campaign

    reference = campaign.execute(harness_name, plan, seed)
    if target_outcome is not None \
            and reference["outcome"] != target_outcome:
        raise ValueError(
            f"plan does not reproduce {target_outcome!r} on "
            f"{harness_name!r} (got {reference['outcome']!r})")
    target_class = campaign.outcome_class(reference)
    n = len(plan.directives)
    if n <= 1:
        return plan

    def subset(keep: FrozenSet[int]) -> FaultPlan:
        return FaultPlan(
            plan.seed,
            directives=[d for i, d in enumerate(plan.directives)
                        if i in keep],
            corrupters=dict(plan.corrupters))

    # execute() is deterministic, so memoize per subset; the full set is
    # pre-seeded from the reference run.
    cache = {frozenset(range(n)): True}

    def reproduces(keep: FrozenSet[int]) -> bool:
        key = frozenset(keep)
        if key not in cache:
            record = campaign.execute(harness_name, subset(key), seed)
            cache[key] = campaign.outcome_class(record) == target_class
        return cache[key]

    # Boolean inclusion masks shrink perfectly here: Hypothesis drives
    # every mask bit toward False, so the minimal satisfying example it
    # lands on is a minimal reproducing subset.  (A `st.just` all-True
    # fallback branch would *prevent* shrinking — the shrinker cannot
    # cross from the constant branch back into the mask branch — so if
    # the search never hits a reproducing mask we simply keep the
    # original plan; `--shrink greedy` remains as the deterministic
    # alternative.)
    masks = st.lists(st.booleans(), min_size=n, max_size=n)
    try:
        best = find(
            masks.map(lambda mask: frozenset(
                i for i, bit in enumerate(mask) if bit)),
            reproduces,
            settings=settings(max_examples=max_examples, deadline=None,
                              database=None, derandomize=True,
                              suppress_health_check=list(HealthCheck)),
        )
    except NoSuchExample:
        return plan
    return subset(best)
