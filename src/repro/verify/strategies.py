"""Hypothesis strategies over generated designs, stimulus, and faults.

Every strategy draws *declarative* frozen dataclasses — a
:class:`~repro.verify.topology.TopologySpec` plus plan specs indexing
its edges — rather than live simulator objects, so counterexamples
print readably, persist to the example database, and shrink jointly
over topology + plan + stimulus.  Materialization into simulations and
:class:`~repro.faults.FaultPlan` objects happens in
:mod:`repro.verify.oracles`.

Legality is by construction: :func:`topologies` only emits specs that
pass :func:`~repro.verify.topology.validate` and lint clean (layered
in-forest wiring, unique names, GALS bridges on every domain crossing),
and stall/lossy specs only target edges that exist.  Probabilities and
timing knobs come from small sampled menus, which keeps shrinking
well-ordered (toward the first menu entry) and runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from hypothesis import strategies as st

from .topology import ChannelSpec, TopologySpec, validate

__all__ = [
    "StallSpec",
    "JitterSpec",
    "LossySpec",
    "PlanSpec",
    "VerifyCase",
    "channel_specs",
    "packet_streams",
    "topologies",
    "stall_plans",
    "lossy_plans",
    "verify_cases",
]

#: Secondary-domain period menu (primary is always 10); co-prime-ish
#: ratios exercise the pausible-clock alignment paths.
_ALT_PERIODS = (6, 14, 26)

_PROBABILITIES = (1.0, 0.7, 0.5, 0.3)


@dataclass(frozen=True)
class StallSpec:
    """One backpressure burst on edge ``edge`` (flat index)."""

    edge: int = 0
    start: int = 0
    length: int = 40
    probability: float = 1.0


@dataclass(frozen=True)
class JitterSpec:
    """Clock-timing noise on one domain (jitter or cumulative drift)."""

    domain: int = 0
    kind: str = "jitter"  # "jitter" | "drift"
    amplitude: int = 2
    every: int = 4


@dataclass(frozen=True)
class LossySpec:
    """One lossy directive (drop/duplicate/corrupt) on edge ``edge``."""

    kind: str = "drop"
    edge: int = 0
    probability: float = 1.0


@dataclass(frozen=True)
class PlanSpec:
    """Declarative fault plan over a topology's flat edge indices."""

    seed: int = 0
    stalls: Tuple[StallSpec, ...] = ()
    jitters: Tuple[JitterSpec, ...] = ()
    lossy: Tuple[LossySpec, ...] = ()

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "stalls": [[s.edge, s.start, s.length, s.probability]
                       for s in self.stalls],
            "jitters": [[j.domain, j.kind, j.amplitude, j.every]
                        for j in self.jitters],
            "lossy": [[f.kind, f.edge, f.probability]
                      for f in self.lossy],
        }


@dataclass(frozen=True)
class VerifyCase:
    """One campaign example: a topology plus a plan targeting it."""

    topology: TopologySpec
    plan: PlanSpec = PlanSpec()

    def describe(self) -> dict:
        return {"topology": self.topology.describe(),
                "plan": self.plan.describe()}


def channel_specs() -> st.SearchStrategy:
    """Table 1 channel configurations."""
    return st.builds(
        ChannelSpec,
        kind=st.sampled_from(("buffer", "bypass", "pipeline", "comb")),
        capacity=st.integers(1, 4),
        extra_latency=st.integers(0, 2),
    )


def packet_streams(max_size: int = 8) -> st.SearchStrategy:
    """One source's packet list (empty streams are legal stimulus)."""
    return st.lists(st.integers(0, 255), max_size=max_size).map(tuple)


@st.composite
def topologies(draw, *, max_domains: int = 2, max_layers: int = 4,
               max_width: int = 3) -> TopologySpec:
    """Legal layered in-forest design specs (see ``topology``)."""
    n_domains = draw(st.integers(1, max_domains))
    periods = (10,) + tuple(
        draw(st.sampled_from(_ALT_PERIODS)) for _ in range(n_domains - 1))
    n_layers = draw(st.integers(2, max_layers))
    domains = tuple(
        draw(st.integers(0, n_domains - 1)) for _ in range(n_layers))
    widths = tuple(
        draw(st.integers(1, max_width)) for _ in range(n_layers))
    consumers = tuple(
        tuple(draw(st.integers(0, widths[i + 1] - 1))
              for _ in range(widths[i]))
        for i in range(n_layers - 1))
    channels = tuple(
        tuple(draw(channel_specs()) for _ in range(widths[i]))
        for i in range(n_layers - 1))
    streams = tuple(
        draw(packet_streams()) for _ in range(widths[0]))
    addends = tuple(
        tuple(draw(st.integers(0, 64)) for _ in range(widths[i]))
        for i in range(1, n_layers - 1))
    spec = TopologySpec(periods=periods, domains=domains, widths=widths,
                        consumers=consumers, channels=channels,
                        streams=streams, addends=addends)
    validate(spec)
    return spec


def _n_edges(spec: TopologySpec) -> int:
    return sum(spec.widths[:-1])


@st.composite
def stall_plans(draw, spec: TopologySpec, *,
                max_bursts: int = 3) -> PlanSpec:
    """Adversarial-but-lossless plans: stall bursts plus clock noise."""
    edges = _n_edges(spec)
    stalls = tuple(
        StallSpec(edge=draw(st.integers(0, edges - 1)),
                  start=draw(st.integers(0, 200)),
                  length=draw(st.integers(20, 300)),
                  probability=draw(st.sampled_from(_PROBABILITIES)))
        for _ in range(draw(st.integers(1, max_bursts))))
    jitters = ()
    if len(spec.periods) > 1 and draw(st.booleans()):
        jitters = (JitterSpec(
            domain=draw(st.integers(0, len(spec.periods) - 1)),
            kind=draw(st.sampled_from(("jitter", "drift"))),
            amplitude=draw(st.integers(1, 3)),
            every=draw(st.sampled_from((1, 4, 16)))),)
    return PlanSpec(seed=draw(st.integers(0, 2 ** 16)),
                    stalls=stalls, jitters=jitters)


@st.composite
def lossy_plans(draw, spec: TopologySpec, *,
                max_lossy: int = 2) -> PlanSpec:
    """Plans with lossy directives (the classification oracle's diet)."""
    edges = _n_edges(spec)
    lossy = tuple(
        LossySpec(kind=draw(st.sampled_from(("drop", "duplicate",
                                             "corrupt"))),
                  edge=draw(st.integers(0, edges - 1)),
                  probability=draw(st.sampled_from(_PROBABILITIES)))
        for _ in range(draw(st.integers(1, max_lossy))))
    stalls = tuple(
        StallSpec(edge=draw(st.integers(0, edges - 1)),
                  start=draw(st.integers(0, 100)),
                  length=draw(st.integers(20, 200)),
                  probability=draw(st.sampled_from(_PROBABILITIES)))
        for _ in range(draw(st.integers(0, 1))))
    return PlanSpec(seed=draw(st.integers(0, 2 ** 16)),
                    stalls=stalls, lossy=lossy)


@st.composite
def verify_cases(draw, *, plans: str = "stall",
                 max_domains: int = 2) -> VerifyCase:
    """Topology + plan pairs; ``plans`` is 'none', 'stall' or 'lossy'."""
    spec = draw(topologies(max_domains=max_domains))
    if plans == "none":
        plan = PlanSpec()
    elif plans == "stall":
        plan = draw(stall_plans(spec))
    elif plans == "lossy":
        plan = draw(lossy_plans(spec))
    else:
        raise ValueError(f"unknown plan family {plans!r}")
    return VerifyCase(topology=spec, plan=plan)
