"""The ``repro verify`` campaign driver and report formatter.

One campaign = one Hypothesis property per requested family
(differential / li / classification, plus the stateful machines),
each driven for the active profile's example budget over freshly
generated topologies.  A failing family stops at its *shrunk* minimal
counterexample — Hypothesis re-executes the minimal example last, so
the report captures exactly the case that persists to the example
database and replays on the next run.

The report is plain JSON-able data; wall time lives only under the
``wall_seconds`` key so canonical-JSON comparisons
(:data:`repro.sweep.serialize.NONDETERMINISTIC_FIELDS`) stay stable.
"""

from __future__ import annotations

import time
from typing import Optional

from . import profiles

__all__ = ["FAMILIES", "run_verification", "format_report"]

FAMILIES = ("differential", "li", "classification", "stateful")


def _parse_checks(raw: str) -> tuple:
    names = [c.strip() for c in str(raw or "all").split(",") if c.strip()]
    if names in ([], ["all"]):
        return FAMILIES
    for name in names:
        if name not in FAMILIES:
            raise ValueError(f"unknown verify check {name!r}; "
                             f"one of {', '.join(FAMILIES)} (or 'all')")
    return tuple(dict.fromkeys(names))


def run_verification(params: dict, seed: Optional[int] = None) -> dict:
    """Run the requested oracle families; returns the campaign report."""
    profile = params.get("profile") or "dev"
    prof = profiles.profile_settings(profile)  # validates the name
    max_examples = int(params.get("max_examples") or 0) \
        or prof.max_examples
    inject = params.get("inject") or "none"
    if inject not in ("none", "deadlock", "corrupt"):
        raise ValueError(f"unknown inject mode {inject!r}; "
                         "one of none, deadlock, corrupt")
    checks = _parse_checks(params.get("checks", "all"))
    started = time.perf_counter()
    families = []
    for name in checks:
        families.append(_run_family(name, prof, max_examples, seed,
                                    inject))
    report = {
        "profile": profile,
        "max_examples": max_examples,
        "seed": seed,
        "inject": inject,
        "checks": list(checks),
        "families": families,
        "topologies": sum(f["examples"] for f in families
                          if f["family"] != "stateful"),
        "lint_clean": sum(f.get("lint_clean", 0) for f in families),
        "ok": all(f["ok"] for f in families),
        "wall_seconds": time.perf_counter() - started,
    }
    return report


def _run_family(name: str, prof, max_examples: int,
                seed: Optional[int], inject: str) -> dict:
    fam = {"family": name, "examples": 0, "lint_clean": 0, "ok": True}
    runners = {
        "differential": _family_differential,
        "li": _family_li,
        "classification": _family_classification,
        "stateful": _family_stateful,
    }
    try:
        runners[name](prof, max_examples, seed, inject, fam)
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        fam["ok"] = False
        fam["error"] = f"{type(exc).__name__}: {exc}"
        # Hypothesis re-runs the shrunk minimal example last, so the
        # most recent case the property saw *is* the counterexample.
        if "last" in fam:
            fam["counterexample"] = fam.pop("last")
    fam.pop("last", None)
    return fam


def _settings(prof, max_examples: int):
    from hypothesis import settings

    return settings(parent=prof, max_examples=max_examples)


def _family_differential(prof, max_examples, seed, inject, fam):
    from hypothesis import given
    from hypothesis import seed as hyp_seed

    from . import oracles
    from . import strategies as strat

    # The compiled backend needs a single periodic clock, so this
    # family draws single-domain designs; GALS crossings are covered by
    # the li and classification families (and fall back to threaded).
    @_settings(prof, max_examples)
    @given(spec=strat.topologies(max_domains=1))
    def prop(spec):
        fam["examples"] += 1
        fam["last"] = {"topology": spec.describe()}
        engaged = oracles.check_differential(spec)["engaged"]
        fam["lint_clean"] += 1
        fam["compiled_engaged"] = fam.get("compiled_engaged", 0) \
            + bool(engaged)

    if seed is not None:
        prop = hyp_seed(seed)(prop)
    prop()


def _family_li(prof, max_examples, seed, inject, fam):
    from hypothesis import given
    from hypothesis import seed as hyp_seed

    from . import oracles
    from . import strategies as strat

    inject_mode = None if inject == "none" else inject

    @_settings(prof, max_examples)
    @given(case=strat.verify_cases(plans="stall"))
    def prop(case):
        fam["examples"] += 1
        fam["last"] = case.describe()
        oracles.check_li(case.topology, case.plan, inject=inject_mode)
        fam["lint_clean"] += 1

    if seed is not None:
        prop = hyp_seed(seed)(prop)
    prop()


def _family_classification(prof, max_examples, seed, inject, fam):
    from hypothesis import given
    from hypothesis import seed as hyp_seed

    from . import oracles
    from . import strategies as strat

    outcomes = fam.setdefault(
        "outcomes", {k: 0 for k in oracles.CLASSIFY_OUTCOMES})

    @_settings(prof, max_examples)
    @given(case=strat.verify_cases(plans="lossy"))
    def prop(case):
        fam["examples"] += 1
        fam["last"] = case.describe()
        outcomes[oracles.check_classification(case)] += 1
        fam["lint_clean"] += 1

    if seed is not None:
        prop = hyp_seed(seed)(prop)
    prop()


def _family_stateful(prof, max_examples, seed, inject, fam):
    from hypothesis.stateful import run_state_machine_as_test

    from .machines import CacheMachine, ChannelMachine, RouterMachine

    # Each machine run is a whole operation sequence, so the per-family
    # budget divides across far fewer, far deeper examples.
    budget = max(5, max_examples // 5)
    for machine in (ChannelMachine, RouterMachine, CacheMachine):
        fam["last"] = {"machine": machine.__name__}
        run_state_machine_as_test(
            machine, settings=_settings(prof, budget))
        fam["examples"] += 1


def format_report(report: dict) -> str:
    """Human-readable campaign table (no wall time: byte-stable)."""
    lines = [
        f"verification campaign: profile={report['profile']} "
        f"examples/family={report['max_examples']} "
        f"seed={report['seed']} inject={report['inject']}",
        f"  {'family':<16} {'examples':>8} {'lint-clean':>10}  status",
    ]
    for fam in report["families"]:
        if fam["ok"]:
            status = "ok"
            if fam["family"] == "differential":
                engaged = fam.get("compiled_engaged", 0)
                status += f" (compiled engaged {engaged}/{fam['examples']})"
            elif fam["family"] == "classification":
                parts = [f"{k} {v}" for k, v in fam["outcomes"].items()]
                status += f" ({', '.join(parts)})"
        else:
            status = f"FAIL: {fam.get('error', 'unknown')}"
        lint_clean = fam["lint_clean"] if fam["family"] != "stateful" \
            else "-"
        lines.append(f"  {fam['family']:<16} {fam['examples']:>8} "
                     f"{lint_clean!s:>10}  {status}")
        if not fam["ok"] and "counterexample" in fam:
            lines.append(f"    counterexample: {fam['counterexample']}")
    verdict = "all oracles held" if report["ok"] else "ORACLE VIOLATED"
    lines.append(f"totals: {report['topologies']} generated designs, "
                 f"{report['lint_clean']} lint-clean; {verdict}")
    return "\n".join(lines)
