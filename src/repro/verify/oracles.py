"""The three oracle families generated designs are held to.

Each check takes declarative specs from :mod:`repro.verify.strategies`,
materializes them (fresh simulator per run — generated designs are
cheap), and raises ``AssertionError`` with a precise story on any
violation, so Hypothesis can shrink the failing case:

* :func:`check_differential` — threaded vs compiled byte identity on
  sink outputs, cycle counts, and per-channel telemetry (the PR 6
  differential idiom applied to designs nobody wrote);
* :func:`check_li` — sink outputs equal the golden dataflow model and
  stay invariant under any lossless stall/jitter plan, with zero
  watchdog ``HangError`` (latency-insensitivity + liveness);
* :func:`check_classification` — under lossy plans the campaign-style
  triage must land in {clean, detected, hang}: lint and the watchdog
  classify, never crash, and silent corruption escapes are failures.
"""

from __future__ import annotations

from typing import Optional

from ..design.lint import format_findings, lint
from ..faults import FaultPlan
from ..faults.watchdog import HangError, Watchdog
from ..sweep.serialize import to_jsonable
from .strategies import PlanSpec, VerifyCase
from .topology import BuiltTopology, TopologySpec, build_topology

__all__ = [
    "materialize_plan",
    "run_watched",
    "check_lint",
    "check_differential",
    "check_li",
    "check_classification",
    "CLASSIFY_OUTCOMES",
]

#: What total-classification accepts: everything the triage can say
#: about a lossy run short of a crash.
CLASSIFY_OUTCOMES = ("clean", "detected", "hang")

#: Livelock horizon for generated designs: comfortably above the
#: longest strategy-drawn stall burst (300 cycles), far below budgets.
_WINDOW = 1500


def materialize_plan(plan: PlanSpec, built: BuiltTopology) -> FaultPlan:
    """Turn a declarative :class:`PlanSpec` into a live fault plan.

    Edge indices resolve against ``built.paths`` (flat edge order) and
    domain indices against the built clocks, so the same spec means the
    same thing on every materialization of its topology.
    """
    fp = FaultPlan(seed=plan.seed)
    for stall in plan.stalls:
        fp.stall_burst(built.paths[stall.edge % len(built.paths)],
                       start=stall.start, length=stall.length,
                       probability=stall.probability)
    for jitter in plan.jitters:
        clock = built.clocks[jitter.domain % len(built.clocks)]
        if jitter.kind == "drift":
            fp.clock_drift(clock.name, rate=jitter.amplitude,
                           every=max(jitter.every, 16))
        else:
            fp.clock_jitter(clock.name, amplitude=jitter.amplitude,
                            every=jitter.every)
    for fault in plan.lossy:
        path = built.paths[fault.edge % len(built.paths)]
        if fault.kind == "drop":
            fp.drop(path, probability=fault.probability)
        elif fault.kind == "duplicate":
            fp.duplicate(path, probability=fault.probability)
        else:
            fp.corrupt(path, probability=fault.probability)
    return fp


def run_watched(built: BuiltTopology) -> None:
    """Run a built topology to completion under a watchdog."""
    Watchdog(built.sim, built.clocks[0], window=_WINDOW,
             max_cycles=built.cycle_budget)
    built.run()


def check_lint(built: BuiltTopology) -> None:
    """Generated designs are lint-clean by construction — prove it."""
    findings = lint(built.sim)
    assert not findings, (
        "generated topology must lint clean:\n"
        + format_findings(findings))


# ----------------------------------------------------------------------
# differential: threaded vs compiled byte identity
# ----------------------------------------------------------------------
def _run_payload(spec: TopologySpec, backend: str) -> dict:
    built = build_topology(spec, backend=backend)
    if backend == "threaded":
        check_lint(built)
    built.run()
    payload = {
        "backend": built.sim.backend,
        "sinks": [list(g) for g in built.got],
        "done": built.done(),
        "now": built.sim.now,
        "cycles": [clk.cycles for clk in built.clocks],
        "channels": {
            path: _channel_stats(chan)
            for path, chan in zip(built.paths, built.channels.values())
        },
    }
    return payload


def _channel_stats(chan) -> list:
    stats = getattr(chan, "stats", None)
    if stats is None:  # GalsLink facade: compare endpoint buffers
        return (_channel_stats(chan._tx_chan)
                + _channel_stats(chan._rx_chan))
    return [stats.transfers, stats.push_attempts, stats.pop_attempts,
            stats.push_rejections, stats.pop_rejections,
            stats.stall_cycles, stats.occupancy_sum, stats.cycles]


def check_differential(spec: TopologySpec) -> dict:
    """Threaded and compiled runs must agree byte-for-byte."""
    threaded = _run_payload(spec, backend="threaded")
    compiled = _run_payload(spec, backend="compiled")
    engaged = compiled.pop("backend")
    threaded.pop("backend")
    assert to_jsonable(threaded) == to_jsonable(compiled), (
        f"threaded/compiled divergence on generated design:\n"
        f"  threaded: {threaded}\n  compiled: {compiled}")
    assert threaded["done"], (
        "generated design failed to drain on both backends "
        f"(sinks {threaded['sinks']})")
    return {"engaged": engaged == "compiled"}


# ----------------------------------------------------------------------
# LI robustness: golden equality + stall invariance, zero hangs
# ----------------------------------------------------------------------
def check_li(spec: TopologySpec, plan: PlanSpec,
             inject: Optional[str] = None) -> None:
    """Outputs match golden and ignore lossless backpressure/jitter."""
    assert not plan.lossy, "LI oracle only accepts lossless plans"
    baseline = build_topology(spec, inject=inject)
    check_lint(baseline)
    try:
        run_watched(baseline)
    except HangError as exc:
        raise AssertionError(
            "generated live design hung with no fault plan:\n"
            + exc.diagnosis.format()) from exc
    assert baseline.done(), "baseline run left sinks undrained"
    got = tuple(tuple(g) for g in baseline.got)
    assert got == baseline.expected, (
        f"sink outputs diverge from the golden model:\n"
        f"  expected: {baseline.expected}\n  got:      {got}")

    stalled = build_topology(spec, inject=inject)
    materialize_plan(plan, stalled).apply(stalled.sim)
    try:
        run_watched(stalled)
    except HangError as exc:
        raise AssertionError(
            "lossless stall schedule hung a live design:\n"
            + exc.diagnosis.format()) from exc
    assert stalled.done(), "stalled run left sinks undrained"
    stalled_got = tuple(tuple(g) for g in stalled.got)
    assert stalled_got == got, (
        f"latency-insensitivity violated: outputs changed under a "
        f"lossless stall schedule:\n"
        f"  unstalled: {got}\n  stalled:   {stalled_got}")


# ----------------------------------------------------------------------
# total classification: lossy plans triage, never crash
# ----------------------------------------------------------------------
def check_classification(case: VerifyCase,
                         inject: Optional[str] = None) -> str:
    """Campaign-style triage of a lossy run; returns the outcome."""
    built = build_topology(case.topology, inject=inject)
    check_lint(built)
    applied = materialize_plan(case.plan, built).apply(built.sim)
    try:
        run_watched(built)
    except HangError as exc:
        # A hang is an *accepted* classification, but the diagnosis
        # must be complete and serializable — that is the "classify,
        # don't crash" half of the contract.
        records = exc.diagnosis.to_records()
        assert records and all(r.get("kind") in
                               ("deadlock", "livelock", "budget")
                               for r in records
                               if r.get("type") == "hang"), (
            f"hang diagnosis malformed: {records}")
        return "hang"
    except Exception as exc:  # noqa: BLE001 - the oracle *is* the net
        raise AssertionError(
            f"generated design crashed instead of classifying: "
            f"{type(exc).__name__}: {exc}") from exc
    got = tuple(tuple(g) for g in built.got)
    if got == built.expected:
        return "clean"
    lossy = applied.lossy_events()
    assert lossy > 0, (
        f"silent corruption escape: outputs diverged with zero "
        f"injected lossy events\n  expected: {built.expected}\n"
        f"  got:      {got}")
    return "detected"
