"""Arbitrated scratchpad (MatchLib Table 2): banked memories with
arbitration and queueing.

N requesters address B banks (bank = address % B).  Conflicting requests
to one bank are round-robin arbitrated; losers wait in per-requester
queues.  The PE scratchpad of the prototype SoC instantiates this
component (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from .arbiter import RoundRobinArbiter
from .fifo import Fifo
from .mem_array import MemArray

__all__ = ["SpRequest", "SpResponse", "ArbitratedScratchpad"]


@dataclass(frozen=True)
class SpRequest:
    """One scratchpad request."""

    requester: int
    is_write: bool
    addr: int
    data: Any = None


@dataclass(frozen=True)
class SpResponse:
    """One scratchpad response (reads return data; writes ack)."""

    requester: int
    addr: int
    data: Any = None


class ArbitratedScratchpad:
    """Cycle-stepped banked scratchpad with per-bank arbitration.

    Drive with :meth:`submit` (queue a request) and :meth:`tick` (advance
    one cycle; returns the responses completed that cycle).  One request
    per bank per cycle completes; the rest stay queued.
    """

    def __init__(self, *, n_requesters: int, n_banks: int, bank_entries: int,
                 width: Optional[int] = None, queue_depth: int = 4):
        if n_requesters < 1 or n_banks < 1:
            raise ValueError("need at least one requester and one bank")
        self.n_requesters = n_requesters
        self.n_banks = n_banks
        self.banks = [MemArray(bank_entries, width=width) for _ in range(n_banks)]
        self.arbiters = [RoundRobinArbiter(n_requesters) for _ in range(n_banks)]
        self.queues: List[Fifo] = [Fifo(capacity=queue_depth)
                                   for _ in range(n_requesters)]
        self.conflict_cycles = 0
        self.completed = 0

    @property
    def entries(self) -> int:
        """Total words across banks."""
        return self.n_banks * self.banks[0].entries

    def bank_of(self, addr: int) -> tuple[int, int]:
        """Map a flat address to (bank index, address within bank)."""
        if not 0 <= addr < self.entries:
            raise ValueError(f"address {addr} out of range [0, {self.entries})")
        return addr % self.n_banks, addr // self.n_banks

    def submit(self, request: SpRequest) -> bool:
        """Queue a request; False if the requester's queue is full."""
        if not 0 <= request.requester < self.n_requesters:
            raise ValueError(f"requester {request.requester} out of range")
        self.bank_of(request.addr)  # validate the address eagerly
        return self.queues[request.requester].push_nb(request)

    def can_submit(self, requester: int) -> bool:
        return not self.queues[requester].full

    def tick(self) -> list[SpResponse]:
        """Advance one cycle: arbitrate each bank, perform one access."""
        responses = []
        # Head-of-queue requests, grouped by bank.
        for bank_idx in range(self.n_banks):
            requests = []
            for q in self.queues:
                if q.empty:
                    requests.append(False)
                else:
                    b, _ = self.bank_of(q.peek().addr)
                    requests.append(b == bank_idx)
            pending = sum(requests)
            if pending > 1:
                self.conflict_cycles += 1
            winner = self.arbiters[bank_idx].pick(requests)
            if winner is None:
                continue
            req = self.queues[winner].pop()
            _, offset = self.bank_of(req.addr)
            if req.is_write:
                self.banks[bank_idx].write(offset, req.data)
                responses.append(SpResponse(req.requester, req.addr))
            else:
                data = self.banks[bank_idx].read(offset)
                responses.append(SpResponse(req.requester, req.addr, data))
            self.completed += 1
        return responses

    # Testbench conveniences ------------------------------------------
    def load(self, values, *, base: int = 0) -> None:
        """Preload flat addresses (interleaved across banks)."""
        for offset, value in enumerate(values):
            bank, addr = self.bank_of(base + offset)
            self.banks[bank].load([value], base=addr)

    def dump(self, base: int, length: int) -> list:
        out = []
        for offset in range(length):
            bank, addr = self.bank_of(base + offset)
            out.append(self.banks[bank].dump(addr, 1)[0])
        return out
