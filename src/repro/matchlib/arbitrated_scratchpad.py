"""Arbitrated scratchpad (MatchLib Table 2): banked memories with
arbitration and queueing.

N requesters address B banks (bank = address % B).  Conflicting requests
to one bank are round-robin arbitrated; losers wait in per-requester
queues.  The PE scratchpad of the prototype SoC instantiates this
component (section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from .arbiter import RoundRobinArbiter
from .fifo import Fifo
from .mem_array import MemArray

__all__ = ["SpRequest", "SpResponse", "ArbitratedScratchpad"]


@dataclass(frozen=True)
class SpRequest:
    """One scratchpad request."""

    requester: int
    is_write: bool
    addr: int
    data: Any = None


@dataclass(frozen=True)
class SpResponse:
    """One scratchpad response (reads return data; writes ack)."""

    requester: int
    addr: int
    data: Any = None


class ArbitratedScratchpad:
    """Cycle-stepped banked scratchpad with per-bank arbitration.

    Drive with :meth:`submit` (queue a request) and :meth:`tick` (advance
    one cycle; returns the responses completed that cycle).  One request
    per bank per cycle completes; the rest stay queued.
    """

    def __init__(self, *, n_requesters: int, n_banks: int, bank_entries: int,
                 width: Optional[int] = None, queue_depth: int = 4):
        if n_requesters < 1 or n_banks < 1:
            raise ValueError("need at least one requester and one bank")
        self.n_requesters = n_requesters
        self.n_banks = n_banks
        self.banks = [MemArray(bank_entries, width=width) for _ in range(n_banks)]
        self.arbiters = [RoundRobinArbiter(n_requesters) for _ in range(n_banks)]
        self.queues: List[Fifo] = [Fifo(capacity=queue_depth)
                                   for _ in range(n_requesters)]
        self._entries = n_banks * bank_entries
        self.conflict_cycles = 0
        self.completed = 0

    @property
    def entries(self) -> int:
        """Total words across banks."""
        return self._entries

    def bank_of(self, addr: int) -> tuple[int, int]:
        """Map a flat address to (bank index, address within bank)."""
        if not 0 <= addr < self._entries:
            raise ValueError(f"address {addr} out of range [0, {self._entries})")
        return addr % self.n_banks, addr // self.n_banks

    def submit(self, request: SpRequest) -> bool:
        """Queue a request; False if the requester's queue is full."""
        if not 0 <= request.requester < self.n_requesters:
            raise ValueError(f"requester {request.requester} out of range")
        addr = request.addr  # validate the address eagerly
        if not 0 <= addr < self._entries:
            raise ValueError(
                f"address {addr} out of range [0, {self._entries})")
        return self.queues[request.requester].push_nb(request)

    def can_submit(self, requester: int) -> bool:
        return not self.queues[requester].full

    def tick(self) -> list[SpResponse]:
        """Advance one cycle: arbitrate each bank, perform one access.

        Single pass over the queue heads groups requesters by bank; banks
        nobody requests are skipped outright (an all-false ``pick`` never
        mutates arbiter state), and an uncontested bank takes the inlined
        grant path — the same priority rotation ``pick`` would apply.
        Serving a requester can expose its next queued request to a
        *later* bank in the same cycle, exactly as the per-bank rescan
        did, so the winner's new head is folded back into the groups.
        """
        responses = []
        n_banks = self.n_banks
        queues = self.queues
        # requester indices with a head request, grouped by bank
        by_bank: List[Optional[List[int]]] = [None] * n_banks
        for i, q in enumerate(queues):
            items = q._queue
            if items:
                b = items[0].addr % n_banks
                if by_bank[b] is None:
                    by_bank[b] = [i]
                else:
                    by_bank[b].append(i)
        for bank_idx in range(n_banks):
            group = by_bank[bank_idx]
            if group is None:
                continue
            arb = self.arbiters[bank_idx]
            if len(group) == 1:
                winner = group[0]
                arb._next = (winner + 1) % arb.n
                arb.grants[winner] += 1
            else:
                self.conflict_cycles += 1
                requests = [False] * arb.n
                for i in group:
                    requests[i] = True
                winner = arb.pick(requests)
            items = queues[winner]._queue
            req = items.popleft()
            if items:
                b = items[0].addr % n_banks
                if b > bank_idx:
                    if by_bank[b] is None:
                        by_bank[b] = [winner]
                    else:
                        by_bank[b].append(winner)
            offset = req.addr // n_banks
            if req.is_write:
                self.banks[bank_idx].write(offset, req.data)
                responses.append(SpResponse(req.requester, req.addr))
            else:
                data = self.banks[bank_idx].read(offset)
                responses.append(SpResponse(req.requester, req.addr, data))
            self.completed += 1
        return responses

    # Conflict-free vector access -------------------------------------
    # Lane *i* accessing ``base + i`` can never collide: up to
    # min(n_requesters, n_banks) consecutive addresses map to distinct
    # banks.  These helpers are semantically submit-one-per-lane + one
    # tick, with every piece of observable state — arbiter rotation and
    # grant counts, FIFO stats, ``completed`` — updated exactly as the
    # request/tick path would update it, minus the request/response
    # object traffic.  Precondition: the lane queues are empty (the
    # drivers drain between vectors).
    def write_vector(self, base: int, words) -> None:
        """Write ``words[i]`` to ``base + i`` in one arbitration round."""
        n = len(words)
        n_banks = self.n_banks
        if n > n_banks or n > self.n_requesters:
            raise ValueError(
                f"vector of {n} wider than {n_banks} banks / "
                f"{self.n_requesters} lanes")
        if base < 0 or base + n > self._entries:
            raise ValueError(
                f"address {base}+{n} out of range [0, {self._entries})")
        queues = self.queues
        arbiters = self.arbiters
        banks = self.banks
        addr = base
        for lane, word in enumerate(words):
            q = queues[lane]
            q.total_pushed += 1
            if q.peak_occupancy < 1:
                q.peak_occupancy = 1
            bank = addr % n_banks
            arb = arbiters[bank]
            arb._next = (lane + 1) % arb.n
            arb.grants[lane] += 1
            banks[bank].write(addr // n_banks, word)
            addr += 1
        self.completed += n

    def read_vector(self, base: int, length: int) -> list:
        """Read ``length`` words from ``base`` in one arbitration round."""
        n_banks = self.n_banks
        if length > n_banks or length > self.n_requesters:
            raise ValueError(
                f"vector of {length} wider than {n_banks} banks / "
                f"{self.n_requesters} lanes")
        if base < 0 or base + length > self._entries:
            raise ValueError(
                f"address {base}+{length} out of range [0, {self._entries})")
        queues = self.queues
        arbiters = self.arbiters
        banks = self.banks
        out = []
        addr = base
        for lane in range(length):
            q = queues[lane]
            q.total_pushed += 1
            if q.peak_occupancy < 1:
                q.peak_occupancy = 1
            bank = addr % n_banks
            arb = arbiters[bank]
            arb._next = (lane + 1) % arb.n
            arb.grants[lane] += 1
            out.append(banks[bank].read(addr // n_banks))
            addr += 1
        self.completed += length
        return out

    # Testbench conveniences ------------------------------------------
    def load(self, values, *, base: int = 0) -> None:
        """Preload flat addresses (interleaved across banks)."""
        for offset, value in enumerate(values):
            bank, addr = self.bank_of(base + offset)
            self.banks[bank].load([value], base=addr)

    def dump(self, base: int, length: int) -> list:
        out = []
        for offset in range(length):
            bank, addr = self.bank_of(base + offset)
            out.append(self.banks[bank].dump(addr, 1)[0])
        return out
