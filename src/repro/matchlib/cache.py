"""Set-associative cache (MatchLib Table 2).

Configurable line size, capacity, and associativity — the knobs the paper
lists.  Write-back, write-allocate, LRU replacement.  Two layers:

* :class:`Cache` — the untimed state machine with full statistics,
* :class:`CacheModule` — a clocked module serving requests through LI
  channel ports with configurable hit/miss latencies, backed by a
  :class:`~repro.matchlib.mem_array.MemArray`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from .mem_array import MemArray

__all__ = ["Cache", "CacheModule", "CacheRequest", "CacheResponse"]


class _Line:
    __slots__ = ("tag", "valid", "dirty", "data", "lru")

    def __init__(self, words_per_line: int):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.data = [0] * words_per_line
        self.lru = 0


class Cache:
    """Write-back write-allocate set-associative cache over a backstore.

    Addresses are word addresses into ``backstore``.  ``policy`` selects
    the replacement policy: ``"lru"`` (default), ``"fifo"``, or
    ``"random"`` (seeded).
    """

    POLICIES = ("lru", "fifo", "random")

    def __init__(self, backstore: MemArray, *, capacity_words: int,
                 words_per_line: int, associativity: int,
                 policy: str = "lru", seed: int = 0):
        if words_per_line < 1 or associativity < 1:
            raise ValueError("words_per_line and associativity must be >= 1")
        if capacity_words % (words_per_line * associativity):
            raise ValueError(
                "capacity must be a multiple of words_per_line * associativity"
            )
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        import random as _random

        self.policy = policy
        self._rng = _random.Random(seed)
        self.backstore = backstore
        self.words_per_line = words_per_line
        self.associativity = associativity
        self.n_sets = capacity_words // (words_per_line * associativity)
        if self.n_sets < 1:
            raise ValueError("capacity too small for one set")
        self._sets = [[_Line(words_per_line) for _ in range(associativity)]
                      for _ in range(self.n_sets)]
        self._clock = 0  # LRU timestamp source
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    # address math
    # ------------------------------------------------------------------
    def _split(self, addr: int) -> tuple[int, int, int]:
        """addr -> (tag, set index, word offset)."""
        offset = addr % self.words_per_line
        line_addr = addr // self.words_per_line
        set_idx = line_addr % self.n_sets
        tag = line_addr // self.n_sets
        return tag, set_idx, offset

    def _line_base(self, tag: int, set_idx: int) -> int:
        return (tag * self.n_sets + set_idx) * self.words_per_line

    # ------------------------------------------------------------------
    # lookup machinery
    # ------------------------------------------------------------------
    def _find(self, tag: int, set_idx: int) -> Optional[_Line]:
        for line in self._sets[set_idx]:
            if line.valid and line.tag == tag:
                return line
        return None

    def _allocate(self, tag: int, set_idx: int) -> _Line:
        """Victimize a way per the replacement policy, write back if
        dirty, then fill."""
        ways = self._sets[set_idx]
        victim = None
        for line in ways:
            if not line.valid:
                victim = line
                break
        if victim is None:
            if self.policy == "random":
                victim = self._rng.choice(ways)
            else:
                # LRU uses last-touch time; FIFO uses fill time — both
                # stored in line.lru, updated by _touch vs only here.
                victim = min(ways, key=lambda l: l.lru)
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
                base = self._line_base(victim.tag, set_idx)
                self.backstore.write_burst(base, victim.data)
        base = self._line_base(tag, set_idx)
        victim.data = self.backstore.read_burst(base, self.words_per_line)
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        if self.policy == "fifo":
            # FIFO: age is fixed at fill time, never refreshed.
            self._clock += 1
            victim.lru = self._clock
        return victim

    def _touch(self, line: _Line) -> None:
        if self.policy == "fifo":
            return  # FIFO ignores reuse
        self._clock += 1
        line.lru = self._clock

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def read(self, addr: int) -> tuple[Any, bool]:
        """Read a word; returns (data, hit)."""
        tag, set_idx, offset = self._split(addr)
        line = self._find(tag, set_idx)
        hit = line is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            line = self._allocate(tag, set_idx)
        self._touch(line)
        return line.data[offset], hit

    def write(self, addr: int, data: Any) -> bool:
        """Write a word (write-allocate); returns hit."""
        tag, set_idx, offset = self._split(addr)
        line = self._find(tag, set_idx)
        hit = line is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            line = self._allocate(tag, set_idx)
        line.data[offset] = data
        line.dirty = True
        self._touch(line)
        return hit

    def flush(self) -> int:
        """Write back every dirty line; returns the number written back."""
        flushed = 0
        for set_idx, ways in enumerate(self._sets):
            for line in ways:
                if line.valid and line.dirty:
                    base = self._line_base(line.tag, set_idx)
                    self.backstore.write_burst(base, line.data)
                    line.dirty = False
                    flushed += 1
                    self.writebacks += 1
        return flushed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CacheRequest:
    is_write: bool
    addr: int
    data: Any = None


@dataclass(frozen=True)
class CacheResponse:
    addr: int
    data: Any
    hit: bool


class CacheModule:
    """Clocked cache front-end: requests in, responses out.

    Latency model: ``hit_latency`` cycles on a hit, ``miss_latency`` on a
    miss (the backstore burst transfer).
    """

    def __init__(self, sim, clock, cache: Cache, *, hit_latency: int = 1,
                 miss_latency: int = 10, name: str = "cache"):
        if hit_latency < 1 or miss_latency < hit_latency:
            raise ValueError("need miss_latency >= hit_latency >= 1")
        self.cache = cache
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        with component_scope(sim, name, kind="CacheModule", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.req: In = In(name="req")
            self.rsp: Out = Out(name="rsp")
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        while True:
            req = yield from self.req.pop()
            if req.is_write:
                hit = self.cache.write(req.addr, req.data)
                data = req.data
            else:
                data, hit = self.cache.read(req.addr)
            yield (self.hit_latency if hit else self.miss_latency)
            yield from self.rsp.push(CacheResponse(req.addr, data, hit))
