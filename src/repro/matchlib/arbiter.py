"""Round-robin arbiter (MatchLib Table 2).

A 1-out-of-N selector with rotating priority: the winner becomes the
lowest-priority requester for the next pick, guaranteeing per-requester
fairness.  This is the arbitration primitive inside the arbitrated
crossbar, arbitrated scratchpad, and the NoC routers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["RoundRobinArbiter", "FixedPriorityArbiter"]


class RoundRobinArbiter:
    """Stateful round-robin 1-out-of-N arbiter."""

    __slots__ = ("n", "_next", "grants")

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one requester, got {n}")
        self.n = n
        self._next = 0  # highest-priority requester for the next pick
        self.grants = [0] * n  # per-requester grant counts (fairness stats)

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted requests; None if none asserted.

        Priority rotates: after granting requester *i*, requester
        ``(i+1) % n`` becomes highest priority.
        """
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for offset in range(self.n):
            idx = (self._next + offset) % self.n
            if requests[idx]:
                self._next = (idx + 1) % self.n
                self.grants[idx] += 1
                return idx
        return None

    def pick_mask(self, request_mask: int) -> Optional[int]:
        """Same as :meth:`pick` but on a bit mask."""
        return self.pick([(request_mask >> i) & 1 == 1 for i in range(self.n)])

    def reset(self) -> None:
        self._next = 0


class FixedPriorityArbiter:
    """Lowest-index-wins arbiter (the unfair baseline).

    Used by ablation benches to show why the round-robin policy matters
    under sustained conflicts.
    """

    __slots__ = ("n", "grants")

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one requester, got {n}")
        self.n = n
        self.grants = [0] * n

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for idx, req in enumerate(requests):
            if req:
                self.grants[idx] += 1
                return idx
        return None
