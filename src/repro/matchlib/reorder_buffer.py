"""Reorder buffer (MatchLib Table 2): in-order reads, out-of-order writes.

Producers allocate slots in program order, fill them out of order (e.g.
responses returning from banked memory or a NoC), and the consumer drains
completed entries strictly in allocation order.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["ReorderBuffer", "RobError"]


class RobError(RuntimeError):
    """Raised on illegal reorder-buffer operations."""


class ReorderBuffer:
    """Circular-buffer ROB with explicit tags."""

    __slots__ = ("capacity", "_valid", "_data", "_head", "_tail", "_count")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._valid = [False] * capacity
        self._data: list[Any] = [None] * capacity
        self._head = 0  # next in-order read slot
        self._tail = 0  # next allocation slot
        self._count = 0  # allocated (not yet drained) slots

    # ------------------------------------------------------------------
    # allocation (in order)
    # ------------------------------------------------------------------
    @property
    def can_allocate(self) -> bool:
        return self._count < self.capacity

    def allocate(self) -> int:
        """Reserve the next slot; returns its tag."""
        if not self.can_allocate:
            raise RobError("reorder buffer full")
        tag = self._tail
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        return tag

    # ------------------------------------------------------------------
    # completion (out of order)
    # ------------------------------------------------------------------
    def write(self, tag: int, data: Any) -> None:
        """Fill an allocated slot (any order)."""
        if not 0 <= tag < self.capacity:
            raise RobError(f"tag {tag} out of range")
        if not self._is_allocated(tag):
            raise RobError(f"tag {tag} is not allocated")
        if self._valid[tag]:
            raise RobError(f"tag {tag} written twice")
        self._valid[tag] = True
        self._data[tag] = data

    def _is_allocated(self, tag: int) -> bool:
        if self._count == 0:
            return False
        if self._head < self._tail:
            return self._head <= tag < self._tail
        return tag >= self._head or tag < self._tail

    # ------------------------------------------------------------------
    # draining (in order)
    # ------------------------------------------------------------------
    @property
    def head_ready(self) -> bool:
        """True when the oldest allocated slot has been written."""
        return self._count > 0 and self._valid[self._head]

    def read(self) -> Any:
        """Pop the oldest completed entry (in allocation order)."""
        if not self.head_ready:
            raise RobError("head entry not ready")
        data = self._data[self._head]
        self._valid[self._head] = False
        self._data[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return data

    def read_nb(self) -> tuple[bool, Optional[Any]]:
        if not self.head_ready:
            return False, None
        return True, self.read()

    @property
    def occupancy(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReorderBuffer(capacity={self.capacity}, occupancy={self._count})"
