"""1-hot encoders and decoders (MatchLib Table 2)."""

from __future__ import annotations

__all__ = [
    "one_hot_encode",
    "one_hot_decode",
    "is_one_hot",
    "priority_encode",
    "binary_to_gray",
    "gray_to_binary",
]


def one_hot_encode(index: int, width: int) -> int:
    """Binary index -> one-hot bit vector of ``width`` bits."""
    if not 0 <= index < width:
        raise ValueError(f"index {index} out of range for width {width}")
    return 1 << index


def one_hot_decode(onehot: int) -> int:
    """One-hot bit vector -> binary index.  Rejects non-one-hot inputs."""
    if not is_one_hot(onehot):
        raise ValueError(f"{onehot:#x} is not one-hot")
    return onehot.bit_length() - 1


def is_one_hot(value: int) -> bool:
    """True iff exactly one bit is set."""
    return value > 0 and (value & (value - 1)) == 0


def priority_encode(bits: int) -> int:
    """Index of the least-significant set bit; -1 if none.

    This is the priority decoder the src-loop crossbar coding forces HLS
    to synthesize (section 2.4).
    """
    if bits == 0:
        return -1
    return (bits & -bits).bit_length() - 1


def binary_to_gray(value: int) -> int:
    """Binary -> Gray code (used by CDC FIFO pointers in gals/)."""
    if value < 0:
        raise ValueError("negative values have no Gray encoding")
    return value ^ (value >> 1)


def gray_to_binary(gray: int) -> int:
    """Gray code -> binary."""
    if gray < 0:
        raise ValueError("negative values have no Gray encoding")
    value = 0
    while gray:
        value ^= gray
        gray >>= 1
    return value
