"""Serializer / Deserializer modules (MatchLib Table 2).

``Serializer``: N-bit messages to M cycles of (N/M)-bit flit payloads.
``Deserializer``: the inverse.  These are the SystemC-module counterparts
to the pure slicing helpers in :mod:`repro.connections.packet`; the PE's
router interface instantiates them (section 4).
"""

from __future__ import annotations

from typing import Generator

from ..connections.packet import int_deserializer, int_serializer
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope

__all__ = ["Serializer", "Deserializer"]


class Serializer:
    """Clocked module: pops one wide message, pushes its slices LSB-first.

    Ports: ``wide_in`` (N-bit ints), ``narrow_out`` ((N/M)-bit ints).
    Emits one slice per cycle, as the hardware shift register would.
    """

    def __init__(self, sim, clock, *, width: int, flit_width: int,
                 name: str = "ser"):
        if width < flit_width:
            raise ValueError("width must be >= flit_width")
        self.width = width
        self.flit_width = flit_width
        self.factor = -(-width // flit_width)
        self._slice = int_serializer(width, flit_width)
        with component_scope(sim, name, kind="Serializer", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.wide_in: In = In(name="wide_in")
            self.narrow_out: Out = Out(name="narrow_out")
            self.messages = 0
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        while True:
            msg = yield from self.wide_in.pop()
            for payload in self._slice(msg):
                yield from self.narrow_out.push(payload)
                yield  # one slice per cycle
            self.messages += 1


class Deserializer:
    """Clocked module: accumulates M slices, pushes the wide message.

    Ports: ``narrow_in``, ``wide_out``.
    """

    def __init__(self, sim, clock, *, width: int, flit_width: int,
                 name: str = "des"):
        if width < flit_width:
            raise ValueError("width must be >= flit_width")
        self.width = width
        self.flit_width = flit_width
        self.factor = -(-width // flit_width)
        self._join = int_deserializer(width, flit_width)
        with component_scope(sim, name, kind="Deserializer", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.narrow_in: In = In(name="narrow_in")
            self.wide_out: Out = Out(name="wide_out")
            self.messages = 0
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        while True:
            payloads = []
            for _ in range(self.factor):
                payload = yield from self.narrow_in.pop()
                payloads.append(payload)
            msg = self._join(payloads)
            yield from self.wide_out.push(msg)
            self.messages += 1
