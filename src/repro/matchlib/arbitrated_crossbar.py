"""Arbitrated crossbar (MatchLib Table 2) in three timing models.

The arbitrated crossbar is an N-to-N switch with per-output round-robin
conflict arbitration and per-input queueing.  It is the design the paper
uses to quantify modelling accuracy (Figure 3): the same microarchitecture
is provided here as

* :class:`ArbitratedCrossbarRTL` — signal-level model ("RTL" reference),
* :class:`ArbitratedCrossbarModule` — loosely-timed thread over fast
  channels (the *sim-accurate* model),
* :class:`ArbitratedCrossbarSA` — the same loosely-timed thread but with
  *signal-accurate* port routines, whose per-port delayed operations
  serialize in the main thread and inflate elapsed cycles with port count.

Messages are ``(dst, payload)`` tuples.  All three models share
:class:`ArbitratedCrossbarKernel` for queueing/arbitration policy so any
cycle-count difference is attributable purely to the modelling style —
the paper's experimental control.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from ..connections.ports import In, Out
from ..connections.signal_accurate import SignalAccurateIn, SignalAccurateOut
from ..connections.signal_channel import SignalInterface
from ..design.hierarchy import component_scope
from .arbiter import RoundRobinArbiter
from .fifo import Fifo

__all__ = [
    "ArbitratedCrossbarKernel",
    "ArbitratedCrossbarModule",
    "ArbitratedCrossbarRTL",
    "ArbitratedCrossbarSA",
]


class ArbitratedCrossbarKernel:
    """Shared queueing + arbitration policy.

    State: one input queue per input port, one round-robin arbiter per
    output.  :meth:`arbitrate` performs one cycle's worth of grants.
    """

    def __init__(self, n_in: int, n_out: int, *, queue_depth: int = 2):
        if n_in < 1 or n_out < 1:
            raise ValueError("need at least one input and one output")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.n_in = n_in
        self.n_out = n_out
        self.queues = [Fifo(capacity=queue_depth) for _ in range(n_in)]
        self.arbiters = [RoundRobinArbiter(n_in) for _ in range(n_out)]
        self.transactions = 0

    def accept(self, port: int, msg: tuple) -> bool:
        """Enqueue a message on an input port if there is room."""
        dst = msg[0]
        if not 0 <= dst < self.n_out:
            raise ValueError(f"destination {dst} out of range")
        return self.queues[port].push_nb(msg)

    def can_accept(self, port: int) -> bool:
        return not self.queues[port].full

    def arbitrate(self, output_free: Sequence[bool]) -> list:
        """One arbitration round.

        ``output_free[o]`` says whether output *o* can take a message this
        cycle.  Returns a list of ``(out_idx, msg)`` grants; granted
        messages are popped from their input queues.
        """
        grants = []
        for o in range(self.n_out):
            if not output_free[o]:
                continue
            requests = [
                (not q.empty) and q.peek()[0] == o for q in self.queues
            ]
            winner = self.arbiters[o].pick(requests)
            if winner is not None:
                msg = self.queues[winner].pop()
                grants.append((o, msg))
                self.transactions += 1
        return grants


class ArbitratedCrossbarModule:
    """Sim-accurate model: one loosely-timed thread over fast channels.

    Ports: ``ins[i]`` (:class:`In`), ``outs[o]`` (:class:`Out`).  Each
    iteration drains input ports into the kernel queues, arbitrates every
    output, and pushes grants — all in a single cycle, as HLS would
    schedule it.
    """

    def __init__(self, sim, clock, n_in: int, n_out: int, *,
                 queue_depth: int = 2, name: str = "axbar"):
        self.kernel = ArbitratedCrossbarKernel(n_in, n_out, queue_depth=queue_depth)
        with component_scope(sim, name, kind="ArbitratedCrossbarModule",
                             obj=self, clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.ins = [In(name=f"in{i}") for i in range(n_in)]
            self.outs = [Out(name=f"out{o}") for o in range(n_out)]
            sim.add_thread(self._run(), clock, name="ctl")

    @property
    def transactions(self) -> int:
        return self.kernel.transactions

    def _run(self) -> Generator:
        kernel = self.kernel
        while True:
            for i, port in enumerate(self.ins):
                if kernel.can_accept(i):
                    ok, msg = port.pop_nb()
                    if ok:
                        kernel.accept(i, msg)
            free = [port.can_push() for port in self.outs]
            for o, msg in kernel.arbitrate(free):
                pushed = self.outs[o].push_nb(msg)
                assert pushed, "arbitrate() only grants free outputs"
            yield


class ArbitratedCrossbarRTL:
    """Signal-level reference model (the "HLS-generated RTL" stand-in).

    Interfaces: ``enq[i]``/``deq[o]`` are
    :class:`~repro.connections.signal_channel.SignalInterface` bundles.
    Microarchitecture: per-input queue, per-output round-robin arbiter and
    a 1-deep output register; all handshakes evaluated per cycle at
    signal granularity.
    """

    def __init__(self, sim, clock, n_in: int, n_out: int, *,
                 queue_depth: int = 2, name: str = "axbar_rtl"):
        self.kernel = ArbitratedCrossbarKernel(n_in, n_out, queue_depth=queue_depth)
        with component_scope(sim, name, kind="ArbitratedCrossbarRTL",
                             obj=self, clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.enq = [SignalInterface(sim, name=f"enq{i}")
                        for i in range(n_in)]
            self.deq = [SignalInterface(sim, name=f"deq{o}")
                        for o in range(n_out)]
        self._out_reg: list[Optional[tuple]] = [None] * n_out
        for iface in self.enq:
            iface.ready.write(1)
        clock.on_edge(self._edge)

    @property
    def transactions(self) -> int:
        return self.kernel.transactions

    def _edge(self, clock) -> None:
        kernel = self.kernel
        # 1. Output side: consume fires clear the output registers.
        for o, iface in enumerate(self.deq):
            if self._out_reg[o] is not None and iface.valid.read() and iface.ready.read():
                self._out_reg[o] = None
        # 2. Input side: sample enqueue fires into the input queues.
        for i, iface in enumerate(self.enq):
            if iface.valid.read() and iface.ready.read():
                accepted = kernel.accept(i, iface.msg.read())
                assert accepted, "ready guaranteed space last cycle"
        # 3. Arbitration into free output registers.
        free = [reg is None for reg in self._out_reg]
        for o, msg in kernel.arbitrate(free):
            self._out_reg[o] = msg
        # 4. Drive registered outputs for the next cycle.
        for i, iface in enumerate(self.enq):
            iface.ready.write(1 if kernel.can_accept(i) else 0)
        for o, iface in enumerate(self.deq):
            reg = self._out_reg[o]
            iface.valid.write(1 if reg is not None else 0)
            iface.msg.write(reg)


class ArbitratedCrossbarSA:
    """Signal-accurate model: the Module's loop with delayed-op ports.

    Identical algorithm to :class:`ArbitratedCrossbarModule`, but every
    ``pop_nb``/``push_nb`` costs one main-thread cycle (the paper's
    baseline style), so elapsed cycles grow with the number of ports —
    the growing error of Figure 3.
    """

    def __init__(self, sim, clock, n_in: int, n_out: int, *,
                 queue_depth: int = 2, name: str = "axbar_sa"):
        self.kernel = ArbitratedCrossbarKernel(n_in, n_out, queue_depth=queue_depth)
        with component_scope(sim, name, kind="ArbitratedCrossbarSA",
                             obj=self, clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.enq = [SignalInterface(sim, name=f"enq{i}")
                        for i in range(n_in)]
            self.deq = [SignalInterface(sim, name=f"deq{o}")
                        for o in range(n_out)]
            self._ins = [SignalAccurateIn(iface) for iface in self.enq]
            self._outs = [SignalAccurateOut(iface) for iface in self.deq]
            self._pending: list[Optional[tuple]] = [None] * n_out
            sim.add_thread(self._run(), clock, name="ctl")

    @property
    def transactions(self) -> int:
        return self.kernel.transactions

    def _run(self) -> Generator:
        kernel = self.kernel
        while True:
            # Drain inputs: each pop_nb is a delayed operation (1 cycle).
            for i, port in enumerate(self._ins):
                if kernel.can_accept(i):
                    ok, msg = yield from port.pop_nb()
                    if ok:
                        kernel.accept(i, msg)
            # Arbitrate outputs whose previous push completed.
            free = [p is None for p in self._pending]
            for o, msg in kernel.arbitrate(free):
                self._pending[o] = msg
            # Push pending messages: each push_nb is a delayed operation.
            for o, port in enumerate(self._outs):
                if self._pending[o] is not None:
                    ok = yield from port.push_nb(self._pending[o])
                    if ok:
                        self._pending[o] = None
            yield
