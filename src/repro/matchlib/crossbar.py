"""Crossbar functions (MatchLib Table 2) and the section 2.4 case study.

Two functionally near-identical C++ codings of an N-lane crossbar HLS to
very different hardware (the paper's QoR case study):

* **src-loop** — ``for src: out[dst[src]] = in[src]`` — requires priority
  decoding because several sources can target one output; HLS infers an
  undesirable dependency from every ``dst[src]`` control signal to every
  output and ~25 % more area.
* **dst-loop** — ``for dst: out[dst] = in[src[dst]]`` — one plain mux per
  output.

Both behavioural functions are provided here (with the exact conflict
semantics each coding implies), and :mod:`repro.hls.library` builds the
corresponding operation graphs that the HLS engine schedules to
reproduce the area/compile-time comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["crossbar_dst_loop", "crossbar_src_loop", "permute"]


def crossbar_dst_loop(inputs: Sequence, src_sel: Sequence[int]) -> list:
    """dst-loop crossbar: ``out[dst] = in[src_sel[dst]]``.

    ``src_sel[dst]`` names which input drives each output; any permutation
    or fan-out (several outputs reading one input) is legal.
    """
    n = len(inputs)
    if len(src_sel) != n:
        raise ValueError(f"src_sel has {len(src_sel)} entries, expected {n}")
    out = [None] * n
    for dst in range(n):
        src = src_sel[dst]
        if not 0 <= src < n:
            raise ValueError(f"src_sel[{dst}]={src} out of range")
        out[dst] = inputs[src]
    return out


def crossbar_src_loop(inputs: Sequence, dst_sel: Sequence[int]) -> list:
    """src-loop crossbar: ``out[dst_sel[src]] = in[src]``.

    When several sources select the same output, the *highest* source
    index wins — the priority behaviour the HLS tool must build priority
    decoders for (the source of the 25 % area penalty).
    Outputs no source selects are ``None``.
    """
    n = len(inputs)
    if len(dst_sel) != n:
        raise ValueError(f"dst_sel has {len(dst_sel)} entries, expected {n}")
    out = [None] * n
    for src in range(n):
        dst = dst_sel[src]
        if not 0 <= dst < n:
            raise ValueError(f"dst_sel[{src}]={dst} out of range")
        out[dst] = inputs[src]
    return out


def permute(inputs: Sequence, permutation: Sequence[int]) -> list:
    """Apply a strict permutation (validates bijectivity first)."""
    n = len(inputs)
    if sorted(permutation) != list(range(n)):
        raise ValueError("not a permutation")
    return crossbar_dst_loop(inputs, list(permutation))
