"""Bit-accurate floating-point arithmetic functions (MatchLib Table 2).

MatchLib's ``Float`` component family provides synthesizable
floating-point mul, add, and fused mul-add for configurable formats.
This module reimplements them as pure functions over integer bit
patterns with a parameterizable format (:class:`FloatSpec`), supporting:

* normalized and subnormal numbers,
* signed zero, infinities and NaNs,
* round-to-nearest-even (the HLS default),
* a *fused* multiply-add (single rounding), matching the datapath a
  MAC unit synthesizes to.

The PE vector datapath (:mod:`repro.soc.datapath`) instantiates these
functions exactly as the prototype SoC instantiated MatchLib's Float
components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["FloatSpec", "FP16", "FP32", "BF16", "fp_mul", "fp_add", "fp_mul_add"]


@dataclass(frozen=True)
class FloatSpec:
    """A binary floating-point format: 1 sign, ``exp_bits``, ``man_bits``."""

    exp_bits: int
    man_bits: int

    def __post_init__(self):
        if self.exp_bits < 2 or self.man_bits < 1:
            raise ValueError("need exp_bits >= 2 and man_bits >= 1")

    @property
    def width(self) -> int:
        return 1 + self.exp_bits + self.man_bits

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def exp_max(self) -> int:
        """All-ones exponent field (inf/NaN encoding)."""
        return (1 << self.exp_bits) - 1

    @property
    def man_mask(self) -> int:
        return (1 << self.man_bits) - 1

    # ------------------------------------------------------------------
    # field accessors
    # ------------------------------------------------------------------
    def fields(self, bits: int) -> Tuple[int, int, int]:
        """Split a bit pattern into (sign, exponent-field, mantissa-field)."""
        man = bits & self.man_mask
        exp = (bits >> self.man_bits) & self.exp_max
        sign = (bits >> (self.man_bits + self.exp_bits)) & 1
        return sign, exp, man

    def build(self, sign: int, exp: int, man: int) -> int:
        return (sign << (self.man_bits + self.exp_bits)) | (exp << self.man_bits) | man

    # special values ----------------------------------------------------
    def zero(self, sign: int = 0) -> int:
        return self.build(sign, 0, 0)

    def inf(self, sign: int = 0) -> int:
        return self.build(sign, self.exp_max, 0)

    def nan(self) -> int:
        return self.build(0, self.exp_max, 1 << (self.man_bits - 1))

    def is_nan(self, bits: int) -> bool:
        _, exp, man = self.fields(bits)
        return exp == self.exp_max and man != 0

    def is_inf(self, bits: int) -> bool:
        _, exp, man = self.fields(bits)
        return exp == self.exp_max and man == 0

    def is_zero(self, bits: int) -> bool:
        _, exp, man = self.fields(bits)
        return exp == 0 and man == 0

    # ------------------------------------------------------------------
    # conversion to/from Python float (for testbenches, not synthesis)
    # ------------------------------------------------------------------
    def decode(self, bits: int) -> float:
        sign, exp, man = self.fields(bits)
        s = -1.0 if sign else 1.0
        if exp == self.exp_max:
            if man:
                return float("nan")
            return s * float("inf")
        if exp == 0:
            return s * man * 2.0 ** (1 - self.bias - self.man_bits)
        return s * (man + (1 << self.man_bits)) * 2.0 ** (exp - self.bias - self.man_bits)

    def encode(self, value: float) -> int:
        """Encode a Python float with round-to-nearest-even."""
        import math

        if math.isnan(value):
            return self.nan()
        sign = 1 if math.copysign(1.0, value) < 0 else 0
        if math.isinf(value):
            return self.inf(sign)
        if value == 0.0:
            return self.zero(sign)
        mantissa, exp2 = math.frexp(abs(value))  # value = mantissa * 2^exp2, m in [0.5,1)
        # Represent as integer significand * 2^e with plenty of precision.
        sig = int(mantissa * (1 << 60))
        return _pack(self, sign, exp2 - 60, sig)

    # exact significand form (used by the arithmetic) -------------------
    def _unpack(self, bits: int) -> Tuple[int, int, int]:
        """Return (sign, exp2, sig) with value = (-1)^sign * sig * 2^exp2."""
        sign, exp, man = self.fields(bits)
        if exp == 0:
            return sign, 1 - self.bias - self.man_bits, man
        return sign, exp - self.bias - self.man_bits, man + (1 << self.man_bits)


FP16 = FloatSpec(exp_bits=5, man_bits=10)
FP32 = FloatSpec(exp_bits=8, man_bits=23)
BF16 = FloatSpec(exp_bits=8, man_bits=7)


def _pack(spec: FloatSpec, sign: int, exp2: int, sig: int) -> int:
    """Round-to-nearest-even pack of value = (-1)^sign * sig * 2^exp2."""
    if sig == 0:
        return spec.zero(sign)
    # Normalized form: value = m * 2^e with m in [1, 2).
    nbits = sig.bit_length()
    e = exp2 + nbits - 1
    biased = e + spec.bias
    if biased >= 1:
        drop = nbits - (spec.man_bits + 1)
    else:
        # Subnormal: fix the exponent at the minimum, shift further right.
        drop = nbits - (spec.man_bits + 1) + (1 - biased)
    if drop > 0:
        keep = sig >> drop
        remainder = sig & ((1 << drop) - 1)
        half = 1 << (drop - 1)
        if remainder > half or (remainder == half and (keep & 1)):
            keep += 1
    else:
        keep = sig << (-drop)
    # Rounding may have carried into a new bit.
    if keep.bit_length() > spec.man_bits + 1:
        keep >>= 1
        biased += 1
    if biased >= 1 and keep >= (1 << spec.man_bits):
        # Normal number.
        if biased >= spec.exp_max:
            return spec.inf(sign)  # overflow
        return spec.build(sign, biased, keep & spec.man_mask)
    # Subnormal (or rounded up into the smallest normal).
    if keep >= (1 << spec.man_bits):
        return spec.build(sign, 1, keep & spec.man_mask)
    return spec.build(sign, 0, keep)


def fp_mul(spec: FloatSpec, a: int, b: int) -> int:
    """Multiply two bit patterns; returns the product's bit pattern."""
    if spec.is_nan(a) or spec.is_nan(b):
        return spec.nan()
    sa, ea, ma = spec._unpack(a)
    sb, eb, mb = spec._unpack(b)
    sign = sa ^ sb
    if spec.is_inf(a) or spec.is_inf(b):
        if spec.is_zero(a) or spec.is_zero(b):
            return spec.nan()  # inf * 0
        return spec.inf(sign)
    return _pack(spec, sign, ea + eb, ma * mb)


def fp_add(spec: FloatSpec, a: int, b: int) -> int:
    """Add two bit patterns; returns the sum's bit pattern."""
    if spec.is_nan(a) or spec.is_nan(b):
        return spec.nan()
    if spec.is_inf(a) and spec.is_inf(b):
        sa, _, _ = spec.fields(a)
        sb, _, _ = spec.fields(b)
        return spec.nan() if sa != sb else a
    if spec.is_inf(a):
        return a
    if spec.is_inf(b):
        return b
    sa, ea, ma = spec._unpack(a)
    sb, eb, mb = spec._unpack(b)
    # Align to the smaller exponent; exact integer arithmetic.
    e = min(ea, eb)
    va = ma << (ea - e)
    vb = mb << (eb - e)
    total = (-va if sa else va) + (-vb if sb else vb)
    if total == 0:
        # IEEE: exact-cancellation sum is +0 in round-to-nearest.
        return spec.zero(0)
    sign = 1 if total < 0 else 0
    return _pack(spec, sign, e, abs(total))


def fp_mul_add(spec: FloatSpec, a: int, b: int, c: int) -> int:
    """Fused multiply-add ``a*b + c`` with a single rounding step."""
    if spec.is_nan(a) or spec.is_nan(b) or spec.is_nan(c):
        return spec.nan()
    sa, ea, ma = spec._unpack(a)
    sb, eb, mb = spec._unpack(b)
    psign = sa ^ sb
    if spec.is_inf(a) or spec.is_inf(b):
        if spec.is_zero(a) or spec.is_zero(b):
            return spec.nan()
        if spec.is_inf(c):
            sc, _, _ = spec.fields(c)
            return spec.nan() if sc != psign else c
        return spec.inf(psign)
    if spec.is_inf(c):
        return c
    sc, ec, mc = spec._unpack(c)
    pe = ea + eb
    pm = ma * mb
    e = min(pe, ec)
    vp = pm << (pe - e)
    vc = mc << (ec - e)
    total = (-vp if psign else vp) + (-vc if sc else vc)
    if total == 0:
        return spec.zero(0)
    sign = 1 if total < 0 else 0
    return _pack(spec, sign, e, abs(total))
