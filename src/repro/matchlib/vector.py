"""Vector helper container with vector operations (MatchLib Table 2).

A fixed-lane-count container with elementwise arithmetic, dot product,
MAC and reductions — the building block of the PE's vector datapath
(section 4: "we used the MatchLib vector library to design the datapath
unit").  Two arithmetic modes:

* native Python numbers (ints/floats) for functional modelling, and
* bit-accurate floating point through a :class:`~repro.matchlib.fp.FloatSpec`,
  which is what the synthesized datapath computes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from .fp import FloatSpec, fp_add, fp_mul, fp_mul_add

__all__ = ["Vector"]


class Vector:
    """Fixed-length lane container with elementwise operations."""

    __slots__ = ("lanes", "_data")

    def __init__(self, data: Sequence):
        data = list(data)
        if not data:
            raise ValueError("Vector needs at least one lane")
        self.lanes = len(data)
        self._data = data

    @classmethod
    def splat(cls, value, lanes: int) -> "Vector":
        """Broadcast one value across ``lanes`` lanes."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        return cls([value] * lanes)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.lanes

    def __getitem__(self, idx: int):
        return self._data[idx]

    def __setitem__(self, idx: int, value) -> None:
        self._data[idx] = value

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __eq__(self, other) -> bool:
        return isinstance(other, Vector) and self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vector({self._data!r})"

    def to_list(self) -> list:
        return list(self._data)

    # ------------------------------------------------------------------
    # elementwise native arithmetic
    # ------------------------------------------------------------------
    def _zip(self, other: "Vector", op: Callable) -> "Vector":
        if not isinstance(other, Vector) or other.lanes != self.lanes:
            raise ValueError("lane count mismatch")
        return Vector([op(a, b) for a, b in zip(self._data, other._data)])

    def __add__(self, other: "Vector") -> "Vector":
        return self._zip(other, lambda a, b: a + b)

    def __sub__(self, other: "Vector") -> "Vector":
        return self._zip(other, lambda a, b: a - b)

    def __mul__(self, other: "Vector") -> "Vector":
        return self._zip(other, lambda a, b: a * b)

    def scale(self, scalar) -> "Vector":
        return Vector([a * scalar for a in self._data])

    def mac(self, a: "Vector", b: "Vector") -> "Vector":
        """self + a*b elementwise (multiply-accumulate)."""
        return self._zip(a._zip(b, lambda x, y: x * y), lambda acc, p: acc + p)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def reduce_sum(self):
        total = self._data[0]
        for v in self._data[1:]:
            total = total + v
        return total

    def reduce_max(self):
        return max(self._data)

    def reduce_min(self):
        return min(self._data)

    def dot(self, other: "Vector"):
        """Dot product (native arithmetic)."""
        return (self * other).reduce_sum()

    # ------------------------------------------------------------------
    # bit-accurate floating-point lanes
    # ------------------------------------------------------------------
    def fp_add(self, other: "Vector", spec: FloatSpec) -> "Vector":
        return self._zip(other, lambda a, b: fp_add(spec, a, b))

    def fp_mul(self, other: "Vector", spec: FloatSpec) -> "Vector":
        return self._zip(other, lambda a, b: fp_mul(spec, a, b))

    def fp_mac(self, a: "Vector", b: "Vector", spec: FloatSpec) -> "Vector":
        """Fused elementwise self + a*b with single rounding per lane."""
        if a.lanes != self.lanes or b.lanes != self.lanes:
            raise ValueError("lane count mismatch")
        return Vector([
            fp_mul_add(spec, x, y, acc)
            for acc, x, y in zip(self._data, a._data, b._data)
        ])

    def fp_dot(self, other: "Vector", spec: FloatSpec) -> int:
        """Sequential-accumulation dot product in the given FP format."""
        acc = spec.zero()
        for x, y in zip(self._data, other._data):
            acc = fp_mul_add(spec, x, y, acc)
        return acc
