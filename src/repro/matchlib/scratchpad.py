"""Scratchpad module (MatchLib Table 2): banked memory array + crossbar.

The clocked front-end over :class:`~repro.matchlib.arbitrated_scratchpad.
ArbitratedScratchpad`: lane requests arrive on an ``In`` port (one vector
of per-lane requests per message), cross the bank crossbar with conflict
arbitration, and per-lane responses leave on an ``Out`` port.  This is
the PE-local memory of the prototype SoC.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from .arbitrated_scratchpad import ArbitratedScratchpad, SpRequest, SpResponse

__all__ = ["ScratchpadModule"]


class ScratchpadModule:
    """Clocked banked scratchpad with vector (multi-lane) access.

    A request message is a sequence of per-lane ``SpRequest`` (or None
    for inactive lanes).  The response message is the list of per-lane
    ``SpResponse`` in lane order, sent once every lane completed.  Bank
    conflicts serialize internally — the response naturally arrives
    later, which is how the real hardware behaves.
    """

    def __init__(self, sim, clock, *, n_lanes: int, n_banks: int,
                 bank_entries: int, width: Optional[int] = None,
                 name: str = "spad"):
        self.n_lanes = n_lanes
        self.core = ArbitratedScratchpad(
            n_requesters=n_lanes, n_banks=n_banks,
            bank_entries=bank_entries, width=width,
        )
        with component_scope(sim, name, kind="ScratchpadModule", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.req: In = In(name="req")
            self.rsp: Out = Out(name="rsp")
            self.requests_served = 0
            sim.add_thread(self._run(), clock, name="ctl")

    def _run(self) -> Generator:
        core = self.core
        while True:
            lanes: Sequence[Optional[SpRequest]] = yield from self.req.pop()
            if len(lanes) != self.n_lanes:
                raise ValueError(
                    f"{self.name}: got {len(lanes)} lanes, expected {self.n_lanes}"
                )
            pending = 0
            for lane, req in enumerate(lanes):
                if req is None:
                    continue
                submitted = core.submit(
                    SpRequest(lane, req.is_write, req.addr, req.data)
                )
                assert submitted, "per-lane queues sized for one vector"
                pending += 1
            responses: list[Optional[SpResponse]] = [None] * self.n_lanes
            while pending:
                yield  # one scratchpad cycle
                for rsp in core.tick():
                    responses[rsp.requester] = rsp
                    pending -= 1
            yield from self.rsp.push(responses)
            self.requests_served += 1
