"""MatchLib: the Modular Approach To Circuits and Hardware Library.

Reimplementation of Table 2 of the paper, organized exactly as the paper
classifies components:

C++ functions (untimed)
    :mod:`.fp` (Float mul/add/mul-add), :mod:`.crossbar`,
    :mod:`.encoding` (1-hot encoders/decoders)

C++ classes (state + untimed methods)
    :class:`.Fifo`, :class:`.RoundRobinArbiter`, :class:`.MemArray`,
    :class:`.Vector`, :class:`.ArbitratedCrossbarKernel`,
    :class:`.ArbitratedScratchpad`, :class:`.ReorderBuffer`
    (Connections itself lives in :mod:`repro.connections`)

SystemC modules (clocked)
    :class:`.Serializer` / :class:`.Deserializer`, :class:`.CacheModule`,
    :class:`.ScratchpadModule`, the arbitrated-crossbar timing models
    (NoC routers live in :mod:`repro.noc`, AXI in :mod:`repro.axi`)
"""

from .arbiter import FixedPriorityArbiter, RoundRobinArbiter
from .arbitrated_crossbar import (
    ArbitratedCrossbarKernel,
    ArbitratedCrossbarModule,
    ArbitratedCrossbarRTL,
    ArbitratedCrossbarSA,
)
from .arbitrated_scratchpad import ArbitratedScratchpad, SpRequest, SpResponse
from .cache import Cache, CacheModule, CacheRequest, CacheResponse
from .crossbar import crossbar_dst_loop, crossbar_src_loop, permute
from .encoding import (
    binary_to_gray,
    gray_to_binary,
    is_one_hot,
    one_hot_decode,
    one_hot_encode,
    priority_encode,
)
from .fifo import Fifo, FifoError
from .fp import BF16, FP16, FP32, FloatSpec, fp_add, fp_mul, fp_mul_add
from .mem_array import MemArray, MemError
from .reorder_buffer import ReorderBuffer, RobError
from .serdes import Deserializer, Serializer
from .scratchpad import ScratchpadModule
from .vector import Vector

__all__ = [
    "FloatSpec", "FP16", "FP32", "BF16", "fp_mul", "fp_add", "fp_mul_add",
    "crossbar_dst_loop", "crossbar_src_loop", "permute",
    "one_hot_encode", "one_hot_decode", "is_one_hot", "priority_encode",
    "binary_to_gray", "gray_to_binary",
    "Fifo", "FifoError",
    "RoundRobinArbiter", "FixedPriorityArbiter",
    "MemArray", "MemError",
    "Vector",
    "ArbitratedCrossbarKernel", "ArbitratedCrossbarModule",
    "ArbitratedCrossbarRTL", "ArbitratedCrossbarSA",
    "ArbitratedScratchpad", "SpRequest", "SpResponse",
    "ReorderBuffer", "RobError",
    "Serializer", "Deserializer",
    "Cache", "CacheModule", "CacheRequest", "CacheResponse",
    "ScratchpadModule",
]
