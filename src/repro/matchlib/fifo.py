"""Configurable FIFO class (MatchLib Table 2).

An untimed bounded queue with the interface MatchLib components use
internally (the clocked Buffer channel wraps the same discipline with
handshake timing).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Iterator, Optional, TypeVar

__all__ = ["Fifo", "FifoError"]

T = TypeVar("T")


class FifoError(RuntimeError):
    """Raised on illegal FIFO operations (overflow/underflow)."""


class Fifo(Generic[T]):
    """Bounded FIFO with explicit overflow/underflow errors.

    ``capacity=None`` makes it unbounded (testbench use only — real
    hardware always bounds it).
    """

    __slots__ = ("capacity", "_queue", "peak_occupancy", "total_pushed")

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._queue: deque = deque()
        self.peak_occupancy = 0
        self.total_pushed = 0

    def push(self, item: T) -> None:
        queue = self._queue
        if self.capacity is not None and len(queue) >= self.capacity:
            raise FifoError("push to full FIFO")
        queue.append(item)
        self.total_pushed += 1
        if len(queue) > self.peak_occupancy:
            self.peak_occupancy = len(queue)

    def push_nb(self, item: T) -> bool:
        """Non-blocking push; returns False instead of raising when full."""
        if self.capacity is not None and len(self._queue) >= self.capacity:
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        if not self._queue:
            raise FifoError("pop from empty FIFO")
        return self._queue.popleft()

    def pop_nb(self) -> tuple[bool, Optional[T]]:
        if not self._queue:
            return False, None
        return True, self._queue.popleft()

    def peek(self) -> T:
        if not self._queue:
            raise FifoError("peek at empty FIFO")
        return self._queue[0]

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._queue) >= self.capacity

    @property
    def size(self) -> int:
        return len(self._queue)

    @property
    def free(self) -> Optional[int]:
        """Remaining space, or None when unbounded."""
        if self.capacity is None:
            return None
        return self.capacity - len(self._queue)

    def clear(self) -> None:
        self._queue.clear()

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[T]:
        return iter(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fifo(size={len(self._queue)}, capacity={self.capacity})"
