"""Abstract memory class ``mem_array`` (MatchLib Table 2).

An addressable array with read/write methods, optional bit-width
masking, and access statistics.  The global memory banks of the
prototype SoC are built from this class, exactly as in the paper
(section 4: "the different memory banks were designed using our
abstract memory class, mem_array").
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["MemArray", "MemError"]


class MemError(RuntimeError):
    """Raised on out-of-range accesses."""


class MemArray:
    """Word-addressable memory.

    Parameters
    ----------
    entries:
        Number of words.
    width:
        Optional word width in bits; integer writes are masked to it.
        ``None`` stores arbitrary Python objects (testbench convenience).
    init:
        Initial fill value.
    """

    __slots__ = ("entries", "width", "_mask", "_data", "reads", "writes")

    def __init__(self, entries: int, *, width: Optional[int] = None, init: Any = 0):
        if entries < 1:
            raise ValueError(f"entries must be >= 1, got {entries}")
        if width is not None and width < 1:
            raise ValueError(f"width must be >= 1 or None, got {width}")
        self.entries = entries
        self.width = width
        self._mask = (1 << width) - 1 if width is not None else None
        self._data: List[Any] = [init] * entries
        self.reads = 0
        self.writes = 0

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.entries:
            raise MemError(f"address {addr} out of range [0, {self.entries})")

    def read(self, addr: int) -> Any:
        self._check(addr)
        self.reads += 1
        return self._data[addr]

    def write(self, addr: int, data: Any) -> None:
        self._check(addr)
        self.writes += 1
        if self._mask is not None and isinstance(data, int):
            data = data & self._mask
        self._data[addr] = data

    def read_burst(self, addr: int, length: int) -> list:
        """Read ``length`` consecutive words."""
        if length < 0 or addr + length > self.entries:
            raise MemError(f"burst [{addr}, {addr + length}) out of range")
        self.reads += length
        return self._data[addr:addr + length]

    def write_burst(self, addr: int, data: Sequence) -> None:
        """Write consecutive words starting at ``addr``."""
        if addr + len(data) > self.entries:
            raise MemError(f"burst [{addr}, {addr + len(data)}) out of range")
        for offset, word in enumerate(data):
            self.write(addr + offset, word)

    def load(self, values: Sequence, *, base: int = 0) -> None:
        """Testbench preload without touching access counters."""
        if base + len(values) > self.entries:
            raise MemError("preload out of range")
        for offset, word in enumerate(values):
            if self._mask is not None and isinstance(word, int):
                word = word & self._mask
            self._data[base + offset] = word

    def dump(self, base: int = 0, length: Optional[int] = None) -> list:
        """Testbench inspection without touching access counters."""
        if length is None:
            length = self.entries - base
        return list(self._data[base:base + length])

    def __len__(self) -> int:
        return self.entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemArray(entries={self.entries}, width={self.width})"
