"""repro.design — design hierarchy, elaboration, and static lint.

The paper's whole pitch is *modular composition*: an SoC assembled from
reusable MatchLib/Connections components by a push-button flow.  This
package is the reproduction's structural backbone for that claim — the
layer that knows **what was built**, separate from the kernel that knows
how to simulate it:

* :mod:`.hierarchy` — a parent-scoped :class:`Instance` tree.  Every
  component constructor opens a :meth:`Hierarchy.scope`, so channels,
  ports, threads, clocks, and signals all acquire a stable dotted
  instance path (``chip.pe3.spad`` …).  Objects built outside any scope
  land in a compatibility root, so pre-hierarchy constructor call
  styles keep working unchanged.
* :mod:`.elaborate` — the one-time, pre-run **elaboration pass**: walks
  the hierarchy into a queryable :class:`DesignGraph` (instances, port
  endpoints, channel connectivity, clock domains).
* :mod:`.lower` — the **lowering pass** used by the compiled backend:
  re-expresses the design graph as a static event/dataflow
  :class:`NodeSchedule` (clock edge, channel ticks, thread resumes,
  handshake edges) that :mod:`repro.compile` executes with a flat
  dispatch loop (see ``docs/COMPILED_BACKEND.md``).
* :mod:`.lint` — static checks over the design graph: unbound ports,
  dangling channels, duplicate explicit names, multi-driver channels,
  unsynchronized clock-domain crossings, and channel-cycle (potential
  deadlock) detection.

Nothing here runs on the simulation hot path: registration happens at
construction time and elaboration is a single pre-run walk.

Usage::

    from repro.design import elaborate, lint

    sim = Simulator()
    ... build the design ...
    graph = elaborate(sim)
    print(graph.tree())
    for finding in lint(sim):
        print(finding)

From the command line, ``python -m repro inspect <experiment>`` prints
the hierarchy tree and ``python -m repro lint <experiment>`` runs every
rule (see ``docs/DESIGN_GRAPH.md``).
"""

from .hierarchy import (Hierarchy, Instance, component_scope, current_scope,
                        design_path)
from .elaborate import ChannelRecord, DesignGraph, PortRecord, elaborate
from .lint import LINT_RULES, LintFinding, format_findings, lint, lint_graph
from .lower import ChannelNode, NodeSchedule, ThreadNode, lower

__all__ = [
    "Hierarchy",
    "Instance",
    "component_scope",
    "current_scope",
    "design_path",
    "DesignGraph",
    "ChannelRecord",
    "PortRecord",
    "elaborate",
    "lower",
    "NodeSchedule",
    "ChannelNode",
    "ThreadNode",
    "LintFinding",
    "LINT_RULES",
    "lint",
    "lint_graph",
    "format_findings",
]
