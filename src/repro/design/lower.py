"""Lowering: compile a :class:`DesignGraph` into a static node schedule.

This is the front half of the compiled simulation backend
(``docs/COMPILED_BACKEND.md``).  Elaboration already produced an
explicit graph of the design — instances, channel endpoints, clock
domains.  Lowering re-expresses that graph as the *event/dataflow graph
the dispatch loop executes*:

* **nodes** — the periodic clock edge, one node per channel core
  (its per-cycle ``_tick``), and one node per kernel thread;
* **edges** — data/handshake dependencies: producer thread → channel
  (push side) and channel → consumer thread (pop side), taken from the
  elaborated endpoint sets;
* **schedule** — the static per-edge dispatch order.  It mirrors the
  threaded kernel exactly: the clock edge fires, then every channel
  core ticks in registration order, then threads resume in wakeup
  order.  The compiled engine (:mod:`repro.compile.engine`) executes
  this order with idle nodes elided.

Channel nodes are classified **managed** (a
:class:`~repro.connections.channel.FastChannel` whose tick the engine
may skip while provably idle) or **unmanaged** (any other per-edge
callback — e.g. an RTL adapter channel — which the engine must run
every cycle).  Thread nodes record the gate-based handshake edges used
for parking, so ``schedule.describe()`` shows exactly which
dependencies wake which node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .elaborate import DesignGraph, elaborate

__all__ = ["ChannelNode", "ThreadNode", "NodeSchedule", "lower"]


@dataclass
class ChannelNode:
    """One channel core in the static schedule (its per-cycle tick)."""

    channel: Any
    path: str
    kind: str
    managed: bool                 # tick elidable while provably idle
    consumers: List[str] = field(default_factory=list)  # thread paths woken


@dataclass
class ThreadNode:
    """One kernel thread in the static schedule."""

    thread: Any
    path: str
    parkable: bool                # owns a Gate (idle iterations elidable)


@dataclass
class NodeSchedule:
    """The static event/dataflow graph a compiled run executes.

    ``channels`` is in clock-callback registration order (the tick
    phase's dispatch order); ``threads`` is in registration order (the
    initial wakeup-bucket order).  ``unmanaged_callbacks`` are per-edge
    callbacks the engine runs unconditionally every cycle.
    """

    clock: Any
    channels: List[ChannelNode]
    threads: List[ThreadNode]
    unmanaged_callbacks: List[Callable]
    edges: List[tuple]            # (src node path, dst node path, kind)
    callback_count: int           # len(clock._callbacks) at lowering time

    @property
    def managed_channels(self) -> List[Any]:
        return [node.channel for node in self.channels if node.managed]

    def stats(self) -> dict:
        return {
            "clock": self.clock.name,
            "channel_nodes": len(self.channels),
            "managed": sum(1 for n in self.channels if n.managed),
            "unmanaged_callbacks": len(self.unmanaged_callbacks),
            "thread_nodes": len(self.threads),
            "parkable": sum(1 for n in self.threads if n.parkable),
            "edges": len(self.edges),
        }

    def describe(self, *, max_rows: Optional[int] = None) -> str:
        """Human-readable schedule dump (``docs/COMPILED_BACKEND.md``)."""
        s = self.stats()
        lines = [
            f"clock {s['clock']}: period {self.clock.period}",
            f"phase 1  edge      1 clock node",
            f"phase 2  ticks     {s['channel_nodes']} channel nodes "
            f"({s['managed']} managed, "
            f"{s['unmanaged_callbacks']} unmanaged callbacks)",
            f"phase 3  threads   {s['thread_nodes']} thread nodes "
            f"({s['parkable']} parkable)",
            f"handshake edges    {s['edges']}",
        ]
        rows = self.edges if max_rows is None else self.edges[:max_rows]
        for src, dst, kind in rows:
            lines.append(f"  {src} -> {dst}  [{kind}]")
        if max_rows is not None and len(self.edges) > max_rows:
            lines.append(f"  ... {len(self.edges) - max_rows} more")
        return "\n".join(lines)


def _thread_paths(graph: DesignGraph) -> dict:
    """Map each registered kernel thread to its hierarchical path."""
    paths: dict = {}
    for inst in graph.instances:
        for thread in inst.threads:
            paths[id(thread)] = inst.join(getattr(thread, "name", "thread"))
    return paths


def lower(sim, graph: Optional[DesignGraph] = None) -> NodeSchedule:
    """Lower an elaborated design to its static node schedule.

    Requires a design with exactly one fast-lane (periodic, generator-
    free) clock — the compiled backend's structural precondition; the
    capability check in :mod:`repro.compile.capability` reports richer
    reasons for the general case.
    """
    from ..connections.channel import FastChannel

    if len(sim._fast_clocks) != 1:
        raise ValueError(
            f"lowering needs exactly one fast-lane clock, design has "
            f"{len(sim._fast_clocks)}")
    clock = sim._fast_clocks[0]
    if graph is None:
        graph = elaborate(sim)
    thread_paths = _thread_paths(graph)

    # Channel records by object identity, for callback classification.
    records = {id(rec.channel): rec for rec in graph.channels}

    channels: List[ChannelNode] = []
    unmanaged: List[Callable] = []
    for cb in clock._callbacks:
        owner = getattr(cb, "__self__", None)
        if isinstance(owner, FastChannel) and cb.__name__ == "_tick":
            rec = records.get(id(owner))
            path = rec.path if rec is not None else owner.path
            consumers = ([p.owner.path for p in rec.consumers]
                         if rec is not None else [])
            channels.append(ChannelNode(channel=owner, path=path,
                                        kind=owner.kind, managed=True,
                                        consumers=consumers))
        else:
            unmanaged.append(cb)
            name = getattr(owner, "name", None) or getattr(
                cb, "__name__", repr(cb))
            channels.append(ChannelNode(channel=owner, path=str(name),
                                        kind=type(owner).__name__
                                        if owner is not None else "callback",
                                        managed=False))

    threads: List[ThreadNode] = []
    for thread in sim._threads:
        path = thread_paths.get(id(thread), thread.name)
        owner = getattr(thread.gen, "gi_frame", None)
        parkable = False
        if owner is not None and owner.f_locals:
            inst = owner.f_locals.get("self")
            parkable = getattr(inst, "_gate", None) is not None
        threads.append(ThreadNode(thread=thread, path=path,
                                  parkable=parkable))

    edges: List[tuple] = []
    for rec in graph.channels:
        for src in rec.producers:
            edges.append((src.owner.path, rec.path, "push"))
        for dst in rec.consumers:
            edges.append((rec.path, dst.owner.path, "pop"))

    return NodeSchedule(clock=clock, channels=channels, threads=threads,
                        unmanaged_callbacks=unmanaged, edges=edges,
                        callback_count=len(clock._callbacks))
