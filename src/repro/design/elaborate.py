"""Elaboration: compile the constructed hierarchy into a design graph.

Elaboration is a **one-time, pre-run pass** (the LightningSimV2 move:
build an explicit graph first, then analyze/simulate against it).  It
walks a :class:`~repro.design.hierarchy.Hierarchy` and resolves:

* every registered port to its bound channel (**endpoints**),
* every channel to its producer/consumer port sets,
* every port and channel to a **clock domain** (the owning instance's
  clock, inherited down the tree),

yielding a :class:`DesignGraph` the lint passes (and ``python -m repro
inspect``) query.  The graph holds live object references — it is a
view, not a copy — so it must be (re)built after construction completes
and before conclusions are drawn from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .hierarchy import Hierarchy, Instance

__all__ = ["PortRecord", "ChannelRecord", "DesignGraph", "elaborate"]


@dataclass
class PortRecord:
    """One registered In/Out terminal, resolved against the hierarchy."""

    port: Any
    owner: Instance
    name: str
    direction: str               # "in" | "out"
    optional: bool               # boundary ports that may stay unbound
    channel: Any                 # bound channel-like object or None
    clock: Any                   # owning instance's effective clock domain

    @property
    def path(self) -> str:
        return self.owner.join(self.name)


@dataclass
class ChannelRecord:
    """One channel-like object with its resolved endpoints."""

    channel: Any
    owner: Instance
    name: str
    kind: str
    capacity: Optional[int]
    clock: Any                   # the clock the channel ticks on (or None)
    cdc_safe: bool               # mediates clock-domain crossings by design
    producers: List[PortRecord] = field(default_factory=list)
    consumers: List[PortRecord] = field(default_factory=list)

    @property
    def path(self) -> str:
        # A component that is itself a channel (GALS link) shares its
        # instance name, so owner.join() already yields its full path.
        return self.owner.join(self.name)


@dataclass
class DesignGraph:
    """The queryable result of one elaboration pass."""

    hierarchy: Hierarchy
    instances: List[Instance] = field(default_factory=list)
    channels: List[ChannelRecord] = field(default_factory=list)
    ports: List[PortRecord] = field(default_factory=list)
    clocks: List[Any] = field(default_factory=list)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def channel(self, path: str) -> ChannelRecord:
        for rec in self.channels:
            if rec.path == path:
                return rec
        raise KeyError(f"no channel at path {path!r}")

    def instance(self, path: str) -> Instance:
        for inst in self.instances:
            if inst.path == path:
                return inst
        raise KeyError(f"no instance at path {path!r}")

    def crossings(self) -> List[ChannelRecord]:
        """Channels whose endpoints span more than one clock domain."""
        out = []
        for rec in self.channels:
            domains = {id(p.clock) for p in rec.producers + rec.consumers
                       if p.clock is not None}
            if rec.clock is not None:
                domains.add(id(rec.clock))
            if len(domains) > 1:
                out.append(rec)
        return out

    def instance_edges(self) -> List[tuple]:
        """``(producer_instance, consumer_instance, channel)`` per flow.

        The structural dataflow graph channel-cycle lint runs on: one
        edge for every (producer port, consumer port) pair of every
        channel.
        """
        edges = []
        for rec in self.channels:
            for src in rec.producers:
                for dst in rec.consumers:
                    edges.append((src.owner, dst.owner, rec))
        return edges

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Headline counts as a plain dict (JSON-friendly)."""
        n_threads = sum(len(i.threads) for i in self.instances)
        n_signals = sum(len(i.signals) for i in self.instances)
        bound = sum(1 for p in self.ports if p.channel is not None)
        return {
            "instances": len(self.instances),
            "channels": len(self.channels),
            "ports": len(self.ports),
            "ports_bound": bound,
            "threads": n_threads,
            "clocks": len(self.clocks),
            "signals": n_signals,
            "crossings": len(self.crossings()),
        }

    def tree(self, *, max_depth: Optional[int] = None,
             channels: bool = True) -> str:
        """Render the hierarchy as an indented tree (``inspect`` output)."""
        lines: List[str] = []
        chan_by_owner: Dict[int, List[ChannelRecord]] = {}
        for rec in self.channels:
            chan_by_owner.setdefault(id(rec.owner), []).append(rec)

        def label(inst: Instance) -> str:
            bits = [f"{inst.name or 'design'}  ({inst.kind})"]
            if inst.clock is not None:
                bits.append(f"@{inst.clock.name}")
            counts = []
            if inst.ports:
                counts.append(f"{len(inst.ports)}p")
            if inst.threads:
                counts.append(f"{len(inst.threads)}t")
            if inst.signals:
                counts.append(f"{len(inst.signals)}s")
            if counts:
                bits.append(f"[{'/'.join(counts)}]")
            if inst.attrs.get("deadlock_free"):
                bits.append(f"(deadlock-free: {inst.attrs['deadlock_free']})")
            return " ".join(bits)

        def emit(inst: Instance, prefix: str, depth: int) -> None:
            rows: List[tuple] = [("inst", c) for c in inst.children.values()]
            if channels:
                # Channel-likes that opened their own scope (GALS links)
                # render as child instances, not as channel rows.
                own = [r for r in chan_by_owner.get(id(inst), ())
                       if getattr(r.channel, "_design_instance", None)
                       not in inst.children.values()]
                rows += [("chan", r) for r in own]
            if max_depth is not None and depth >= max_depth:
                if rows:
                    lines.append(f"{prefix}└─ … {len(rows)} more")
                return
            for i, (what, row) in enumerate(rows):
                last = i == len(rows) - 1
                tee = "└─ " if last else "├─ "
                ext = "   " if last else "│  "
                if what == "inst":
                    lines.append(prefix + tee + label(row))
                    emit(row, prefix + ext, depth + 1)
                else:
                    cap = f"/{row.capacity}" if row.capacity is not None else ""
                    clk = f" @{row.clock.name}" if row.clock is not None else ""
                    lines.append(f"{prefix}{tee}{row.name}  "
                                 f"<{row.kind}{cap}>{clk}")
        lines.append(label(self.hierarchy.root))
        emit(self.hierarchy.root, "", 0)
        s = self.stats()
        lines.append("")
        lines.append(
            f"{s['instances']} instances, {s['channels']} channels, "
            f"{s['ports_bound']}/{s['ports']} ports bound, "
            f"{s['threads']} threads, {s['clocks']} clock domains"
            + (f", {s['crossings']} clock-domain crossings"
               if s["crossings"] else ""))
        return "\n".join(lines)


def elaborate(target) -> DesignGraph:
    """Build the :class:`DesignGraph` of a simulator (or hierarchy).

    Accepts a :class:`~repro.kernel.simulator.Simulator` (uses
    ``sim.design``) or a :class:`Hierarchy` directly.
    """
    hierarchy: Hierarchy = getattr(target, "design", target)
    graph = DesignGraph(hierarchy=hierarchy)

    chan_map: Dict[int, ChannelRecord] = {}
    for inst in hierarchy.root.walk():
        graph.instances.append(inst)
        graph.clocks.extend(inst.clocks)
        for chan in inst.channels:
            # A channel that opened its own scope is both an Instance
            # and a channel; its record keeps the instance's name.
            sub = getattr(chan, "_design_instance", None)
            if sub is not None and sub.parent is inst:
                owner, name = inst, sub.name
            else:
                owner, name = inst, getattr(chan, "name", type(chan).__name__)
            rec = ChannelRecord(
                channel=chan,
                owner=owner,
                name=name,
                kind=getattr(chan, "kind", type(chan).__name__),
                capacity=getattr(chan, "capacity", None),
                clock=getattr(chan, "clock", None),
                cdc_safe=id(chan) in hierarchy.cdc_safe,
            )
            chan_map[id(chan)] = rec
            graph.channels.append(rec)

    for inst in graph.instances:
        for port in inst.ports:
            direction = "out" if hasattr(port, "push_nb") else "in"
            record = PortRecord(
                port=port,
                owner=inst,
                name=port.name,
                direction=direction,
                optional=getattr(port, "optional", False),
                channel=port._channel,
                clock=inst.effective_clock,
            )
            graph.ports.append(record)
            if record.channel is not None:
                rec = chan_map.get(id(record.channel))
                if rec is not None:
                    (rec.producers if direction == "out"
                     else rec.consumers).append(record)
    return graph
