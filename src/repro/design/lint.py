"""Static lint over the elaborated design graph.

Each rule is a pure function ``rule(graph) -> list[LintFinding]`` run
against the :class:`~repro.design.elaborate.DesignGraph` — no
simulation, no side effects.  The bundled experiments must all lint
clean (the ``lint-designs`` CI job enforces it), so every rule carries
an explicit escape hatch for the structural patterns that are *correct*
but would otherwise look suspicious:

``unbound-port``
    A port that never got ``bind()``-ed is a wiring bug — unless it was
    declared ``optional=True`` (router boundary ports on mesh edges).
``dangling-channel``
    A channel with endpoints on exactly one side never moves data.
    Channels with *zero* registered endpoints are testbench-driven
    (pushed/popped directly) and are skipped.
``duplicate-name``
    Two components *explicitly* given the same name in one scope.  The
    hierarchy already deduped them (``_1`` suffix) so nothing merged,
    but the intent was almost certainly a copy-paste bug.  Default
    constructor names dedup silently and never report.
``multi-driver``
    More than one Out port pushing into one channel: last-writer-wins
    races in simulation, multi-driver nets in RTL.
``unsynchronized-crossing``
    A channel whose endpoints sit in different clock domains without a
    CDC-safe mediator (GALS link / bisynchronous FIFO).  Endpoints with
    unknown domains are skipped.
``channel-cycle``
    A cycle in the instance-level dataflow graph is a potential
    protocol deadlock (every hop blocked on the next).  Instances
    annotated ``attrs["deadlock_free"]=<reason>`` — e.g. routers whose
    XY dimension-order routing is deadlock-free by construction — are
    removed, with their subtrees, before the SCC search; so is the root
    instance, where unrelated testbench drivers and sinks land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .elaborate import DesignGraph, elaborate
from .hierarchy import Instance

__all__ = ["LintFinding", "LINT_RULES", "lint", "lint_graph",
           "format_findings"]


@dataclass
class LintFinding:
    """One lint diagnostic, anchored to a hierarchical path."""

    rule: str
    path: str
    message: str

    def __str__(self) -> str:
        where = self.path or "<root>"
        return f"[{self.rule}] {where}: {self.message}"


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------

def _rule_unbound_port(graph: DesignGraph) -> List[LintFinding]:
    findings = []
    for rec in graph.ports:
        if rec.channel is None and not rec.optional:
            findings.append(LintFinding(
                "unbound-port", rec.path,
                f"{rec.direction}-port was never bound to a channel"))
    return findings


def _rule_dangling_channel(graph: DesignGraph) -> List[LintFinding]:
    findings = []
    for rec in graph.channels:
        n_prod, n_cons = len(rec.producers), len(rec.consumers)
        if n_prod == 0 and n_cons == 0:
            continue  # testbench-driven: pushed/popped without ports
        if n_prod == 0:
            findings.append(LintFinding(
                "dangling-channel", rec.path,
                f"{n_cons} consumer port(s) but no producer — "
                "data can never arrive"))
        elif n_cons == 0:
            findings.append(LintFinding(
                "dangling-channel", rec.path,
                f"{n_prod} producer port(s) but no consumer — "
                "data can never drain"))
    return findings


def _rule_duplicate_name(graph: DesignGraph) -> List[LintFinding]:
    findings = []
    for scope_path, requested, assigned, category in \
            graph.hierarchy.collisions:
        where = f"{scope_path}.{requested}" if scope_path else requested
        findings.append(LintFinding(
            "duplicate-name", where,
            f"explicit {category} name {requested!r} already taken in "
            f"scope; auto-renamed to {assigned!r}"))
    return findings


def _rule_multi_driver(graph: DesignGraph) -> List[LintFinding]:
    findings = []
    for rec in graph.channels:
        if len(rec.producers) > 1:
            drivers = ", ".join(p.path for p in rec.producers)
            findings.append(LintFinding(
                "multi-driver", rec.path,
                f"{len(rec.producers)} producer ports drive one "
                f"channel ({drivers})"))
    return findings


def _rule_unsynchronized_crossing(graph: DesignGraph) -> List[LintFinding]:
    findings = []
    for rec in graph.crossings():
        if rec.cdc_safe:
            continue
        domains = sorted({p.clock.name for p in rec.producers + rec.consumers
                          if p.clock is not None}
                         | ({rec.clock.name} if rec.clock is not None
                            else set()))
        findings.append(LintFinding(
            "unsynchronized-crossing", rec.path,
            f"endpoints span clock domains {domains} without a GALS "
            "link or bisynchronous FIFO"))
    return findings


def _waived(inst: Instance) -> bool:
    node: Instance | None = inst
    while node is not None:
        if node.attrs.get("deadlock_free"):
            return True
        node = node.parent
    return False


def _rule_channel_cycle(graph: DesignGraph) -> List[LintFinding]:
    # Instance-level dataflow graph, minus deadlock-free-waived subtrees.
    # The root instance is also excluded: it is the compatibility scope
    # where unrelated testbench drivers and sinks land, so folding them
    # into one node would fabricate cycles (src -> dut -> sink reads as
    # root -> dut -> root).
    root = graph.hierarchy.root
    edges: Dict[int, set] = {}
    nodes: Dict[int, Instance] = {}
    for src, dst, _rec in graph.instance_edges():
        if src is dst or src is root or dst is root:
            continue
        if _waived(src) or _waived(dst):
            continue
        nodes[id(src)] = src
        nodes[id(dst)] = dst
        edges.setdefault(id(src), set()).add(id(dst))

    # Tarjan SCC, iterative (designs can be deep).
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: set = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    def strongconnect(v: int) -> None:
        work = [(v, iter(edges.get(v, ())))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(edges.get(w, ()))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in nodes:
        if v not in index:
            strongconnect(v)

    findings = []
    for scc in sccs:
        cyclic = len(scc) > 1 or (scc[0] in edges.get(scc[0], ()))
        if not cyclic:
            continue
        members = sorted(nodes[v].path or "<root>" for v in scc)
        findings.append(LintFinding(
            "channel-cycle", members[0],
            "potential deadlock: channel cycle through instances "
            f"{{{', '.join(members)}}} (annotate deadlock_free=<reason> "
            "if the protocol guarantees progress)"))
    return findings


#: Ordered registry of every lint rule, keyed by rule name.
LINT_RULES: Dict[str, Callable[[DesignGraph], List[LintFinding]]] = {
    "unbound-port": _rule_unbound_port,
    "dangling-channel": _rule_dangling_channel,
    "duplicate-name": _rule_duplicate_name,
    "multi-driver": _rule_multi_driver,
    "unsynchronized-crossing": _rule_unsynchronized_crossing,
    "channel-cycle": _rule_channel_cycle,
}


def lint_graph(graph: DesignGraph, *, rules=None) -> List[LintFinding]:
    """Run lint rules over an already-elaborated graph."""
    selected = LINT_RULES if rules is None else {
        name: LINT_RULES[name] for name in rules}
    findings: List[LintFinding] = []
    for rule in selected.values():
        findings.extend(rule(graph))
    return findings


def lint(target, *, rules=None) -> List[LintFinding]:
    """Elaborate ``target`` (simulator or hierarchy) and lint it."""
    return lint_graph(elaborate(target), rules=rules)


def format_findings(findings: List[LintFinding]) -> str:
    """Human-readable lint report (the ``python -m repro lint`` output)."""
    if not findings:
        return "clean: 0 findings"
    lines = [str(f) for f in findings]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{n}× {rule}" for rule, n in sorted(by_rule.items()))
    lines.append(f"{len(findings)} finding(s): {summary}")
    return "\n".join(lines)
