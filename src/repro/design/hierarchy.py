"""The design hierarchy: parent-scoped instances with stable dotted paths.

Every :class:`~repro.kernel.simulator.Simulator` owns a
:class:`Hierarchy` (``sim.design``).  Component constructors open a
scope::

    with sim.design.scope("pe3", kind="ProcessingElement", clock=clk):
        buf = Buffer(sim, clk, name="weight_buf")   # path: pe3.weight_buf

and everything registered while the scope is active — channels, ports,
threads, signals, child scopes — becomes part of that instance.  The
scope stack is global (components don't thread a parent argument
around), but each registration lands in the hierarchy of the simulator
that owns the object, so independent simulators never share state.

Compatibility: objects built with the pre-hierarchy call style (no
scope anywhere on the stack) register into the hierarchy's root
instance.  Their paths equal their names, so nothing changes for
existing code or tests.

Naming discipline (the telemetry-key guarantee):

* names are **unique within a scope**.  A collision is resolved by
  suffixing (``chan``, ``chan_1``, ``chan_2`` …), so two channels can
  never silently merge their stats under one telemetry/VCD key;
* default names (the ones a constructor picks when the caller passed
  none) dedup silently;
* *explicit* names that collide are deduped too, but recorded — the
  ``duplicate-name`` lint rule reports them, because two components
  explicitly given the same name is a design bug, not a convenience.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

__all__ = ["Hierarchy", "Instance", "component_scope", "current_scope",
           "design_path"]

#: The global scope stack.  Innermost scope last.  Construction-time
#: only — never consulted on the simulation hot path.
_SCOPE_STACK: List["Instance"] = []


def current_scope() -> Optional["Instance"]:
    """The innermost open scope, or ``None`` outside any scope."""
    return _SCOPE_STACK[-1] if _SCOPE_STACK else None


def design_path(obj: Any) -> str:
    """Best-effort hierarchical path of a design object.

    Prefers the object's registered instance path, then a ``path``
    attribute, then its plain ``name``.
    """
    inst = getattr(obj, "_design_instance", None)
    if inst is not None:
        return inst.path
    path = getattr(obj, "path", None)
    if path:
        return path
    return getattr(obj, "name", type(obj).__name__)


@contextmanager
def component_scope(sim, name: str, *, kind: str = "module", obj: Any = None,
                    clock: Any = None, attrs: Optional[dict] = None,
                    default_name: bool = False) -> Iterator[Optional["Instance"]]:
    """Open a design scope on ``sim``'s hierarchy — or no-op without one.

    The standard constructor idiom::

        with component_scope(sim, name, kind="Router", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            ... build ports/channels/threads ...

    Yields the claimed :class:`Instance` (``None`` when ``sim`` has no
    hierarchy, e.g. a test double), so components work unchanged against
    bare simulator stand-ins.
    """
    design = getattr(sim, "design", None)
    if design is None:
        yield None
        return
    with design.scope(name, kind=kind, obj=obj, clock=clock, attrs=attrs,
                      default_name=default_name) as inst:
        yield inst


class Instance:
    """One node of the design hierarchy.

    Holds the sub-instances and the resources (channels, ports, threads,
    clocks, signals) registered while its scope was active.  ``clock``
    is the instance's clock domain (inherited by descendants that don't
    declare their own); ``attrs`` carries structural annotations the
    lint passes understand — most importantly ``deadlock_free=<reason>``,
    which waives the instance from channel-cycle detection.
    """

    def __init__(self, hierarchy: "Hierarchy", name: str,
                 parent: Optional["Instance"], *, kind: str = "module",
                 obj: Any = None, clock: Any = None,
                 attrs: Optional[dict] = None):
        self.hierarchy = hierarchy
        self.name = name
        self.parent = parent
        self.kind = kind
        self.obj = obj
        self.clock = clock
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: dict[str, Instance] = {}
        self.channels: list = []     # channel-like objects (FastChannel, GalsLink, ...)
        self.ports: list = []        # In/Out terminals
        self.threads: list = []      # kernel Thread objects
        self.clocks: list = []       # kernel Clock objects
        self.signals: list = []      # kernel Signal objects
        self._taken: set[str] = set()
        if parent is None:
            self.path = ""
        elif parent.path:
            self.path = f"{parent.path}.{name}"
        else:
            self.path = name

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def claim(self, requested: str, *, default: bool = False,
              category: str = "object") -> str:
        """Reserve a unique name in this scope's namespace.

        Returns ``requested`` unchanged when free, otherwise the first
        free ``requested_<n>``.  Non-default collisions are recorded for
        the ``duplicate-name`` lint rule.
        """
        name = requested
        if name in self._taken:
            n = 1
            while f"{requested}_{n}" in self._taken:
                n += 1
            name = f"{requested}_{n}"
            if not default:
                self.hierarchy.collisions.append(
                    (self.path, requested, name, category))
        self._taken.add(name)
        return name

    def join(self, name: str) -> str:
        """Dotted path of a leaf named ``name`` under this instance."""
        return f"{self.path}.{name}" if self.path else name

    @property
    def effective_clock(self) -> Any:
        """This instance's clock domain, inherited from ancestors."""
        inst: Optional[Instance] = self
        while inst is not None:
            if inst.clock is not None:
                return inst.clock
            inst = inst.parent
        return None

    def walk(self) -> Iterator["Instance"]:
        """Depth-first iteration over this instance and its descendants."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Instance({self.path or '<root>'!r}, kind={self.kind}, "
                f"children={len(self.children)})")


class Hierarchy:
    """Per-simulator registry of the design under construction.

    Created by ``Simulator.__init__`` as ``sim.design``.  All methods
    are construction-time only; the simulation hot path never touches
    this object.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.root = Instance(self, "", None, kind="root")
        #: ``(scope_path, requested, assigned, category)`` per non-default
        #: name collision — the duplicate-name lint rule's evidence.
        self.collisions: list[tuple[str, str, str, str]] = []
        #: Channel-likes that mediate clock-domain crossings by design
        #: (GALS links, bisynchronous FIFOs), by ``id``.
        self.cdc_safe: set[int] = set()

    # ------------------------------------------------------------------
    # scoping
    # ------------------------------------------------------------------
    @property
    def current(self) -> Instance:
        """Innermost open scope belonging to *this* hierarchy, else root."""
        for inst in reversed(_SCOPE_STACK):
            if inst.hierarchy is self:
                return inst
        return self.root

    @contextmanager
    def scope(self, name: str, *, kind: str = "module", obj: Any = None,
              clock: Any = None, attrs: Optional[dict] = None,
              default_name: bool = False) -> Iterator[Instance]:
        """Open a child instance of the current scope and enter it."""
        parent = self.current
        claimed = parent.claim(name, default=default_name, category="instance")
        inst = Instance(self, claimed, parent, kind=kind, obj=obj,
                        clock=clock, attrs=attrs)
        parent.children[claimed] = inst
        if obj is not None:
            try:
                obj._design_instance = inst
            except (AttributeError, TypeError):
                pass  # __slots__ without the attribute: path via hierarchy only
        _SCOPE_STACK.append(inst)
        try:
            yield inst
        finally:
            _SCOPE_STACK.pop()

    @contextmanager
    def enter(self, inst: Instance) -> Iterator[Instance]:
        """Re-enter an existing instance's scope (post-construction wiring).

        Lets components that wire up after ``__init__`` — e.g. an AXI
        fabric's ``connect_master`` — register late-created ports under
        their own instance instead of whichever scope the caller holds.
        """
        if inst.hierarchy is not self:
            raise ValueError("instance belongs to a different hierarchy")
        _SCOPE_STACK.append(inst)
        try:
            yield inst
        finally:
            _SCOPE_STACK.pop()

    # ------------------------------------------------------------------
    # registration (called from constructors across the library)
    # ------------------------------------------------------------------
    def register_channel(self, channel, requested: str, *,
                         default: bool = False, cdc_safe: bool = False,
                         instance: Optional[Instance] = None) -> str:
        """Register a channel-like object; returns its final (deduped) name.

        ``instance`` lets a component that is *itself* a channel (e.g. a
        GALS link, which opens its own scope for internal buffers) share
        its already-claimed instance name instead of claiming a second
        one in the parent namespace.
        """
        if instance is not None:
            owner, name = instance.parent or self.root, instance.name
        else:
            owner = self.current
            name = owner.claim(requested, default=default, category="channel")
        owner.channels.append(channel)
        if cdc_safe:
            self.cdc_safe.add(id(channel))
        try:
            channel._design_owner = owner
        except (AttributeError, TypeError):
            pass  # slotted channels store the owner in their own slot
        return name

    def register_thread(self, thread, requested: str) -> None:
        """Record a kernel thread; hierarchical threads get path names."""
        owner = self.current
        name = owner.claim(requested, default=(requested == "thread"),
                           category="thread")
        owner.threads.append(thread)
        if owner is not self.root:
            # Hierarchical rename: telemetry per-thread profiles and error
            # messages report the full dotted path.  Root-scope threads
            # keep their caller-chosen names (compatibility).
            thread.name = owner.join(name)

    def register_clock(self, clock) -> None:
        self.current.clocks.append(clock)

    def register_signal(self, signal) -> Optional[Instance]:
        """Record a signal under the ambient scope (if any).

        Signals built outside any scope are deliberately *not* retained:
        testbench-local signals stay collectable and keep their flat
        names.
        """
        scope = current_scope()
        if scope is None or scope.hierarchy is not self:
            return None
        scope.signals.append(signal)
        return scope

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = sum(1 for _ in self.root.walk())
        return f"Hierarchy(instances={n})"
