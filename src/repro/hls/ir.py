"""Dataflow-graph IR for the HLS engine.

The HLS flow of the paper (Catapult) compiles loosely-timed C++ into RTL
via loop unrolling, scheduling, and binding.  This IR is the engine's
internal representation: a DAG of primitive hardware operations produced
by the design builders in :mod:`repro.hls.designs` (which play the role
of the C++ frontend after full loop unrolling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Op", "DataflowGraph", "IRError", "OP_KINDS"]

#: Primitive operation kinds understood by the technology model.
OP_KINDS = frozenset({
    "input",      # module input (no area/delay)
    "const",      # constant (no area/delay)
    "output",     # module output marker
    "add", "sub", # carry-lookahead adders
    "mul",        # array multiplier
    "mux2",       # 2:1 multiplexer (select is inputs[0])
    "eq",         # equality comparator
    "lt",         # magnitude comparator
    "and", "or", "xor", "not",
    "decode",     # binary -> one-hot decoder
    "shift",      # barrel shifter
    "reg",        # explicit register (rarely needed; scheduler adds its own)
})


class IRError(ValueError):
    """Raised for malformed dataflow graphs."""


@dataclass
class Op:
    """One primitive operation node."""

    name: str
    kind: str
    width: int
    inputs: List[str] = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise IRError(f"unknown op kind {self.kind!r}")
        if self.width < 1:
            raise IRError(f"op {self.name!r}: width must be >= 1")


class DataflowGraph:
    """A DAG of :class:`Op` nodes.

    Build with :meth:`add`; the graph validates references and acyclicity
    lazily via :meth:`topo_order`.
    """

    def __init__(self, name: str = "design"):
        self.name = name
        self.ops: Dict[str, Op] = {}
        self._topo: Optional[List[str]] = None

    def add(self, name: str, kind: str, width: int,
            inputs: Iterable[str] = ()) -> str:
        """Add an op; returns its name for chaining."""
        if name in self.ops:
            raise IRError(f"duplicate op name {name!r}")
        self.ops[name] = Op(name, kind, width, list(inputs))
        self._topo = None
        return name

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def topo_order(self) -> List[str]:
        """Topological order; raises :class:`IRError` on cycles."""
        if self._topo is not None:
            return self._topo
        indeg = {name: 0 for name in self.ops}
        consumers: Dict[str, List[str]] = {name: [] for name in self.ops}
        for op in self.ops.values():
            for src in op.inputs:
                if src not in self.ops:
                    raise IRError(f"op {op.name!r} references unknown {src!r}")
                indeg[op.name] += 1
                consumers[src].append(op.name)
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for c in consumers[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.ops):
            raise IRError(f"graph {self.name!r} contains a cycle")
        self._topo = order
        return order

    def consumers(self) -> Dict[str, List[str]]:
        """Map from op name to the names of ops that read it."""
        out: Dict[str, List[str]] = {name: [] for name in self.ops}
        for op in self.ops.values():
            for src in op.inputs:
                out[src].append(op.name)
        return out

    def count(self, kind: str) -> int:
        """Number of ops of a given kind."""
        return sum(1 for op in self.ops.values() if op.kind == kind)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataflowGraph({self.name!r}, ops={len(self.ops)})"
