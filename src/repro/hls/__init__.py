"""A small high-level-synthesis engine.

The reproduction's stand-in for Catapult HLS: design builders produce a
fully-unrolled dataflow graph (:mod:`.ir`, :mod:`.designs`), the
scheduler maps it to cycles under a clock-period and resource constraint
(:mod:`.schedule`), and binding/area estimation (:mod:`.area`) yields a
NAND2-equivalent report — enough machinery to reproduce the paper's QoR
experiments (src-loop vs dst-loop crossbar, HLS vs hand RTL).

Quick use::

    from repro.hls import crossbar_dst_loop_design, schedule, estimate_area

    g = crossbar_dst_loop_design(lanes=32, width=32)
    report = estimate_area(schedule(g, clock_period_ps=909.0))
    print(report.to_text())
"""

from .area import AreaReport, estimate_area
from .power import PowerReport, estimate_power
from .rtl_gen import emit_verilog
from .designs import (
    adder_tree_design,
    alu_design,
    crossbar_dst_loop_design,
    crossbar_src_loop_design,
    fir_design,
    hand_rtl_area,
    vector_mac_design,
)
from .ir import DataflowGraph, IRError, Op, OP_KINDS
from .schedule import Schedule, schedule
from .tech import DEFAULT_TECH, Tech

__all__ = [
    "DataflowGraph", "Op", "IRError", "OP_KINDS",
    "Tech", "DEFAULT_TECH",
    "Schedule", "schedule",
    "AreaReport", "estimate_area",
    "PowerReport", "estimate_power",
    "emit_verilog",
    "crossbar_dst_loop_design", "crossbar_src_loop_design",
    "vector_mac_design", "fir_design", "adder_tree_design", "alu_design",
    "hand_rtl_area",
]
