"""Technology model: per-operation area and delay.

Area is in NAND2-equivalent gates (the unit the paper reports
productivity in); delay is in picoseconds.  The numbers are first-
principles gate-level estimates for a 16 nm-class library (NAND2 delay
~15 ps loaded), not calibrated to any foundry — the benches compare
*relative* areas (src-loop vs dst-loop, HLS vs hand RTL, GALS overhead
vs partition size), which is also all the paper claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .ir import Op

__all__ = ["Tech", "DEFAULT_TECH"]


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


@dataclass(frozen=True)
class Tech:
    """Area/delay characterization of the primitive op library."""

    #: Delay of one loaded NAND2, in ps.
    gate_delay_ps: float = 15.0
    #: NAND2-equivalent area of one flip-flop, per bit.
    ff_area: float = 6.0
    #: Extra clock margin reserved by synthesis (setup + clk-q + skew), ps.
    sequencing_overhead_ps: float = 60.0

    # ------------------------------------------------------------------
    # per-op area in NAND2 equivalents
    # ------------------------------------------------------------------
    def area(self, op: Op) -> float:
        w = op.width
        kind = op.kind
        if kind in ("input", "const", "output"):
            return 0.0
        if kind in ("add", "sub"):
            # Carry-lookahead adder: ~12 gates/bit.
            return 12.0 * w
        if kind == "mul":
            # Array multiplier: ~5 gates per partial-product bit.
            return 5.0 * w * w
        if kind == "mux2":
            return 3.0 * w
        if kind == "eq":
            # XNOR per bit (2 gates) + AND reduction tree.
            return 2.0 * w + (w - 1)
        if kind == "lt":
            return 6.0 * w
        if kind in ("and", "or", "xor"):
            return 1.5 * w if kind == "xor" else 1.0 * w
        if kind == "not":
            return 0.5 * w
        if kind == "decode":
            # log2(w)-input AND per output line.
            return w * max(_log2ceil(w) - 1, 1)
        if kind == "shift":
            # Barrel shifter: log2(w) mux levels.
            return 3.0 * w * _log2ceil(w)
        if kind == "reg":
            return self.ff_area * w
        raise ValueError(f"no area model for op kind {kind!r}")

    # ------------------------------------------------------------------
    # per-op delay in ps
    # ------------------------------------------------------------------
    def delay(self, op: Op) -> float:
        w = op.width
        kind = op.kind
        g = self.gate_delay_ps
        if kind in ("input", "const", "output", "reg"):
            return 0.0
        if kind in ("add", "sub"):
            return g * (4 + 2 * _log2ceil(w))
        if kind == "mul":
            return g * (6 + 4 * _log2ceil(w))
        if kind == "mux2":
            return g * 2
        if kind == "eq":
            return g * (2 + _log2ceil(w))
        if kind == "lt":
            return g * (3 + _log2ceil(w))
        if kind in ("and", "or", "xor", "not"):
            return g * 1
        if kind == "decode":
            return g * 2
        if kind == "shift":
            return g * 2 * _log2ceil(w)
        raise ValueError(f"no delay model for op kind {kind!r}")

    def usable_period_ps(self, clock_period_ps: float) -> float:
        """Combinational budget per cycle after sequencing overhead."""
        budget = clock_period_ps - self.sequencing_overhead_ps
        if budget <= 0:
            raise ValueError(
                f"clock period {clock_period_ps} ps leaves no combinational budget"
            )
        return budget


DEFAULT_TECH = Tech()
