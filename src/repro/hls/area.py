"""Binding and area estimation for scheduled designs.

Turns a :class:`~repro.hls.schedule.Schedule` into an area report in
NAND2-equivalent gates:

* **functional units** — ops of one kind share hardware across cycles
  (classical binding); the FU count per kind is the schedule's peak
  per-cycle concurrency,
* **sharing muxes** — every op folded onto a shared FU adds operand
  multiplexers,
* **pipeline registers** — every dataflow edge crossing a cycle boundary
  costs flip-flops (a delay line when pipelined at II=1, a single
  holding register otherwise),
* **control** — a small FSM proportional to the schedule length.

The *relative* comparisons built on this model (src-loop vs dst-loop
crossbar, HLS vs hand RTL) are the paper's QoR experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .schedule import Schedule
from .tech import DEFAULT_TECH, Tech

__all__ = ["AreaReport", "estimate_area"]

#: Kinds that occupy no functional-unit hardware.
_FREE_KINDS = frozenset({"input", "const", "output"})

#: Kinds worth time-multiplexing onto shared functional units.  Cheap
#: glue (muxes, comparators, logic gates) is never shared — steering it
#: through sharing muxes would cost more than it saves, and real HLS
#: tools leave it spatial.
_SHAREABLE_KINDS = frozenset({"add", "sub", "mul", "shift", "lt"})


@dataclass(frozen=True)
class AreaReport:
    """NAND2-equivalent area breakdown of a scheduled design."""

    design: str
    fu_area: float
    mux_area: float
    reg_area: float
    ctrl_area: float
    latency: int
    critical_path_ps: float
    compile_seconds: float

    @property
    def total(self) -> float:
        return self.fu_area + self.mux_area + self.reg_area + self.ctrl_area

    def to_text(self) -> str:
        return (
            f"{self.design}: {self.total:,.0f} NAND2-eq "
            f"(FU {self.fu_area:,.0f}, mux {self.mux_area:,.0f}, "
            f"reg {self.reg_area:,.0f}, ctrl {self.ctrl_area:,.0f}), "
            f"latency {self.latency} cycles, "
            f"critical path {self.critical_path_ps:.0f} ps"
        )


def estimate_area(sched: Schedule, *, tech: Tech = DEFAULT_TECH,
                  share: bool = True, pipelined: bool = False) -> AreaReport:
    """Bind and estimate the area of a scheduled dataflow graph.

    ``share=True`` folds same-kind ops in different cycles onto common
    functional units (adding sharing muxes); ``share=False`` keeps every
    op spatial (the fully-parallel implementation).

    ``pipelined=True`` sizes boundary-crossing values as full delay
    lines, which is what initiation-interval-1 pipelining requires.
    """
    graph = sched.graph
    # --- functional units ------------------------------------------------
    fu_area = 0.0
    mux_area = 0.0
    if share:
        # Representative (max-width) FU per kind, times peak concurrency.
        kinds: Dict[str, list] = {}
        for op in graph.ops.values():
            if op.kind in _FREE_KINDS:
                continue
            if op.kind in _SHAREABLE_KINDS:
                kinds.setdefault(op.kind, []).append(op)
            else:
                fu_area += tech.area(op)  # glue stays spatial
        for kind, ops in kinds.items():
            fu_count = max(sched.concurrency(kind), 1)
            widest = max(ops, key=lambda o: o.width)
            fu_area += fu_count * tech.area(widest)
            folded = len(ops) - fu_count
            if folded > 0:
                # Each folded op steers its operands through a 2:1 mux
                # per operand onto the shared unit.
                n_operands = max((len(o.inputs) for o in ops), default=1)
                mux_area += folded * n_operands * 3.0 * widest.width
    else:
        for op in graph.ops.values():
            if op.kind not in _FREE_KINDS:
                fu_area += tech.area(op)

    # --- pipeline / holding registers -------------------------------------
    reg_area = 0.0
    consumers = graph.consumers()
    for name, op in graph.ops.items():
        users = consumers[name]
        if not users:
            continue
        if op.kind in ("input", "const") and not pipelined:
            # Module inputs are held stable by the caller; only an II=1
            # pipeline needs per-stage copies of them.
            continue
        my_cycle = sched.cycle.get(name, 0)
        last_use = max(sched.cycle[u] for u in users)
        span = last_use - my_cycle
        if span > 0:
            stages = span if pipelined else 1
            reg_area += stages * tech.ff_area * op.width

    # --- control ----------------------------------------------------------
    real_ops = sum(1 for op in graph.ops.values() if op.kind not in _FREE_KINDS)
    ctrl_area = 10.0 * sched.latency + 2.0 * real_ops if sched.latency > 1 else 0.0

    return AreaReport(
        design=graph.name,
        fu_area=fu_area,
        mux_area=mux_area,
        reg_area=reg_area,
        ctrl_area=ctrl_area,
        latency=sched.latency,
        critical_path_ps=sched.critical_path_ps,
        compile_seconds=sched.compile_seconds,
    )
