"""Power analysis (the "Power Analysis" stage of Figure 1).

A gate-level dynamic + leakage power model over scheduled designs:

* dynamic energy per op per activation, scaled by width (and width² for
  multipliers), from a 16 nm-class per-gate switching energy,
* register/clock power for every flip-flop the binder allocated,
* leakage proportional to total area,
* an activity factor models how often the datapath actually toggles.

Like the area model, absolute numbers are order-of-magnitude estimates;
the experiments only consume *relative* comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from .area import AreaReport, estimate_area
from .schedule import Schedule
from .tech import DEFAULT_TECH, Tech

__all__ = ["PowerReport", "estimate_power"]

#: Switching energy of one NAND2-equivalent gate at 0.8 V, 16 nm (femtojoule).
_GATE_ENERGY_FJ = 0.08
#: Clock-network energy per flip-flop bit per cycle (femtojoule).
_CLOCK_ENERGY_PER_FF_FJ = 0.25
#: Leakage per NAND2-equivalent gate (nanowatt).
_LEAKAGE_PER_GATE_NW = 1.5


@dataclass(frozen=True)
class PowerReport:
    """Estimated power of a scheduled design at a given clock."""

    design: str
    clock_ghz: float
    dynamic_mw: float
    clock_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.clock_mw + self.leakage_mw

    def to_text(self) -> str:
        return (f"{self.design}: {self.total_mw:.3f} mW @ "
                f"{self.clock_ghz:.2f} GHz (dyn {self.dynamic_mw:.3f}, "
                f"clk {self.clock_mw:.3f}, leak {self.leakage_mw:.3f})")


def estimate_power(sched: Schedule, *, tech: Tech = DEFAULT_TECH,
                   activity: float = 0.2,
                   area: AreaReport | None = None) -> PowerReport:
    """Estimate power for a scheduled design.

    ``activity`` is the datapath toggle probability per cycle (0.2 is a
    typical busy-datapath default).  Pass a precomputed ``area`` report
    to avoid re-binding.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError("activity must be in [0, 1]")
    if area is None:
        area = estimate_area(sched, tech=tech)
    clock_hz = 1e12 / sched.clock_period_ps

    # Dynamic: every op executes once per `latency` cycles (non-pipelined
    # iteration), switching capacitance proportional to its gate area.
    ops_energy_fj = 0.0
    for name in sched.cycle:
        op = sched.graph.ops[name]
        if op.kind in ("input", "const", "output"):
            continue
        ops_energy_fj += tech.area(op) * _GATE_ENERGY_FJ
    iterations_per_s = clock_hz / max(sched.latency, 1)
    dynamic_w = ops_energy_fj * 1e-15 * activity * iterations_per_s
    # Sharing muxes toggle with the datapath too.
    dynamic_w += area.mux_area * _GATE_ENERGY_FJ * 1e-15 * activity \
        * iterations_per_s

    # Clock network: every allocated FF bit is clocked every cycle.
    n_ff_bits = area.reg_area / tech.ff_area if tech.ff_area else 0.0
    clock_w = n_ff_bits * _CLOCK_ENERGY_PER_FF_FJ * 1e-15 * clock_hz

    leakage_w = area.total * _LEAKAGE_PER_GATE_NW * 1e-9

    return PowerReport(
        design=sched.graph.name,
        clock_ghz=clock_hz / 1e9,
        dynamic_mw=dynamic_w * 1e3,
        clock_mw=clock_w * 1e3,
        leakage_mw=leakage_w * 1e3,
    )
