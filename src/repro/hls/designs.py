"""Design builders: the HLS engine's "C++ frontend" after loop unrolling.

Each builder returns a fully-unrolled :class:`DataflowGraph`.  The two
crossbar codings reproduce the section 2.4 case study; the datapath
builders (MAC, FIR, adder tree, ALU) support the ±10 % HLS-vs-hand-RTL
QoR experiment, each with an analytic ``hand_rtl_area`` reference that
models what a careful RTL designer would write (minimal spatial
hardware, no HLS control/sharing overhead).
"""

from __future__ import annotations

import math
from typing import Callable

from .ir import DataflowGraph
from .tech import DEFAULT_TECH, Tech

__all__ = [
    "crossbar_dst_loop_design",
    "crossbar_src_loop_design",
    "vector_mac_design",
    "fir_design",
    "adder_tree_design",
    "alu_design",
    "hand_rtl_area",
]


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def _mux_tree(g: DataflowGraph, prefix: str, leaves: list[str], sel: str,
              width: int) -> str:
    """Balanced 2:1 mux tree over ``leaves``; returns the root op name."""
    level = 0
    nodes = list(leaves)
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            name = g.add(f"{prefix}_l{level}_m{i // 2}", "mux2", width,
                         [sel, nodes[i], nodes[i + 1]])
            nxt.append(name)
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
        level += 1
    return nodes[0]


def crossbar_dst_loop_design(lanes: int, width: int) -> DataflowGraph:
    """dst-loop crossbar: one balanced N:1 mux per output.

    ``for dst: out[dst] = in[src[dst]]`` — each output has a clean select
    signal and a log-depth mux tree; no priority logic.
    """
    g = DataflowGraph(f"xbar_dst_{lanes}x{width}")
    sel_w = _log2ceil(lanes)
    ins = [g.add(f"in{i}", "input", width) for i in range(lanes)]
    for dst in range(lanes):
        sel = g.add(f"sel{dst}", "input", sel_w)
        root = _mux_tree(g, f"o{dst}", ins, sel, width)
        g.add(f"out{dst}", "output", width, [root])
    return g


def crossbar_src_loop_design(lanes: int, width: int) -> DataflowGraph:
    """src-loop crossbar: per-output priority-resolved mux chain.

    ``for src: out[dst[src]] = in[src]`` — every output must compare all
    N destination selects against its own index and resolve conflicts
    with highest-src-wins priority: N comparators and an (N-1)-deep
    priority mux chain per output.  The chain's linear delay forces the
    scheduler to pipeline it for large N, adding registers and control —
    the paper's measured ~25 % area penalty.
    """
    g = DataflowGraph(f"xbar_src_{lanes}x{width}")
    sel_w = _log2ceil(lanes)
    ins = [g.add(f"in{i}", "input", width) for i in range(lanes)]
    dsts = [g.add(f"dst{i}", "input", sel_w) for i in range(lanes)]
    zero = g.add("zero", "const", width)
    for o in range(lanes):
        const_o = g.add(f"c{o}", "const", sel_w)
        # Priority chain, lowest src first so the highest src wins at the
        # end of the chain: out = eq(N-1) ? in(N-1) : (... : default).
        chain = zero
        for s in range(lanes):
            eq = g.add(f"o{o}_eq{s}", "eq", sel_w, [dsts[s], const_o])
            chain = g.add(f"o{o}_m{s}", "mux2", width, [eq, ins[s], chain])
        g.add(f"out{o}", "output", width, [chain])
    return g


def vector_mac_design(lanes: int, width: int) -> DataflowGraph:
    """Elementwise multiply + balanced adder-tree reduction (a dot product)."""
    g = DataflowGraph(f"vmac_{lanes}x{width}")
    sel = None
    prods = []
    for i in range(lanes):
        a = g.add(f"a{i}", "input", width)
        b = g.add(f"b{i}", "input", width)
        prods.append(g.add(f"p{i}", "mul", width, [a, b]))
    nodes = prods
    level = 0
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(g.add(f"s{level}_{i // 2}", "add", width,
                             [nodes[i], nodes[i + 1]]))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
        level += 1
    g.add("out", "output", width, [nodes[0]])
    return g


def fir_design(taps: int, width: int) -> DataflowGraph:
    """Direct-form FIR: taps multipliers + accumulation chain."""
    g = DataflowGraph(f"fir_{taps}x{width}")
    acc = None
    for t in range(taps):
        x = g.add(f"x{t}", "input", width)
        c = g.add(f"c{t}", "const", width)
        p = g.add(f"p{t}", "mul", width, [x, c])
        acc = p if acc is None else g.add(f"acc{t}", "add", width, [acc, p])
    g.add("out", "output", width, [acc])
    return g


def adder_tree_design(inputs: int, width: int) -> DataflowGraph:
    """Balanced adder reduction tree."""
    g = DataflowGraph(f"addtree_{inputs}x{width}")
    nodes = [g.add(f"in{i}", "input", width) for i in range(inputs)]
    level = 0
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(g.add(f"a{level}_{i // 2}", "add", width,
                             [nodes[i], nodes[i + 1]]))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
        level += 1
    g.add("out", "output", width, [nodes[0]])
    return g


def alu_design(width: int) -> DataflowGraph:
    """Small ALU: add/sub/and/or/xor behind a result mux tree."""
    g = DataflowGraph(f"alu_{width}")
    a = g.add("a", "input", width)
    b = g.add("b", "input", width)
    opsel = g.add("opsel", "input", 3)
    results = [
        g.add("r_add", "add", width, [a, b]),
        g.add("r_sub", "sub", width, [a, b]),
        g.add("r_and", "and", width, [a, b]),
        g.add("r_or", "or", width, [a, b]),
        g.add("r_xor", "xor", width, [a, b]),
    ]
    root = _mux_tree(g, "res", results, opsel, width)
    g.add("out", "output", width, [root])
    return g


# ----------------------------------------------------------------------
# hand-optimized RTL references
# ----------------------------------------------------------------------
def hand_rtl_area(design: DataflowGraph, *, tech: Tech = DEFAULT_TECH) -> float:
    """Analytic area of a careful hand-written RTL implementation.

    The hand design keeps exactly the functional hardware the algorithm
    needs — spatial datapath, no sharing muxes, no HLS control FSM, and
    registers only at the module boundary (which both HLS and hand
    designs need equally, so they are excluded on both sides).
    """
    total = 0.0
    for op in design.ops.values():
        if op.kind in ("input", "const", "output"):
            continue
        total += tech.area(op)
    return total
