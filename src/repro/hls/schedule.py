"""Operation scheduling: the core HLS transformation.

List scheduling with operator chaining under a clock-period constraint
and optional per-kind resource constraints — the same decisions Catapult
makes when it maps a loosely-timed model to cycle-accurate RTL
(section 2.2: "HLS tools run compilation, pipelining, and scheduling
optimizations").

The scheduler assigns each op a ``cycle`` and tracks the combinational
path delay accumulated within that cycle; an op that would overflow the
usable clock period is bumped to the next cycle (a pipeline cut).  Every
dataflow edge that crosses a cycle boundary costs pipeline registers,
accounted by :mod:`repro.hls.area`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from .ir import DataflowGraph, IRError
from .tech import DEFAULT_TECH, Tech

__all__ = ["Schedule", "schedule"]


@dataclass
class Schedule:
    """Result of scheduling a dataflow graph."""

    graph: DataflowGraph
    clock_period_ps: float
    cycle: Dict[str, int] = field(default_factory=dict)
    finish_ps: Dict[str, float] = field(default_factory=dict)
    latency: int = 0
    compile_seconds: float = 0.0
    resource_limits: Optional[Dict[str, int]] = None

    @property
    def critical_path_ps(self) -> float:
        """Longest within-cycle combinational path actually used."""
        return max(self.finish_ps.values(), default=0.0)

    def ops_in_cycle(self, c: int) -> list[str]:
        return [name for name, cyc in self.cycle.items() if cyc == c]

    def concurrency(self, kind: str) -> int:
        """Peak number of ops of ``kind`` scheduled in any single cycle."""
        per_cycle: Dict[int, int] = {}
        for name, cyc in self.cycle.items():
            if self.graph.ops[name].kind == kind:
                per_cycle[cyc] = per_cycle.get(cyc, 0) + 1
        return max(per_cycle.values(), default=0)


def schedule(graph: DataflowGraph, *, clock_period_ps: float = 900.0,
             tech: Tech = DEFAULT_TECH,
             resource_limits: Optional[Dict[str, int]] = None) -> Schedule:
    """List-schedule ``graph`` with chaining under the clock constraint.

    ``resource_limits`` caps how many ops of each kind may execute in one
    cycle (e.g. ``{"mul": 2}``); unlisted kinds are unconstrained.
    """
    start_wall = time.perf_counter()
    budget = tech.usable_period_ps(clock_period_ps)
    result = Schedule(graph, clock_period_ps,
                      resource_limits=dict(resource_limits or {}))
    usage: Dict[tuple[int, str], int] = {}  # (cycle, kind) -> ops placed

    for name in graph.topo_order():
        op = graph.ops[name]
        delay = tech.delay(op)
        if delay > budget:
            raise IRError(
                f"op {name!r} ({op.kind}, w={op.width}) cannot fit in a "
                f"{clock_period_ps} ps cycle — no multicycle support"
            )
        # Earliest cycle and the chained arrival time within it.
        earliest = 0
        arrival = 0.0
        for src in op.inputs:
            src_cycle = result.cycle[src]
            if src_cycle > earliest:
                earliest = src_cycle
                arrival = result.finish_ps[src]
            elif src_cycle == earliest:
                arrival = max(arrival, result.finish_ps[src])
        cyc = earliest
        while True:
            start = arrival if cyc == earliest else 0.0
            fits_timing = start + delay <= budget
            limit = result.resource_limits.get(op.kind)
            fits_resources = (limit is None
                              or usage.get((cyc, op.kind), 0) < limit)
            if fits_timing and fits_resources:
                break
            cyc += 1
            arrival = 0.0
        result.cycle[name] = cyc
        result.finish_ps[name] = (arrival if cyc == earliest else 0.0) + delay
        usage[(cyc, op.kind)] = usage.get((cyc, op.kind), 0) + 1

    result.latency = max(result.cycle.values(), default=0) + 1
    result.compile_seconds = time.perf_counter() - start_wall
    return result
