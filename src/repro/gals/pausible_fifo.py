"""Pausible bisynchronous FIFO [Keller, Fojtik, Khailany — ASYNC'15].

The clock-domain crossing primitive of the paper's fine-grained GALS
methodology (section 3.1): all communication between partitions passes
through these FIFOs, which integrate the synchronizer with the receiving
partition's *pausible* clock generator.  When a write lands inside the
metastability window of an upcoming receiver clock edge, the receiver's
clock is paused (stretched) until the pointer has settled — giving
low-latency, error-free crossings instead of the 2-3 cycle penalty of a
brute-force multi-flop synchronizer.

Two models are provided:

* :class:`PausibleBisyncFIFO` — the paper's design.  ``pausible=False``
  degrades it to an unprotected crossing that *counts metastability
  windows it read through* (useful for verification experiments: the
  count must be zero when pausing is on).
* :class:`BruteForceSyncFIFO` — the conventional 2-flop-synchronizer
  alternative, for the latency-comparison ablation.

Both expose LI ``In``/``Out`` ports, so HLS-generated units connect to
partition boundaries without knowing a clock crossing is there — the
"correct-by-construction top-level interfaces" claim.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from ..matchlib.encoding import binary_to_gray

__all__ = ["PausibleBisyncFIFO", "BruteForceSyncFIFO"]


class PausibleBisyncFIFO:
    """Low-latency CDC FIFO with pausible-clock protection.

    ``in_port`` lives in the transmit clock domain, ``out_port`` in the
    receive domain.  ``settle_ps`` is the synchronizer settling window:
    a receiver edge may not sample a write pointer younger than this.
    """

    def __init__(self, sim, tx_clock, rx_clock, *, capacity: int = 4,
                 settle_ps: int = 50, pausible: bool = True,
                 name: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if settle_ps < 0:
            raise ValueError("settle_ps must be >= 0")
        requested = name if name is not None else "pbfifo"
        self.sim = sim
        self.tx_clock = tx_clock
        self.rx_clock = rx_clock
        self.capacity = capacity
        self.settle_ps = settle_ps
        self.pausible = pausible
        with component_scope(sim, requested, kind="PausibleBisyncFIFO",
                             obj=self, default_name=name is None) as inst:
            self.name = inst.name if inst is not None else requested
            # Each side of the crossing lives in its own domain sub-scope
            # so elaboration resolves the ports' clocks correctly.
            with component_scope(sim, "tx", kind="domain", clock=tx_clock):
                self.in_port: In = In(name="in")
                sim.add_thread(self._tx_run(), tx_clock, name="ctl")
            with component_scope(sim, "rx", kind="domain", clock=rx_clock):
                self.out_port: Out = Out(name="out")
                sim.add_thread(self._rx_run(), rx_clock, name="ctl")
        # Entries are (visible_at_ps, msg).
        self._queue: deque = deque()
        # Gray-coded pointers, kept for fidelity/introspection.
        self._wptr = 0
        self._rptr = 0
        self.transfers = 0
        self.metastability_risks = 0

    @property
    def wptr_gray(self) -> int:
        return binary_to_gray(self._wptr % (2 * self.capacity))

    @property
    def rptr_gray(self) -> int:
        return binary_to_gray(self._rptr % (2 * self.capacity))

    # ------------------------------------------------------------------
    def _tx_run(self) -> Generator:
        while True:
            if len(self._queue) < self.capacity:
                ok, msg = self.in_port.pop_nb()
                if ok:
                    visible = self.sim.now + self.settle_ps
                    self._queue.append((visible, msg))
                    self._wptr += 1
                    if self.pausible:
                        # Pausible clocking: hold off any receiver edge
                        # that would land inside the settling window.
                        self.rx_clock.pause_until(visible)
            yield

    def _rx_run(self) -> Generator:
        while True:
            if self._queue:
                visible, msg = self._queue[0]
                now = self.sim.now
                if now >= visible:
                    if self.out_port.push_nb(msg):
                        self._queue.popleft()
                        self._rptr += 1
                        self.transfers += 1
                elif not self.pausible:
                    # An unprotected design would have sampled a pointer
                    # mid-flight here: record the hazard, then read the
                    # data anyway (silicon would sometimes corrupt it).
                    self.metastability_risks += 1
                    if self.out_port.push_nb(msg):
                        self._queue.popleft()
                        self._rptr += 1
                        self.transfers += 1
            yield

    @property
    def occupancy(self) -> int:
        return len(self._queue)


class BruteForceSyncFIFO:
    """Conventional CDC FIFO with an N-flop pointer synchronizer.

    A written entry becomes visible only after its write pointer has
    crossed ``sync_stages`` receiver clock edges — the classic safe but
    slow design the pausible FIFO improves on.
    """

    def __init__(self, sim, tx_clock, rx_clock, *, capacity: int = 4,
                 sync_stages: int = 2, name: Optional[str] = None):
        if capacity < 1 or sync_stages < 1:
            raise ValueError("capacity and sync_stages must be >= 1")
        requested = name if name is not None else "bffifo"
        self.sim = sim
        self.rx_clock = rx_clock
        self.capacity = capacity
        self.sync_stages = sync_stages
        with component_scope(sim, requested, kind="BruteForceSyncFIFO",
                             obj=self, default_name=name is None) as inst:
            self.name = inst.name if inst is not None else requested
            with component_scope(sim, "tx", kind="domain", clock=tx_clock):
                self.in_port: In = In(name="in")
                sim.add_thread(self._tx_run(), tx_clock, name="ctl")
            with component_scope(sim, "rx", kind="domain", clock=rx_clock):
                self.out_port: Out = Out(name="out")
                sim.add_thread(self._rx_run(), rx_clock, name="ctl")
        # Entries are (rx_edges_seen, msg); visible after sync_stages edges.
        self._queue: deque = deque()
        self.transfers = 0

    def _tx_run(self) -> Generator:
        while True:
            if len(self._queue) < self.capacity:
                ok, msg = self.in_port.pop_nb()
                if ok:
                    self._queue.append([0, msg])
            yield

    def _rx_run(self) -> Generator:
        while True:
            for entry in self._queue:
                entry[0] += 1
            if self._queue and self._queue[0][0] > self.sync_stages:
                if self.out_port.push_nb(self._queue[0][1]):
                    self._queue.popleft()
                    self.transfers += 1
            yield

    @property
    def occupancy(self) -> int:
        return len(self._queue)
