"""Fine-grained GALS clocking (section 3 of the paper).

Per-partition local adaptive clock generators, pausible bisynchronous
FIFOs for every inter-partition interface, and the area/margin models
behind the paper's "< 3 % overhead, no top-level clock distribution"
claims.

Quick use::

    from repro.gals import LocalClockGenerator, PausibleBisyncFIFO

    tx = LocalClockGenerator(sim, "pe", nominal_period=909)
    rx = LocalClockGenerator(sim, "mem", nominal_period=1100)
    fifo = PausibleBisyncFIFO(sim, tx.clock, rx.clock)
    fifo.in_port.bind(channel_in_tx_domain)
    fifo.out_port.bind(channel_in_rx_domain)
"""

from .clock_generator import LocalClockGenerator, SupplyNoise
from .gals_link import GalsLink
from .overhead import GalsOverheadModel, Partition, SynchronousBaseline
from .pausible_fifo import BruteForceSyncFIFO, PausibleBisyncFIFO

__all__ = [
    "LocalClockGenerator",
    "SupplyNoise",
    "PausibleBisyncFIFO",
    "BruteForceSyncFIFO",
    "GalsLink",
    "Partition",
    "GalsOverheadModel",
    "SynchronousBaseline",
]
