"""GALS area-overhead and synchronous-baseline models (section 3.1).

The paper claims the cost of fine-grained GALS — one local clock
generator per partition plus a pausible bisynchronous FIFO per
inter-partition interface — is **under 3 % of partition area for typical
partition sizes**, while eliminating top-level clock distribution and
cross-partition timing closure.  These models quantify both sides:

* :class:`GalsOverheadModel` — NAND2-equivalent cost of the clock
  generator and CDC FIFOs as a function of partition size and interface
  count,
* :class:`SynchronousBaseline` — what the global-clock alternative pays
  instead: clock-tree buffers spanning the die and a static timing
  margin for skew + on-chip variation across all corners.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Partition", "GalsOverheadModel", "SynchronousBaseline"]


@dataclass(frozen=True)
class Partition:
    """One physical-design partition.

    ``logic_gates`` is standard-cell area (what P&R has to place);
    ``macro_gates`` is SRAM/hard-macro area in NAND2 equivalents (part of
    the partition's footprint, but free for the P&R runtime model).
    """

    name: str
    logic_gates: float          # NAND2-equivalent standard-cell area
    n_interfaces: int = 4       # inter-partition LI interfaces
    interface_width: int = 64   # bits per interface
    macro_gates: float = 0.0    # SRAM / hard-macro area

    def __post_init__(self):
        if self.logic_gates <= 0:
            raise ValueError("logic_gates must be positive")
        if self.n_interfaces < 0 or self.interface_width < 1:
            raise ValueError("bad interface parameters")
        if self.macro_gates < 0:
            raise ValueError("macro_gates must be >= 0")

    @property
    def total_gates(self) -> float:
        return self.logic_gates + self.macro_gates


@dataclass(frozen=True)
class GalsOverheadModel:
    """Area cost of per-partition GALS infrastructure.

    Defaults are gate-level estimates: a ring-oscillator clock generator
    with its control loop is a few thousand gates; a pausible bisync
    FIFO costs its storage (2 x depth x width flops) plus pointer and
    pause-control logic.
    """

    clockgen_gates: float = 4000.0
    fifo_depth: int = 4
    ff_gates: float = 6.0
    fifo_control_gates: float = 150.0

    def fifo_gates(self, width: int) -> float:
        storage = self.fifo_depth * width * self.ff_gates
        pointers = 4 * math.ceil(math.log2(max(self.fifo_depth, 2)) + 1) * self.ff_gates
        return storage + pointers + self.fifo_control_gates

    def overhead_gates(self, partition: Partition) -> float:
        return (self.clockgen_gates
                + partition.n_interfaces * self.fifo_gates(partition.interface_width))

    def overhead_fraction(self, partition: Partition) -> float:
        """GALS overhead as a fraction of total partition area."""
        return self.overhead_gates(partition) / partition.total_gates

    def chip_overhead_fraction(self, partitions: list[Partition]) -> float:
        total_area = sum(p.total_gates for p in partitions)
        total_overhead = sum(self.overhead_gates(p) for p in partitions)
        return total_overhead / total_area


@dataclass(frozen=True)
class SynchronousBaseline:
    """Cost model of the global-clock alternative.

    * clock-tree buffers: a balanced H-tree over the die with a buffer
      per sink region (~one per 50k gates of logic),
    * timing margin: skew grows with die diagonal; OCV margin applies to
      every cross-partition path at every corner.
    """

    buffer_gates: float = 25.0
    gates_per_sink: float = 50_000.0
    skew_ps_per_mm: float = 8.0
    ocv_margin_fraction: float = 0.05
    gate_density_per_mm2: float = 2.5e6  # 16 nm-class NAND2/mm^2

    def clock_tree_gates(self, partitions: list[Partition]) -> float:
        total_logic = sum(p.logic_gates for p in partitions)
        sinks = max(1, math.ceil(total_logic / self.gates_per_sink))
        # Balanced binary tree of buffers down to each sink.
        return self.buffer_gates * (2 * sinks - 1)

    def die_diagonal_mm(self, partitions: list[Partition]) -> float:
        total_logic = sum(p.logic_gates for p in partitions)
        area_mm2 = total_logic / self.gate_density_per_mm2
        return math.sqrt(2 * area_mm2)

    def skew_margin_ps(self, partitions: list[Partition]) -> float:
        return self.skew_ps_per_mm * self.die_diagonal_mm(partitions)

    def frequency_penalty(self, partitions: list[Partition],
                          clock_period_ps: float) -> float:
        """Fraction of the clock period burned on skew + OCV margin.

        This is margin a fine-grained GALS design does not pay on
        cross-partition paths (they are asynchronous), and pays less of
        locally (adaptive clocks track local variation).
        """
        margin = (self.skew_margin_ps(partitions)
                  + self.ocv_margin_fraction * clock_period_ps)
        return margin / clock_period_ps
