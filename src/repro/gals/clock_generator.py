"""Per-partition local clock generators (section 3.1, Figure 4).

Each GALS partition has a self-contained clock generator instead of a
leaf of a global clock tree.  Local *adaptive* generators track the
partition's supply noise [Kamakshi ASYNC'16]: when the supply droops,
the ring oscillator naturally slows, so logic always gets the cycle time
it needs and the design margin reserved for voltage droop shrinks.

:class:`LocalClockGenerator` models this as a per-edge period modulation:
``period(t) = nominal * (1 + supply_sensitivity * droop(t)) * (1 + jitter)``
with a deterministic seeded noise process, plus DVFS-style retargeting.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..design.hierarchy import component_scope

__all__ = ["SupplyNoise", "LocalClockGenerator"]


class SupplyNoise:
    """A deterministic supply-droop process: sinusoids + random walk.

    ``droop(t)`` returns the instantaneous relative voltage droop
    (0.05 = 5 % below nominal).  Resonant frequencies near 100 MHz are
    typical of package LC resonance.
    """

    def __init__(self, *, amplitude: float = 0.05,
                 resonance_hz: float = 100e6, seed: int = 0,
                 random_component: float = 0.01):
        if not 0 <= amplitude < 0.5:
            raise ValueError("amplitude must be in [0, 0.5)")
        self.amplitude = amplitude
        self.resonance_hz = resonance_hz
        self.random_component = random_component
        self._rng = random.Random(seed)
        self._walk = 0.0

    def droop(self, time_ps: int) -> float:
        """Relative droop at simulation time ``time_ps`` (1 tick = 1 ps)."""
        t_s = time_ps * 1e-12
        base = self.amplitude * 0.5 * (
            1 + math.sin(2 * math.pi * self.resonance_hz * t_s)
        )
        self._walk = 0.9 * self._walk + 0.1 * self._rng.uniform(
            -self.random_component, self.random_component)
        return max(0.0, base + self._walk)


class LocalClockGenerator:
    """A partition-local adaptive clock source.

    Create, then pass :attr:`clock` around like any kernel clock::

        gen = LocalClockGenerator(sim, "pe0", nominal_period=909)
        sim.add_thread(body(), gen.clock, name="pe0")

    With ``noise=None`` the generator is a clean fixed-period source.
    """

    def __init__(self, sim, name: str, *, nominal_period: int,
                 noise: Optional[SupplyNoise] = None,
                 supply_sensitivity: float = 1.0, jitter_ppm: float = 0.0,
                 seed: int = 0):
        if nominal_period < 1:
            raise ValueError("nominal_period must be >= 1 tick")
        self.nominal_period = nominal_period
        self.noise = noise
        self.supply_sensitivity = supply_sensitivity
        self.jitter_ppm = jitter_ppm
        self._rng = random.Random(seed)
        self._sim = sim
        self.period_sum = 0
        self.period_min = nominal_period
        self.period_max = nominal_period
        self.samples = 0
        self.retargets = 0
        with component_scope(sim, name, kind="LocalClockGenerator",
                             obj=self) as inst:
            self.name = inst.name if inst is not None else name
            # Passing a generator deliberately puts this clock on the
            # kernel's general (heap-scheduled) lane: every edge consults
            # _next_period, so adaptive/jittered GALS clocking behaves
            # bit-identically to the pre-fast-lane scheduler.  See
            # docs/PERFORMANCE.md.
            self.clock = sim.add_clock(name, nominal_period,
                                       generator=self._next_period)
        # Observability: registered generators annotate their domain's
        # row in telemetry reports (mean period, margin, pauses).
        hub = getattr(sim, "telemetry", None)
        if hub is not None:
            hub.register_clock_generator(self)

    def _next_period(self, clock) -> int:
        period = float(self.nominal_period)
        if self.noise is not None:
            droop = self.noise.droop(self._sim.now)
            period *= 1.0 + self.supply_sensitivity * droop
        if self.jitter_ppm:
            period *= 1.0 + self._rng.gauss(0.0, self.jitter_ppm * 1e-6)
        period_i = max(1, round(period))
        self.period_sum += period_i
        self.samples += 1
        self.period_min = min(self.period_min, period_i)
        self.period_max = max(self.period_max, period_i)
        return period_i

    def set_nominal_period(self, period: int) -> None:
        """DVFS retarget: subsequent cycles use the new nominal period."""
        if period < 1:
            raise ValueError("period must be >= 1 tick")
        self.nominal_period = period
        self.retargets += 1

    @property
    def mean_period(self) -> float:
        return self.period_sum / self.samples if self.samples else float(
            self.nominal_period)

    @property
    def effective_margin(self) -> float:
        """Worst observed slowdown relative to nominal (the margin an
        equivalent synchronous design would have to reserve statically)."""
        return self.period_max / self.nominal_period - 1.0

    def activity(self) -> dict:
        """Clock-domain activity counters as a serializable dict.

        Combines the generator's period statistics with the underlying
        kernel clock's pause counters — the per-domain row of a
        telemetry report (see :mod:`repro.observe`).
        """
        return {
            "nominal_period": self.nominal_period,
            "mean_period": round(self.mean_period, 3),
            "period_min": self.period_min,
            "period_max": self.period_max,
            "effective_margin": round(self.effective_margin, 6),
            "edges": self.samples,
            "retargets": self.retargets,
            "paused_edges": self.clock.paused_edges,
            "total_pause_time": self.clock.total_pause_time,
        }
