"""GALS inter-partition link: a channel-protocol wrapper around the
pausible bisynchronous FIFO.

A :class:`GalsLink` is drop-in compatible with the fast-channel protocol
(the same duck type :class:`~repro.connections.ports.In`/``Out`` bind
to), so routers and units connect across clock-domain boundaries without
any code change — the paper's "correct-by-construction top-level
asynchronous interfaces" (section 3.1).  Internally: a small buffer in
the transmit domain, the pausible FIFO crossing, and a small buffer in
the receive domain.

In the design hierarchy a link is both an :class:`Instance` (with
``tx``/``rx`` domain sub-scopes) and a channel endpoint registered
``cdc_safe`` — the marker the ``unsynchronized-crossing`` lint rule
accepts as a legal clock-domain crossing mediator.
"""

from __future__ import annotations

from typing import Any, Optional

from ..connections.channel import Buffer
from ..connections.ports import In, Out
from ..design.hierarchy import component_scope
from .pausible_fifo import PausibleBisyncFIFO

__all__ = ["GalsLink"]


class GalsLink:
    """Asynchronous link between two clock domains."""

    #: Channel-kind tag reported by elaboration/telemetry.
    kind = "Gals"

    def __init__(self, sim, tx_clock, rx_clock, *, capacity: int = 4,
                 settle_ps: int = 50, pausible: bool = True,
                 name: Optional[str] = None):
        requested = name if name is not None else "galslink"
        self.sim = sim
        self.tx_clock = tx_clock
        self.rx_clock = rx_clock
        with component_scope(sim, requested, kind="GalsLink", obj=self,
                             default_name=name is None) as inst:
            self.name = inst.name if inst is not None else requested
            # Domain sub-scopes give the facade endpoints honest clocks,
            # so elaboration sees where each side of the crossing lives.
            with component_scope(sim, "tx", kind="domain", clock=tx_clock):
                self._tx_chan = Buffer(sim, tx_clock, capacity=2, name="buf")
                self._enq: Out = Out(self._tx_chan, name="enq")
            with component_scope(sim, "rx", kind="domain", clock=rx_clock):
                self._rx_chan = Buffer(sim, rx_clock, capacity=2, name="buf")
                self._deq: In = In(self._rx_chan, name="deq")
            self.fifo = PausibleBisyncFIFO(
                sim, tx_clock, rx_clock, capacity=capacity,
                settle_ps=settle_ps, pausible=pausible, name="pbf",
            )
            self.fifo.in_port.bind(self._tx_chan)
            self.fifo.out_port.bind(self._rx_chan)
        # Register the link itself as a CDC-safe channel-like object in
        # the parent scope (sharing the instance name claimed above).
        design = getattr(sim, "design", None)
        if design is not None and inst is not None:
            design.register_channel(self, requested, cdc_safe=True,
                                    instance=inst)

    # FastChannel protocol --------------------------------------------
    def can_push(self) -> bool:
        return self._tx_chan.can_push()

    def do_push(self, msg: Any) -> bool:
        return self._tx_chan.do_push(msg)

    def can_pop(self) -> bool:
        return self._rx_chan.can_pop()

    def do_pop(self) -> tuple[bool, Optional[Any]]:
        return self._rx_chan.do_pop()

    def peek(self) -> tuple[bool, Optional[Any]]:
        return self._rx_chan.peek()

    def set_stall(self, probability: float, *, seed: int = 0) -> None:
        self._rx_chan.set_stall(probability, seed=seed)

    @property
    def fault_host(self):
        """Where :mod:`repro.faults` installs channel faults: the tx-side
        buffer, so drops/duplicates/corruption happen before the CDC."""
        return self._tx_chan

    @property
    def occupancy(self) -> int:
        return (self._tx_chan.occupancy + self.fifo.occupancy
                + self._rx_chan.occupancy)

    @property
    def transfers(self) -> int:
        return self.fifo.transfers

    @property
    def path(self) -> str:
        inst = getattr(self, "_design_instance", None)
        return inst.path if inst is not None else self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GalsLink({self.path!r}, occ={self.occupancy})"
