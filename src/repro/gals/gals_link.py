"""GALS inter-partition link: a channel-protocol wrapper around the
pausible bisynchronous FIFO.

A :class:`GalsLink` is drop-in compatible with the fast-channel protocol
(the same duck type :class:`~repro.connections.ports.In`/``Out`` bind
to), so routers and units connect across clock-domain boundaries without
any code change — the paper's "correct-by-construction top-level
asynchronous interfaces" (section 3.1).  Internally: a small buffer in
the transmit domain, the pausible FIFO crossing, and a small buffer in
the receive domain.
"""

from __future__ import annotations

from typing import Any, Optional

from ..connections.channel import Buffer
from .pausible_fifo import PausibleBisyncFIFO

__all__ = ["GalsLink"]


class GalsLink:
    """Asynchronous link between two clock domains."""

    def __init__(self, sim, tx_clock, rx_clock, *, capacity: int = 4,
                 settle_ps: int = 50, pausible: bool = True,
                 name: str = "galslink"):
        self.name = name
        self._tx_chan = Buffer(sim, tx_clock, capacity=2, name=f"{name}.tx")
        self._rx_chan = Buffer(sim, rx_clock, capacity=2, name=f"{name}.rx")
        self.fifo = PausibleBisyncFIFO(
            sim, tx_clock, rx_clock, capacity=capacity, settle_ps=settle_ps,
            pausible=pausible, name=f"{name}.pbf",
        )
        self.fifo.in_port.bind(self._tx_chan)
        self.fifo.out_port.bind(self._rx_chan)

    # FastChannel protocol --------------------------------------------
    def can_push(self) -> bool:
        return self._tx_chan.can_push()

    def do_push(self, msg: Any) -> bool:
        return self._tx_chan.do_push(msg)

    def can_pop(self) -> bool:
        return self._rx_chan.can_pop()

    def do_pop(self) -> tuple[bool, Optional[Any]]:
        return self._rx_chan.do_pop()

    def peek(self) -> tuple[bool, Optional[Any]]:
        return self._rx_chan.peek()

    def set_stall(self, probability: float, *, seed: int = 0) -> None:
        self._rx_chan.set_stall(probability, seed=seed)

    @property
    def occupancy(self) -> int:
        return (self._tx_chan.occupancy + self.fifo.occupancy
                + self._rx_chan.occupancy)

    @property
    def transfers(self) -> int:
        return self.fifo.transfers
