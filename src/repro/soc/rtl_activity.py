"""Per-unit RTL signal activity for the SoC's "rtl" mode.

A Verilog simulator spends its time evaluating and committing signal
updates for every register and combinational net in the design, every
cycle — thousands of events per unit per cycle.  The fast performance
model does none of that, which is precisely where Figure 6's 20-30x
wall-clock gap comes from.

:class:`RtlActivity` reproduces that cost *mechanically*: each instance
maintains a bank of real kernel :class:`BusSignal` registers updated
through the simulator's evaluate/commit machinery every cycle (a Fibonacci
LFSR-fed shift pipeline), plus combinational methods chained off them.
It is a scaled-down stand-in for a unit's internal netlist — sized by
``n_regs`` to the unit's approximate register count — so the RTL-mode
wall-clock cost scales with design size the way a real RTL simulation
does, while the functional models remain the single source of behaviour.
"""

from __future__ import annotations

from ..design.hierarchy import component_scope
from ..kernel import BusSignal

__all__ = ["RtlActivity", "DEFAULT_UNIT_REGS"]

#: Approximate per-unit register-bank sizes (scaled-down netlists).
DEFAULT_UNIT_REGS = {
    "pe": 416,
    "router": 128,
    "gmem": 416,
    "controller": 288,
    "ni": 24,
}


class RtlActivity:
    """A bank of clocked signals emulating a unit's netlist activity."""

    def __init__(self, sim, clock, *, n_regs: int, name: str = "rtl_act",
                 comb_fanout: int = 8):
        if n_regs < 4:
            raise ValueError("n_regs must be >= 4")
        self.n_regs = n_regs
        with component_scope(sim, name, kind="RtlActivity", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self._regs = [BusSignal(sim, width=32, init=i + 1, name=f"r{i}")
                          for i in range(n_regs)]
            self._comb = [BusSignal(sim, width=32, name=f"c{i}")
                          for i in range(max(1, n_regs // comb_fanout))]
            # Combinational nets hanging off the register bank.
            for i, comb in enumerate(self._comb):
                srcs = self._regs[i * comb_fanout:(i + 1) * comb_fanout] or \
                    [self._regs[-1]]

                def drive(comb=comb, srcs=srcs):
                    # ``s._value`` is ``read()`` without the call (hot
                    # path: this method re-runs every cycle for every
                    # fanout group).
                    acc = 0
                    for s in srcs:
                        acc ^= s._value
                    comb.write(acc)

                sim.add_method(drive, sensitive=srcs, name=f"m{i}")
            sim.add_thread(self._run(), clock, name="shift")

    def _run(self):
        # Prebind the per-register accessors once: the loop below runs
        # n_regs reads and writes every cycle, so the attribute lookups
        # dominate if left inline.
        regs = self._regs
        head_read = regs[0].read
        head_write = regs[0].write
        tail_read = regs[-1].read
        shift = [(regs[i].write, regs[i - 1].read)
                 for i in range(self.n_regs - 1, 0, -1)]
        while True:
            # Shift pipeline with an LFSR feedback head: every register
            # changes every cycle, so every write commits and re-triggers
            # its combinational fanout — worst-case but realistic toggle
            # activity for a busy datapath.
            head = head_read()
            head_write((head << 1) ^ (head >> 27) ^ tail_read() ^ 1)
            for w, r in shift:
                w(r())
            yield
