"""The RISC-V global controller node and its firmware.

The controller is a :class:`~repro.soc.riscv.RiscvCore` whose MMIO
window bridges onto the NoC: firmware pushes message words into a
staging buffer and writes the destination node id to send, then polls a
done-token counter — exactly the orchestration role the paper gives the
Rocket core (section 4: "initiating the execution by configuring the
control registers in PE and global memory and orchestrating the data
transfer").

:func:`command_player_firmware` is the generic firmware: it walks a
command table in data memory (built by :func:`encode_command_table`),
sends each message, honors WAIT barriers, and halts.  One firmware image
drives every workload.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple, Union

from ..design.hierarchy import component_scope
from ..matchlib.mem_array import MemArray
from ..noc.mesh import NetworkInterface
from .asm import assemble
from .protocol import Cmd
from .riscv import MMIO_BASE, RiscvCore

__all__ = [
    "Controller",
    "command_player_firmware",
    "encode_command_table",
    "SendCmd",
    "WaitCmd",
]

#: MMIO register byte offsets from MMIO_BASE.
_CMD_PUSH = 0x0
_CMD_SEND = 0x4
_DONE_COUNT = 0x8

SendCmd = Tuple[str, int, List[int]]   # ("send", dest, words)
WaitCmd = Tuple[str, int]              # ("wait", done_count)


def encode_command_table(commands: Sequence[Union[SendCmd, WaitCmd]]) -> List[int]:
    """Encode a command list into the firmware's data-memory table.

    Records: ``[dest, n, w0..wn-1]`` for sends, ``[-2, count]`` for
    waits, and a terminating ``[-1]``.
    """
    table: List[int] = []
    for cmd in commands:
        if cmd[0] == "send":
            _, dest, words = cmd
            if dest < 0:
                raise ValueError("send destination must be >= 0")
            table.append(dest)
            table.append(len(words))
            table.extend(w & 0xFFFFFFFF for w in words)
        elif cmd[0] == "wait":
            table.append(0xFFFFFFFE)  # -2
            table.append(cmd[1])
        else:
            raise ValueError(f"unknown command {cmd[0]!r}")
    table.append(0xFFFFFFFF)  # -1: halt
    return table


def command_player_firmware() -> List[int]:
    """Assemble the generic command-player firmware."""
    return assemble("""
        li s0, 0            # byte pointer into the command table
        li s1, 0x80000000   # MMIO base
    main:
        lw t0, 0(s0)
        addi s0, s0, 4
        li t1, -1
        beq t0, t1, halt
        li t1, -2
        beq t0, t1, wait
        lw t2, 0(s0)        # word count
        addi s0, s0, 4
    push_loop:
        beqz t2, send
        lw t3, 0(s0)
        addi s0, s0, 4
        sw t3, 0(s1)        # CMD_PUSH
        addi t2, t2, -1
        j push_loop
    send:
        sw t0, 4(s1)        # CMD_SEND = destination node
        j main
    wait:
        lw t2, 0(s0)        # target done count
        addi s0, s0, 4
    poll:
        lw t3, 8(s1)        # DONE_COUNT
        blt t3, t2, poll
        j main
    halt:
        ebreak
    """)


class Controller:
    """RISC-V core + NoC bridge at one mesh node."""

    def __init__(self, sim, clock, ni: NetworkInterface, *,
                 commands: Sequence[Union[SendCmd, WaitCmd]] = (),
                 dmem_words: int = 4096, name: str = "controller",
                 max_instructions: int = 2_000_000, axi_bridge=None):
        self.node = ni.node
        self.ni = ni
        self.axi_bridge = axi_bridge  # MMIO window 0x100.. if present
        self._staged: List[int] = []
        self.done_count = 0
        self.done_tokens: List[int] = []
        self.other_messages: List[List[int]] = []
        ni.handler = self._on_message

        table = encode_command_table(commands)
        if len(table) > dmem_words:
            raise ValueError(
                f"command table ({len(table)} words) exceeds dmem "
                f"({dmem_words} words)")
        dmem = MemArray(dmem_words, width=32)
        dmem.load(table)
        with component_scope(sim, name, kind="Controller", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.core = RiscvCore(
                imem=command_player_firmware(), dmem=dmem,
                mmio_read=self._mmio_read, mmio_write=self._mmio_write,
                name="cpu",
            )
            self.halt_time: Optional[int] = None

            def thread_body():
                yield from self.core.run_thread(
                    max_instructions=max_instructions)
                self.halt_time = sim.now

            sim.add_thread(thread_body(), clock, name="cpu")

    # ------------------------------------------------------------------
    def _on_message(self, src: int, payloads: List[int]) -> None:
        if payloads and payloads[0] == Cmd.DONE:
            self.done_count += 1
            self.done_tokens.append(payloads[1])
        else:
            self.other_messages.append(payloads)

    def _mmio_read(self, addr: int) -> int:
        offset = addr - MMIO_BASE
        if offset == _DONE_COUNT:
            return self.done_count
        if offset >= 0x100 and self.axi_bridge is not None:
            return self.axi_bridge.mmio_read(offset - 0x100)
        return 0

    def _mmio_write(self, addr: int, value: int) -> None:
        offset = addr - MMIO_BASE
        if offset == _CMD_PUSH:
            self._staged.append(value)
        elif offset == _CMD_SEND:
            self.ni.send(value, self._staged)
            self._staged = []
        elif offset >= 0x100 and self.axi_bridge is not None:
            self.axi_bridge.mmio_write(offset - 0x100, value)

    @property
    def halted(self) -> bool:
        return self.core.halted
