"""RV32I interpreter: the SoC's global controller core.

The prototype SoC uses a RISC-V processor as the global controller that
configures PEs and global memory and orchestrates data movement
(section 4).  This is a from-scratch RV32I implementation: fetch,
decode, execute at one instruction per cycle, with a word-addressed data
memory and a memory-mapped I/O window for talking to the NoC command
bridge.

``ebreak`` halts the core (the firmware's exit).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..matchlib.mem_array import MemArray

__all__ = ["RiscvCore", "RiscvError", "MMIO_BASE"]

#: Byte address where the memory-mapped I/O window begins.
MMIO_BASE = 0x8000_0000


class RiscvError(RuntimeError):
    """Raised on illegal instructions or misaligned accesses."""


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def _sext(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return (value ^ mask) - mask


class RiscvCore:
    """A single-issue RV32I core.

    ``imem`` holds instruction words (word-indexed from byte address 0);
    ``dmem`` is the data memory (word-addressed).  Loads/stores with byte
    addresses at or above :data:`MMIO_BASE` are routed to the ``mmio_read``
    / ``mmio_write`` callbacks.
    """

    def __init__(self, *, imem: List[int], dmem: MemArray,
                 mmio_read: Optional[Callable[[int], int]] = None,
                 mmio_write: Optional[Callable[[int, int], None]] = None,
                 name: str = "riscv"):
        self.name = name
        self.imem = list(imem)
        self.dmem = dmem
        self.mmio_read = mmio_read or (lambda addr: 0)
        self.mmio_write = mmio_write or (lambda addr, value: None)
        self.regs = [0] * 32
        self.pc = 0
        self.halted = False
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # memory access
    # ------------------------------------------------------------------
    def _load_word(self, addr: int) -> int:
        if addr % 4:
            raise RiscvError(f"misaligned load at {addr:#x}")
        if addr >= MMIO_BASE:
            return self.mmio_read(addr) & 0xFFFFFFFF
        return self.dmem.read(addr // 4) & 0xFFFFFFFF

    def _store_word(self, addr: int, value: int) -> None:
        if addr % 4:
            raise RiscvError(f"misaligned store at {addr:#x}")
        if addr >= MMIO_BASE:
            self.mmio_write(addr, value & 0xFFFFFFFF)
        else:
            self.dmem.write(addr // 4, value & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        word_index = self.pc // 4
        if self.pc % 4 or not 0 <= word_index < len(self.imem):
            raise RiscvError(f"bad pc {self.pc:#x}")
        insn = self.imem[word_index]
        self._execute(insn)
        self.regs[0] = 0
        self.instructions_retired += 1

    def _execute(self, insn: int) -> None:
        opcode = insn & 0x7F
        rd = (insn >> 7) & 0x1F
        funct3 = (insn >> 12) & 0x7
        rs1 = (insn >> 15) & 0x1F
        rs2 = (insn >> 20) & 0x1F
        funct7 = insn >> 25
        next_pc = self.pc + 4

        if opcode == 0x33:  # R-type ALU
            self.regs[rd] = self._alu(funct3, funct7, self.regs[rs1],
                                      self.regs[rs2])
        elif opcode == 0x13:  # I-type ALU
            imm = _sext(insn >> 20, 12)
            if funct3 in (1, 5):  # shifts use shamt + funct7
                shamt = (insn >> 20) & 0x1F
                self.regs[rd] = self._alu(funct3, funct7, self.regs[rs1], shamt)
            else:
                self.regs[rd] = self._alu(funct3, 0, self.regs[rs1], imm)
        elif opcode == 0x03:  # loads
            if funct3 != 2:
                raise RiscvError(f"unsupported load funct3={funct3}")
            addr = (self.regs[rs1] + _sext(insn >> 20, 12)) & 0xFFFFFFFF
            self.regs[rd] = self._load_word(addr)
        elif opcode == 0x23:  # stores
            if funct3 != 2:
                raise RiscvError(f"unsupported store funct3={funct3}")
            imm = _sext(((funct7 << 5) | rd), 12)
            addr = (self.regs[rs1] + imm) & 0xFFFFFFFF
            self._store_word(addr, self.regs[rs2])
        elif opcode == 0x63:  # branches
            imm = _sext(
                (((insn >> 31) & 1) << 12) | (((insn >> 7) & 1) << 11)
                | (((insn >> 25) & 0x3F) << 5) | (((insn >> 8) & 0xF) << 1),
                13,
            )
            if self._branch_taken(funct3, self.regs[rs1], self.regs[rs2]):
                next_pc = (self.pc + imm) & 0xFFFFFFFF
        elif opcode == 0x37:  # lui
            self.regs[rd] = (insn & 0xFFFFF000) & 0xFFFFFFFF
        elif opcode == 0x17:  # auipc
            self.regs[rd] = (self.pc + (insn & 0xFFFFF000)) & 0xFFFFFFFF
        elif opcode == 0x6F:  # jal
            imm = _sext(
                (((insn >> 31) & 1) << 20) | (((insn >> 12) & 0xFF) << 12)
                | (((insn >> 20) & 1) << 11) | (((insn >> 21) & 0x3FF) << 1),
                21,
            )
            self.regs[rd] = next_pc
            next_pc = (self.pc + imm) & 0xFFFFFFFF
        elif opcode == 0x67:  # jalr
            if funct3 != 0:
                raise RiscvError("bad jalr funct3")
            target = (self.regs[rs1] + _sext(insn >> 20, 12)) & 0xFFFFFFFE
            self.regs[rd] = next_pc
            next_pc = target
        elif opcode == 0x73:  # system: ebreak halts
            if (insn >> 20) & 0xFFF == 1:
                self.halted = True
            else:
                raise RiscvError(f"unsupported system instruction {insn:#010x}")
        else:
            raise RiscvError(f"illegal opcode {opcode:#x} in {insn:#010x}")
        self.pc = next_pc

    @staticmethod
    def _alu(funct3: int, funct7: int, a: int, b: int) -> int:
        a &= 0xFFFFFFFF
        b &= 0xFFFFFFFF
        if funct3 == 0:  # add/sub
            if funct7 == 0x20:
                return (a - b) & 0xFFFFFFFF
            return (a + b) & 0xFFFFFFFF
        if funct3 == 1:
            return (a << (b & 0x1F)) & 0xFFFFFFFF
        if funct3 == 2:
            return 1 if _signed(a) < _signed(b) else 0
        if funct3 == 3:
            return 1 if a < b else 0
        if funct3 == 4:
            return a ^ b
        if funct3 == 5:
            if funct7 == 0x20:
                return (_signed(a) >> (b & 0x1F)) & 0xFFFFFFFF
            return a >> (b & 0x1F)
        if funct3 == 6:
            return a | b
        if funct3 == 7:
            return a & b
        raise RiscvError(f"bad ALU funct3={funct3}")

    @staticmethod
    def _branch_taken(funct3: int, a: int, b: int) -> bool:
        a &= 0xFFFFFFFF
        b &= 0xFFFFFFFF
        if funct3 == 0:
            return a == b
        if funct3 == 1:
            return a != b
        if funct3 == 4:
            return _signed(a) < _signed(b)
        if funct3 == 5:
            return _signed(a) >= _signed(b)
        if funct3 == 6:
            return a < b
        if funct3 == 7:
            return a >= b
        raise RiscvError(f"bad branch funct3={funct3}")

    # ------------------------------------------------------------------
    # simulation integration
    # ------------------------------------------------------------------
    def run_thread(self, *, max_instructions: Optional[int] = None) -> Generator:
        """Clocked thread body: one instruction per cycle until halt."""
        count = 0
        while not self.halted:
            self.step()
            count += 1
            if max_instructions is not None and count >= max_instructions:
                raise RiscvError(
                    f"{self.name}: exceeded {max_instructions} instructions "
                    f"without halting (runaway firmware?)"
                )
            yield
