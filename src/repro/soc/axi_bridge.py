"""MMIO-to-AXI bridge: the controller's window onto the AXI bus.

Figure 5 shows the RISC-V processor attached to an AXI bus.  The core's
loads/stores are synchronous, while AXI transactions take many cycles,
so the bridge exposes the standard doorbell pattern:

========  =====================================================
offset    register
========  =====================================================
``0x00``  ADDR   — target AXI address
``0x04``  WDATA  — write data
``0x08``  CMD    — write 1 = AXI read, 2 = AXI write (fires)
``0x0C``  STATUS — 0 idle, 1 busy, 2 done-ok, 3 done-error
``0x10``  RDATA  — read data from the last AXI read
========  =====================================================

Firmware writes ADDR (+WDATA), kicks CMD, polls STATUS, reads RDATA.
A bridge thread performs the transaction through a normal
:class:`~repro.axi.master.AxiMaster`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..axi.master import AxiError, AxiMaster
from ..design.hierarchy import component_scope
from ..kernel import Gate

__all__ = ["MmioAxiBridge"]

_IDLE, _BUSY, _DONE_OK, _DONE_ERR = 0, 1, 2, 3


class MmioAxiBridge:
    """Doorbell bridge between the core's MMIO and an AXI master."""

    def __init__(self, sim, clock, *, name: str = "mmio_axi"):
        with component_scope(sim, name, kind="MmioAxiBridge", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.master = AxiMaster(name="master")
            self.addr = 0
            self.wdata = 0
            self.rdata = 0
            self.status = _IDLE
            self._pending: Optional[int] = None  # 1 = read, 2 = write
            self.transactions = 0
            # Idle-wait point for the compiled backend: reopened by a
            # CMD doorbell write (plain one-cycle wait threaded).
            self._gate = Gate()
            sim.add_thread(self._run(), clock, name="ctl")

    # MMIO side (called synchronously from the core) --------------------
    def mmio_read(self, offset: int) -> int:
        if offset == 0x0C:
            return self.status
        if offset == 0x10:
            return self.rdata
        if offset == 0x00:
            return self.addr
        if offset == 0x04:
            return self.wdata
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self.addr = value
        elif offset == 0x04:
            self.wdata = value
        elif offset == 0x08:
            if self.status == _BUSY:
                raise RuntimeError(f"{self.name}: CMD while busy")
            if value not in (1, 2):
                raise ValueError(f"{self.name}: bad CMD {value}")
            self._pending = value
            self.status = _BUSY
            self._gate.open()

    # AXI side -----------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            if self._pending is None:
                yield self._gate   # idle until the next doorbell
                continue
            cmd, self._pending = self._pending, None
            try:
                if cmd == 1:
                    self.rdata = yield from self.master.read(self.addr)
                else:
                    yield from self.master.write(self.addr, self.wdata)
                self.status = _DONE_OK
            except AxiError:
                self.status = _DONE_ERR
            self.transactions += 1
            yield
