"""The prototype SoC (Figure 5), fully assembled.

Default configuration mirrors the paper's testchip: a 4x4 spatial array
of processing elements on a WHVC-routed mesh, a RISC-V global
controller, two global-memory partitions (left/right), and an I/O node,
on a 4x5 mesh.

Three build modes reproduce the paper's methodology experiments:

* ``mode="fast"`` — the SystemC performance model: fast LI channels,
  single clock.  (Figure 6's "SystemC" series.)
* ``mode="rtl"`` — RTL co-simulation: every mesh link is a signal-level
  :class:`~repro.connections.rtl_adapter.RtlChannel`.  Slower wall
  clock, a few extra pipeline cycles per hop.  (Figure 6's "RTL".)
* ``gals=True`` — fine-grained GALS: one local (optionally noisy)
  clock generator per node, pausible-bisynchronous-FIFO links
  (section 3.1, exactly the testchip's backend: "a local clock
  generator and a NoC router per partition").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..connections.channel import Buffer
from ..connections.rtl_adapter import RtlChannel
from ..design.hierarchy import component_scope
from ..gals.clock_generator import LocalClockGenerator, SupplyNoise
from ..gals.gals_link import GalsLink
from ..kernel import Simulator
from ..noc.mesh import Mesh
from .controller import Controller
from .global_memory import GlobalMemory
from .pe import ProcessingElement

__all__ = ["PrototypeSoC"]


class PrototypeSoC:
    """The 87M-transistor ML testchip, in simulation."""

    #: Default clock: 1.1 GHz signoff frequency (909 ps at 1 tick = 1 ps).
    CLOCK_PERIOD = 909

    def __init__(self, *, commands: Sequence = (), mode: str = "fast",
                 gals: bool = False, noise_amplitude: float = 0.0,
                 pe_columns: int = 4, pe_rows: int = 4, lanes: int = 8,
                 spad_words: int = 2048, gmem_words: int = 16384,
                 sim: Optional[Simulator] = None, seed: int = 0):
        if mode not in ("fast", "rtl"):
            raise ValueError(f"mode must be 'fast' or 'rtl', got {mode!r}")
        if mode == "rtl" and gals:
            raise ValueError("rtl mode models a single synchronous domain")
        self.mode = mode
        self.gals = gals
        self.sim = sim or Simulator()
        self.n_pes = pe_columns * pe_rows
        width, height = pe_columns, pe_rows + 1
        n_nodes = width * height
        # Node map: PEs fill the first pe_rows rows; the service row holds
        # the controller, the two global memories, and I/O.
        self.pe_nodes = list(range(self.n_pes))
        service = list(range(self.n_pes, n_nodes))
        self.controller_node = service[0]
        self.gmem_left_node = service[1 % len(service)]
        self.gmem_right_node = service[2 % len(service)]
        self.io_node = service[3 % len(service)] if len(service) > 3 else None

        # The chip is the root of the user design hierarchy: everything
        # below registers as chip.mesh.*, chip.pe0.*, chip.axix.*, …
        with component_scope(self.sim, "chip", kind="PrototypeSoC",
                             obj=self, default_name=True):
            # --- clocking -------------------------------------------------
            self.clock_generators: List[LocalClockGenerator] = []
            if gals:
                clocks = []
                for node in range(n_nodes):
                    noise = (SupplyNoise(amplitude=noise_amplitude,
                                         seed=seed + node)
                             if noise_amplitude > 0 else None)
                    # Deterministic per-node period spread (+-2 %): no two
                    # partitions are exactly plesiochronous.
                    period = self.CLOCK_PERIOD + ((node * 7) % 37) - 18
                    gen = LocalClockGenerator(self.sim, f"clkgen{node}",
                                              nominal_period=period,
                                              noise=noise, seed=seed + node)
                    self.clock_generators.append(gen)
                    clocks.append(gen.clock)
                clock_of = lambda node: clocks[node]
                self.clock = clocks[self.controller_node]
            else:
                self.clock = self.sim.add_clock("clk",
                                                period=self.CLOCK_PERIOD)
                clock_of = lambda node: self.clock

            # --- interconnect --------------------------------------------
            if gals:
                def link_factory(src, dst, tag):
                    return GalsLink(self.sim, clock_of(src), clock_of(dst),
                                    name=tag)
            elif mode == "rtl":
                def link_factory(src, dst, tag):
                    return RtlChannel(self.sim, self.clock, capacity=4,
                                      name=tag)
            else:
                link_factory = None

            self.mesh = Mesh(self.sim, self.clock, width=width,
                             height=height, router="whvc", clock_of=clock_of,
                             link_factory=link_factory, name="mesh")

            # --- units ---------------------------------------------------
            self.pes: List[ProcessingElement] = [
                ProcessingElement(self.sim, clock_of(node),
                                  self.mesh.ni(node),
                                  lanes=lanes, spad_words=spad_words)
                for node in self.pe_nodes
            ]
            self.gmem_left = GlobalMemory(
                self.sim, clock_of(self.gmem_left_node),
                self.mesh.ni(self.gmem_left_node),
                words=gmem_words, name="gmem_left")
            self.gmem_right = GlobalMemory(
                self.sim, clock_of(self.gmem_right_node),
                self.mesh.ni(self.gmem_right_node),
                words=gmem_words, name="gmem_right")
            # AXI control plane (Figure 5's "AXI Bus"): the controller's
            # MMIO window drives chip-level CSRs through a doorbell bridge
            # and the interconnect fabric.
            from ..axi.interconnect import AddressRange, AxiInterconnect
            from ..axi.slave import AxiRegisterSlave
            from .axi_bridge import MmioAxiBridge

            ctrl_clock = clock_of(self.controller_node)
            self.axi_bridge = MmioAxiBridge(self.sim, ctrl_clock)
            self.axi_fabric = AxiInterconnect(self.sim, ctrl_clock,
                                              name="axix")
            self.axi_fabric.connect_master(self.axi_bridge.master)
            self.csr = AxiRegisterSlave(self.sim, ctrl_clock, n_regs=16,
                                        name="csr")
            self.csr.regs[0] = 0xC8AF7  # chip id
            self.csr.regs[1] = self.n_pes
            self.axi_fabric.connect_slave(self.csr, AddressRange(0x0, 16))

            self.controller = Controller(self.sim, ctrl_clock,
                                         self.mesh.ni(self.controller_node),
                                         commands=commands,
                                         axi_bridge=self.axi_bridge)
            self.finish_time: Optional[int] = None

            # RTL mode: instantiate the per-unit netlist activity that a
            # Verilog simulator would be evaluating every cycle.
            self.rtl_activities = []
            if mode == "rtl":
                from .rtl_activity import DEFAULT_UNIT_REGS, RtlActivity

                def attach(kind, node, index):
                    self.rtl_activities.append(RtlActivity(
                        self.sim, clock_of(node),
                        n_regs=DEFAULT_UNIT_REGS[kind],
                        name=f"rtl_{kind}{index}"))

                for i, node in enumerate(self.pe_nodes):
                    attach("pe", node, i)
                for node in range(n_nodes):
                    attach("router", node, node)
                attach("gmem", self.gmem_left_node, 0)
                attach("gmem", self.gmem_right_node, 1)
                attach("controller", self.controller_node, 0)

    # ------------------------------------------------------------------
    # convenience API
    # ------------------------------------------------------------------
    def gmem(self, node: int) -> GlobalMemory:
        if node == self.gmem_left_node:
            return self.gmem_left
        if node == self.gmem_right_node:
            return self.gmem_right
        raise ValueError(f"node {node} is not a global memory partition")

    def run(self, *, max_ticks: int = 50_000_000) -> int:
        """Run until the controller firmware halts; returns elapsed ticks."""
        while not self.controller.halted and self.sim.now < max_ticks:
            self.sim.run(max_steps=500)
        if not self.controller.halted:
            raise RuntimeError(
                f"SoC did not finish within {max_ticks} ticks "
                f"(done tokens: {self.controller.done_count})"
            )
        self.finish_time = self.controller.halt_time
        return self.finish_time

    @property
    def elapsed_cycles(self) -> Optional[int]:
        """Controller-clock cycles to completion (after :meth:`run`)."""
        if self.finish_time is None:
            return None
        return self.finish_time // self.CLOCK_PERIOD

    @property
    def total_pe_elements(self) -> int:
        return sum(pe.elements_processed for pe in self.pes)

    def telemetry_report(self, *, label: str = "soc"):
        """Snapshot this chip into a :class:`~repro.observe.TelemetryReport`.

        Always includes NoC router/link counters and clock-domain
        activity (they are maintained unconditionally); kernel counters
        and per-channel occupancy histograms additionally require the
        simulator to have been built with telemetry enabled — either
        ``PrototypeSoC(sim=Simulator(telemetry=True), ...)`` or
        construction inside an :func:`repro.observe.capture` window.

        Usage::

            from repro import observe
            with observe.capture():
                soc = run_workload(conv2d_workload())
            print(observe.format_report(soc.telemetry_report()))
        """
        from ..observe.report import collect

        return collect(self.sim, label=label, meshes=(self.mesh,),
                       clock_generators=self.clock_generators)
