"""Global memory node (Figure 5).

Banked on-chip memory built from MatchLib's ``mem_array`` banks behind
an arbitrated crossbar (here the :class:`ArbitratedScratchpad`, which is
exactly banks + arbitration), serving GM_READ/GM_WRITE messages from the
NoC.  Throughput: ``n_banks`` words per cycle at unit stride.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional

from ..design.hierarchy import component_scope
from ..kernel import Gate
from ..matchlib.arbitrated_scratchpad import ArbitratedScratchpad
from ..noc.mesh import NetworkInterface
from .protocol import Cmd, NO_REPLY

__all__ = ["GlobalMemory"]


class GlobalMemory:
    """A global-memory partition on the NoC."""

    def __init__(self, sim, clock, ni: NetworkInterface, *, words: int = 65536,
                 n_banks: int = 8, name: Optional[str] = None):
        if n_banks < 1:
            raise ValueError("n_banks must be >= 1")
        requested = name or f"gmem{ni.node}"
        self.node = ni.node
        self.n_banks = n_banks
        self.ni = ni
        with component_scope(sim, requested, kind="GlobalMemory",
                             obj=self, clock=clock) as inst:
            self.name = inst.name if inst is not None else requested
            self.core = ArbitratedScratchpad(
                n_requesters=n_banks, n_banks=n_banks,
                bank_entries=-(-words // n_banks), width=32,
            )
            self._inbox: deque = deque()
            self.reads_served = 0
            self.writes_served = 0
            # Idle-wait point for the compiled backend: every message
            # arrival reopens it (plain one-cycle wait threaded).
            self._gate = Gate()
            ni.handler = self._on_message
            sim.add_thread(self._run(), clock, name="ctl")

    def _on_message(self, src: int, payloads: List[int]) -> None:
        self._inbox.append(payloads)
        self._gate.open()

    @property
    def words(self) -> int:
        return self.core.entries

    # Testbench conveniences --------------------------------------------
    def load(self, values: List[int], *, base: int = 0) -> None:
        self.core.load([v & 0xFFFFFFFF for v in values], base=base)

    def dump(self, base: int, length: int) -> List[int]:
        return self.core.dump(base, length)

    # ------------------------------------------------------------------
    def _access(self, base: int, words: Optional[List[int]],
                length: int) -> Generator:
        """Banked access, ``n_banks`` words per cycle; returns read data."""
        # Unit stride across the banks never conflicts, so every chunk
        # is one conflict-free arbitration round (see write_vector).
        n_banks = self.n_banks
        core = self.core
        if words is not None:
            for chunk_base in range(0, length, n_banks):
                core.write_vector(
                    base + chunk_base,
                    [w & 0xFFFFFFFF
                     for w in words[chunk_base:chunk_base + n_banks]])
                yield
            return []
        out: List[int] = []
        for chunk_base in range(0, length, n_banks):
            out += core.read_vector(base + chunk_base,
                                    min(n_banks, length - chunk_base))
            yield
        return out

    def _run(self) -> Generator:
        while True:
            if not self._inbox:
                yield self._gate   # idle until the next message arrives
                continue
            msg = self._inbox.popleft()
            op = msg[0]
            if op == Cmd.GM_READ:
                base, length, reply_node, tag = msg[1:5]
                data = yield from self._access(base, None, length)
                self.ni.send(reply_node, [int(Cmd.GM_DATA), tag] + list(data))
                self.reads_served += 1
            elif op == Cmd.GM_WRITE:
                base, reply_node, tag = msg[1:4]
                payload = msg[4:]
                yield from self._access(base, payload, len(payload))
                self.writes_served += 1
                if reply_node != NO_REPLY:
                    self.ni.send(reply_node, [int(Cmd.GM_DATA), tag])
            elif op == Cmd.NOTIFY:
                self.ni.send(msg[1], [int(Cmd.DONE), msg[2]])
            else:
                raise ValueError(f"{self.name}: unknown command {op}")
            yield
