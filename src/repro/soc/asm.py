"""A small two-pass RV32I assembler.

The prototype SoC's global controller is a RISC-V core (the paper uses a
Chisel-generated Rocket core; we implement an RV32I interpreter in
:mod:`repro.soc.riscv`).  This assembler lets the SoC driver and the
tests write controller firmware in readable assembly.

Supported: the RV32I base integer ISA (ALU, ALU-immediate, LUI/AUIPC,
JAL/JALR, branches, LW/SW), labels, and the common pseudo-instructions
``li``, ``mv``, ``j``, ``nop``, ``ret``, ``beqz``, ``bnez``.
"""

from __future__ import annotations

import re
from typing import Dict, List

__all__ = ["assemble", "AsmError", "REGISTERS"]


class AsmError(ValueError):
    """Raised on malformed assembly input."""


_ABI = ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1",
        "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
        "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
        "t3", "t4", "t5", "t6"]

REGISTERS: Dict[str, int] = {f"x{i}": i for i in range(32)}
REGISTERS.update({name: i for i, name in enumerate(_ABI)})
REGISTERS["fp"] = 8


def _reg(token: str) -> int:
    token = token.strip().lower()
    if token not in REGISTERS:
        raise AsmError(f"unknown register {token!r}")
    return REGISTERS[token]


def _imm(token: str, labels: Dict[str, int], pc: int) -> int:
    token = token.strip()
    if token in labels:
        return labels[token] - pc  # pc-relative for branches/jumps
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AsmError(f"bad immediate {token!r}") from exc


def _abs(token: str, labels: Dict[str, int]) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AsmError(f"bad immediate {token!r}") from exc


def _check_range(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise AsmError(f"{what} {value} out of {bits}-bit range")
    return value & ((1 << bits) - 1)


# Instruction encoders ---------------------------------------------------
def _r_type(funct7, rs2, rs1, funct3, rd, opcode):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _i_type(imm, rs1, funct3, rd, opcode):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) \
        | (rd << 7) | opcode


def _s_type(imm, rs2, rs1, funct3, opcode):
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | ((imm & 0x1F) << 7) | opcode


def _b_type(imm, rs2, rs1, funct3, opcode):
    imm &= 0x1FFF
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
        | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
        | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode


def _u_type(imm, rd, opcode):
    return ((imm & 0xFFFFF) << 12) | (rd << 7) | opcode


def _j_type(imm, rd, opcode):
    imm &= 0x1FFFFF
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
        | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
        | (rd << 7) | opcode


_ALU_R = {"add": (0, 0), "sub": (0x20, 0), "sll": (0, 1), "slt": (0, 2),
          "sltu": (0, 3), "xor": (0, 4), "srl": (0, 5), "sra": (0x20, 5),
          "or": (0, 6), "and": (0, 7)}
_ALU_I = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_SHIFT_I = {"slli": (0, 1), "srli": (0, 5), "srai": (0x20, 5)}
_BRANCH = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _expand_pseudo(mnemonic: str, args: List[str]) -> List[tuple]:
    """Expand pseudo-instructions; returns a list of (mnemonic, args)."""
    if mnemonic == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnemonic == "mv":
        return [("addi", [args[0], args[1], "0"])]
    if mnemonic == "j":
        return [("jal", ["x0", args[0]])]
    if mnemonic == "ret":
        return [("jalr", ["x0", "ra", "0"])]
    if mnemonic == "beqz":
        return [("beq", [args[0], "x0", args[1]])]
    if mnemonic == "bnez":
        return [("bne", [args[0], "x0", args[1]])]
    if mnemonic == "li":
        value = int(args[1], 0) & 0xFFFFFFFF
        lo = value & 0xFFF
        if lo >= 0x800:
            lo -= 0x1000
        hi = (value - lo) & 0xFFFFFFFF
        if hi:
            out = [("lui", [args[0], str(hi >> 12)])]
            if lo:
                out.append(("addi", [args[0], args[0], str(lo)]))
            return out
        return [("addi", [args[0], "x0", str(lo)])]
    return [(mnemonic, args)]


def _tokenize(source: str) -> List[tuple]:
    """First pass: strip comments, expand pseudos, collect labels."""
    items: List[tuple] = []  # ("label", name) or ("insn", mnem, args)
    for raw_line in source.splitlines():
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            items.append(("label", label.strip()))
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        args = [a.strip() for a in parts[1].split(",")] if len(parts) > 1 else []
        for m, a in _expand_pseudo(mnemonic, args):
            items.append(("insn", m, a))
    return items


def assemble(source: str, *, base: int = 0) -> List[int]:
    """Assemble RV32I source into a list of 32-bit instruction words."""
    items = _tokenize(source)
    labels: Dict[str, int] = {}
    pc = base
    for item in items:
        if item[0] == "label":
            if item[1] in labels:
                raise AsmError(f"duplicate label {item[1]!r}")
            labels[item[1]] = pc
        else:
            pc += 4

    words: List[int] = []
    pc = base
    for item in items:
        if item[0] == "label":
            continue
        _, mnem, args = item
        try:
            words.append(_encode(mnem, args, labels, pc))
        except AsmError as exc:
            raise AsmError(f"at pc={pc:#x} ({mnem} {', '.join(args)}): {exc}")
        pc += 4
    return words


def _encode(mnem: str, args: List[str], labels: Dict[str, int], pc: int) -> int:
    if mnem in _ALU_R:
        f7, f3 = _ALU_R[mnem]
        return _r_type(f7, _reg(args[2]), _reg(args[1]), f3, _reg(args[0]), 0x33)
    if mnem in _ALU_I:
        imm = _check_range(_imm(args[2], labels, pc), 12, "immediate")
        return _i_type(imm, _reg(args[1]), _ALU_I[mnem], _reg(args[0]), 0x13)
    if mnem in _SHIFT_I:
        f7, f3 = _SHIFT_I[mnem]
        shamt = _abs(args[2], labels)
        if not 0 <= shamt < 32:
            raise AsmError(f"shift amount {shamt} out of range")
        return _i_type((f7 << 5) | shamt, _reg(args[1]), f3, _reg(args[0]), 0x13)
    if mnem in _BRANCH:
        offset = _imm(args[2], labels, pc)
        _check_range(offset, 13, "branch offset")
        return _b_type(offset, _reg(args[1]), _reg(args[0]), _BRANCH[mnem], 0x63)
    if mnem == "lui":
        return _u_type(_abs(args[1], labels), _reg(args[0]), 0x37)
    if mnem == "auipc":
        return _u_type(_abs(args[1], labels), _reg(args[0]), 0x17)
    if mnem == "jal":
        offset = _imm(args[1], labels, pc)
        _check_range(offset, 21, "jump offset")
        return _j_type(offset, _reg(args[0]), 0x6F)
    if mnem == "jalr":
        imm = _check_range(_abs(args[2], labels), 12, "immediate")
        return _i_type(imm, _reg(args[1]), 0, _reg(args[0]), 0x67)
    if mnem in ("lw", "sw"):
        m = _MEM_RE.match(args[1].replace(" ", ""))
        if not m:
            raise AsmError(f"bad memory operand {args[1]!r}")
        imm = _check_range(int(m.group(1), 0), 12, "offset")
        base_reg = _reg(m.group(2))
        if mnem == "lw":
            return _i_type(imm, base_reg, 2, _reg(args[0]), 0x03)
        return _s_type(imm, _reg(args[0]), base_reg, 2, 0x23)
    if mnem == "ebreak":
        return _i_type(1, 0, 0, 0, 0x73)
    raise AsmError(f"unknown mnemonic {mnem!r}")
