"""SoC command protocol: integer-word messages over the NoC.

Every message on the prototype SoC's NoC is a list of 32-bit integer
words whose first word is an opcode.  The RISC-V controller issues PE
and global-memory commands; PEs exchange data with global memory; done
tokens flow back to the controller.

PE commands
-----------
====================  ==================================================
``[LOAD, g, gb, sb, n]``     fetch n words from gmem node g at gb into
                             scratchpad at sb
``[STORE, g, gb, sb, n]``    write n scratchpad words at sb to gmem
``[COMPUTE, k, a, b, d, n, p]``  run kernel k over n elements:
                             operands at scratchpad a and b, result at
                             d, scalar parameter p
``[NOTIFY, dest, token]``    send ``[DONE, token]`` to node dest
``[WRITE_SPAD, sb, w...]``   direct scratchpad write (testbench use)
====================  ==================================================

Global-memory commands: ``[GM_READ, base, n, reply, tag]`` answered by
``[GM_DATA, tag, w...]``; ``[GM_WRITE, base, reply, tag, w...]``
acknowledged by ``[GM_DATA, tag]`` (``reply == NO_REPLY`` suppresses the
ack).  A PE's STORE waits for the ack before executing its next command,
so a NOTIFY queued after a STORE proves the data is durably in global
memory.

Kernel ids < :data:`KERNEL_FP_BASE` operate on 32-bit integers; adding
:data:`KERNEL_FP_BASE` selects the FP16 bit-pattern variant computed
with MatchLib's float functions.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Cmd", "Kernel", "KERNEL_FP_BASE", "NO_REPLY"]

#: Sentinel reply-node value meaning "do not acknowledge".
NO_REPLY = 0xFFFFFFFF


class Cmd(IntEnum):
    """Message opcodes (first word of every NoC message)."""

    LOAD = 1
    STORE = 2
    COMPUTE = 3
    NOTIFY = 4
    WRITE_SPAD = 5
    GM_READ = 16
    GM_DATA = 17
    GM_WRITE = 18
    DONE = 32


#: Kernel ids at or above this value are FP16; below, 32-bit integer.
KERNEL_FP_BASE = 16


class Kernel(IntEnum):
    """PE compute kernels (integer variants; add KERNEL_FP_BASE for FP16)."""

    VADD = 1       # d[i] = a[i] + b[i]
    VMUL = 2       # d[i] = a[i] * b[i]
    VSUM = 3       # d[0] = sum(a[i])        (reduction)
    VMAX = 4       # d[0] = max(a[i])        (reduction)
    DOT = 5        # d[0] = sum(a[i] * b[i]) (dot product)
    RELU = 6       # d[i] = max(a[i], 0)     (signed for int)
    SCALE = 7      # d[i] = a[i] * p
    L2DIST = 8     # d[0] = sum((a[i]-b[i])^2)
    ADDS = 9       # d[i] = a[i] + p
    VMIN = 10      # d[i] = min(a[i], b[i])

    # FP16 variants.
    VADD_FP16 = VADD + KERNEL_FP_BASE
    VMUL_FP16 = VMUL + KERNEL_FP_BASE
    VSUM_FP16 = VSUM + KERNEL_FP_BASE
    VMAX_FP16 = VMAX + KERNEL_FP_BASE
    DOT_FP16 = DOT + KERNEL_FP_BASE
    RELU_FP16 = RELU + KERNEL_FP_BASE
    SCALE_FP16 = SCALE + KERNEL_FP_BASE
    L2DIST_FP16 = L2DIST + KERNEL_FP_BASE
    ADDS_FP16 = ADDS + KERNEL_FP_BASE
    VMIN_FP16 = VMIN + KERNEL_FP_BASE
