"""The prototype SoC (Figure 5): RISC-V controller, PE spatial array,
WHVC NoC, and banked global memory.

Quick use::

    from repro.soc import PrototypeSoC, Cmd, Kernel

    commands = [
        ("send", 0, [Cmd.WRITE_SPAD, 0, 1, 2, 3, 4]),
        ("send", 0, [Cmd.COMPUTE, Kernel.VSUM, 0, 0, 16, 4, 0]),
        ("send", 0, [Cmd.STORE, 17, 0, 16, 1]),
        ("send", 0, [Cmd.NOTIFY, 16, 0]),
        ("wait", 1),
    ]
    soc = PrototypeSoC(commands=commands)
    soc.run()
    assert soc.gmem_left.dump(0, 1) == [10]
"""

from .asm import AsmError, assemble
from .chip import PrototypeSoC
from .controller import Controller, command_player_firmware, encode_command_table
from .global_memory import GlobalMemory
from .pe import ProcessingElement
from .protocol import Cmd, Kernel, KERNEL_FP_BASE, NO_REPLY
from .riscv import MMIO_BASE, RiscvCore, RiscvError

__all__ = [
    "PrototypeSoC",
    "ProcessingElement",
    "GlobalMemory",
    "Controller",
    "command_player_firmware",
    "encode_command_table",
    "Cmd",
    "Kernel",
    "KERNEL_FP_BASE",
    "NO_REPLY",
    "RiscvCore",
    "RiscvError",
    "MMIO_BASE",
    "assemble",
    "AsmError",
]
