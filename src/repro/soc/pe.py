"""Processing element (Figure 5).

Each PE contains a banked scratchpad (MatchLib arbitrated scratchpad),
a vector datapath (MatchLib vector + float functions), a control unit
(the command interpreter below), and router interface logic (the mesh
network interface).  PEs execute compute kernels — vector multiply,
dot product, reduction, and friends — on data staged in the scratchpad,
exactly the organization the paper describes.

Timing model: the datapath processes ``lanes`` elements per cycle; every
scratchpad access goes through the arbitrated banks (conflict-free at
unit stride when ``n_banks == lanes``); LOAD/STORE traffic crosses the
NoC as flit-per-word messages.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional

from ..design.hierarchy import component_scope
from ..kernel import Gate
from ..matchlib.arbitrated_scratchpad import ArbitratedScratchpad
from ..matchlib.fp import FP16, fp_add, fp_mul, fp_mul_add
from ..noc.mesh import NetworkInterface
from .protocol import Cmd, KERNEL_FP_BASE, Kernel, NO_REPLY

__all__ = ["ProcessingElement"]

_MASK = 0xFFFFFFFF


def _s32(value: int) -> int:
    value &= _MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class ProcessingElement:
    """One PE: scratchpad + vector datapath + control + router interface."""

    def __init__(self, sim, clock, ni: NetworkInterface, *, lanes: int = 8,
                 spad_words: int = 1024, name: Optional[str] = None):
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        requested = name or f"pe{ni.node}"
        self.node = ni.node
        self.lanes = lanes
        self.ni = ni
        with component_scope(sim, requested, kind="ProcessingElement",
                             obj=self, clock=clock) as inst:
            self.name = inst.name if inst is not None else requested
            self.spad = ArbitratedScratchpad(
                n_requesters=lanes, n_banks=lanes,
                bank_entries=-(-spad_words // lanes), width=32,
            )
            self._inbox: deque = deque()
            self._data_msgs: dict[int, List[int]] = {}
            self._next_tag = 0
            self.commands_executed = 0
            self.elements_processed = 0
            # Idle-wait point for the compiled backend: every message
            # arrival reopens it (plain one-cycle wait threaded).
            self._gate = Gate()
            ni.handler = self._on_message
            sim.add_thread(self._run(), clock, name="ctl")

    # ------------------------------------------------------------------
    # router interface
    # ------------------------------------------------------------------
    def _on_message(self, src: int, payloads: List[int]) -> None:
        if payloads and payloads[0] == Cmd.GM_DATA:
            self._data_msgs[payloads[1]] = payloads[2:]
        else:
            self._inbox.append(payloads)
        self._gate.open()

    # ------------------------------------------------------------------
    # scratchpad access (through the arbitrated banks)
    # ------------------------------------------------------------------
    def _spad_write(self, base: int, words: List[int]) -> Generator:
        # One vector per cycle through the banks: unit stride across
        # n_banks == lanes never conflicts, so each chunk is a single
        # conflict-free arbitration round (see write_vector).
        lanes = self.lanes
        spad = self.spad
        for chunk_base in range(0, len(words), lanes):
            spad.write_vector(
                base + chunk_base,
                [w & _MASK for w in words[chunk_base:chunk_base + lanes]])
            yield

    def _spad_read(self, base: int, length: int) -> Generator:
        lanes = self.lanes
        spad = self.spad
        out: List[int] = []
        for chunk_base in range(0, length, lanes):
            out += spad.read_vector(base + chunk_base,
                                    min(lanes, length - chunk_base))
            yield
        return out

    # ------------------------------------------------------------------
    # control unit
    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            if not self._inbox:
                yield self._gate   # idle until the next message arrives
                continue
            msg = self._inbox.popleft()
            op = msg[0]
            if op == Cmd.LOAD:
                yield from self._do_load(*msg[1:5])
            elif op == Cmd.STORE:
                yield from self._do_store(*msg[1:5])
            elif op == Cmd.COMPUTE:
                yield from self._do_compute(*msg[1:7])
            elif op == Cmd.NOTIFY:
                self.ni.send(msg[1], [int(Cmd.DONE), msg[2]])
            elif op == Cmd.WRITE_SPAD:
                yield from self._spad_write(msg[1], msg[2:])
            else:
                raise ValueError(f"{self.name}: unknown command {op}")
            self.commands_executed += 1
            yield

    def _do_load(self, gmem_node: int, gmem_base: int, spad_base: int,
                 length: int) -> Generator:
        tag = self._next_tag
        self._next_tag += 1
        self.ni.send(gmem_node,
                     [int(Cmd.GM_READ), gmem_base, length, self.node, tag])
        while tag not in self._data_msgs:
            yield self._gate
        words = self._data_msgs.pop(tag)
        if len(words) != length:
            raise ValueError(
                f"{self.name}: LOAD expected {length} words, got {len(words)}")
        yield from self._spad_write(spad_base, words)

    def _do_store(self, gmem_node: int, gmem_base: int, spad_base: int,
                  length: int) -> Generator:
        words = yield from self._spad_read(spad_base, length)
        tag = self._next_tag
        self._next_tag += 1
        self.ni.send(gmem_node, [int(Cmd.GM_WRITE), gmem_base, self.node, tag]
                     + list(words))
        # Wait for the write ack so later commands (NOTIFY) order after
        # the data is durably in global memory.
        while tag not in self._data_msgs:
            yield self._gate
        self._data_msgs.pop(tag)

    # ------------------------------------------------------------------
    # vector datapath
    # ------------------------------------------------------------------
    def _do_compute(self, kernel: int, a_base: int, b_base: int,
                    dst_base: int, length: int, param: int) -> Generator:
        is_fp = kernel >= KERNEL_FP_BASE
        base_kernel = Kernel(kernel - KERNEL_FP_BASE if is_fp else kernel)
        a = yield from self._spad_read(a_base, length)
        needs_b = base_kernel in (Kernel.VADD, Kernel.VMUL, Kernel.DOT,
                                  Kernel.L2DIST, Kernel.VMIN)
        b = (yield from self._spad_read(b_base, length)) if needs_b else None
        result = self._kernel_fp(base_kernel, a, b, param) if is_fp \
            else self._kernel_int(base_kernel, a, b, param)
        # Datapath cost: lanes elements per cycle.  Kept as per-cycle
        # yields: a single bucketed `yield n` would subscribe the thread
        # n edges early and wake it ahead of threads that resubscribed in
        # the interim, shifting same-cycle arbitration order — measurably
        # different finish times on multi-PE workloads.  Cycle-exactness
        # with the recorded experiment tables wins over the speedup here.
        for _ in range(-(-length // self.lanes)):
            yield
        self.elements_processed += length
        yield from self._spad_write(dst_base, result)

    def _kernel_int(self, kernel: Kernel, a: List[int],
                    b: Optional[List[int]], param: int) -> List[int]:
        sa = [_s32(x) for x in a]
        if kernel == Kernel.VADD:
            return [(x + y) & _MASK for x, y in zip(a, b)]
        if kernel == Kernel.VMUL:
            return [(_s32(x) * _s32(y)) & _MASK for x, y in zip(a, b)]
        if kernel == Kernel.VSUM:
            return [sum(sa) & _MASK]
        if kernel == Kernel.VMAX:
            return [max(sa) & _MASK]
        if kernel == Kernel.DOT:
            return [sum(_s32(x) * _s32(y) for x, y in zip(a, b)) & _MASK]
        if kernel == Kernel.RELU:
            return [x if _s32(x) > 0 else 0 for x in a]
        if kernel == Kernel.SCALE:
            return [(_s32(x) * _s32(param)) & _MASK for x in a]
        if kernel == Kernel.L2DIST:
            return [sum((_s32(x) - _s32(y)) ** 2
                        for x, y in zip(a, b)) & _MASK]
        if kernel == Kernel.ADDS:
            return [(x + _s32(param)) & _MASK for x in a]
        if kernel == Kernel.VMIN:
            return [min(_s32(x), _s32(y)) & _MASK for x, y in zip(a, b)]
        raise ValueError(f"unknown kernel {kernel}")

    def _kernel_fp(self, kernel: Kernel, a: List[int],
                   b: Optional[List[int]], param: int) -> List[int]:
        spec = FP16
        if kernel == Kernel.VADD:
            return [fp_add(spec, x, y) for x, y in zip(a, b)]
        if kernel == Kernel.VMUL:
            return [fp_mul(spec, x, y) for x, y in zip(a, b)]
        if kernel == Kernel.VSUM:
            acc = spec.zero()
            for x in a:
                acc = fp_add(spec, acc, x)
            return [acc]
        if kernel == Kernel.VMAX:
            return [max(a, key=spec.decode)]
        if kernel == Kernel.DOT:
            acc = spec.zero()
            for x, y in zip(a, b):
                acc = fp_mul_add(spec, x, y, acc)
            return [acc]
        if kernel == Kernel.RELU:
            return [x if spec.decode(x) > 0 else spec.zero() for x in a]
        if kernel == Kernel.SCALE:
            return [fp_mul(spec, x, param) for x in a]
        if kernel == Kernel.L2DIST:
            acc = spec.zero()
            for x, y in zip(a, b):
                diff = fp_add(spec, x, y ^ (1 << (spec.width - 1)))  # x - y
                acc = fp_mul_add(spec, diff, diff, acc)
            return [acc]
        if kernel == Kernel.ADDS:
            return [fp_add(spec, x, param) for x in a]
        if kernel == Kernel.VMIN:
            return [min(x, y, key=spec.decode) for x, y in zip(a, b)]
        raise ValueError(f"unknown kernel {kernel}")
