"""repro.compile — the graph-compiled simulation backend.

The threaded kernel (:mod:`repro.kernel.simulator`) is the semantic
reference: generator threads resumed through a delta loop, channels
ticked by per-edge callbacks, clocks merged against a timed-event heap.
Profiling the paper's PE-array experiments shows where that model pays:
on ``pe_scaling`` roughly 60 thread resumes and 110 channel ticks run
*per cycle*, and in steady state almost all of them observe nothing —
idle consumers polling empty queues, empty channels updating empty
bookkeeping.

This package removes that cost without changing a single observable:

1. :func:`repro.design.lower.lower` compiles the elaborated design into
   a static event/dataflow graph (:class:`~repro.design.lower.
   NodeSchedule`): clock edge, channel-tick nodes, thread nodes,
   data/handshake edges.
2. :mod:`.capability` proves the design shape is one the engine can
   execute equivalently (single periodic clock, no methods, no timed
   events, no instrumentation) — anything else **falls back** to the
   threaded kernel, recording why.
3. :class:`.engine.CompiledEngine` executes the schedule with a flat,
   allocation-free dispatch loop: parked threads and idle channels are
   skipped, a posedge costs four integer updates, and any construct
   outside the proof detaches back to the threaded loop mid-run with
   exact state restoration.

Select it per simulator (``Simulator(backend="compiled")``), ambiently
(:func:`repro.kernel.use_backend`), or from the command line
(``python -m repro <experiment> --backend compiled``).  The contract —
checked by ``tests/test_compiled_backend.py`` across every registered
experiment — is that results are byte-identical to the threaded kernel.

See ``docs/COMPILED_BACKEND.md`` for the full pipeline walkthrough.
"""

from __future__ import annotations

from typing import Optional

from .cache import (CompileCache, compile_cache_stats, process_cache,
                    reset_compile_cache)
from .capability import check as check_capability
from .engine import CompiledEngine

__all__ = ["CompiledEngine", "CompileCache", "check_capability",
           "try_attach", "process_cache", "compile_cache_stats",
           "reset_compile_cache"]


def try_attach(sim) -> Optional[CompiledEngine]:
    """Attach a compiled engine to ``sim`` if the design is eligible.

    Called lazily by the simulator at the first run of a
    ``backend="compiled"`` request.  On ineligibility the reason is
    recorded (``sim.backend_fallback_reason``) and ``None`` is
    returned; the caller proceeds with the threaded kernel.

    Warm sweep sessions stamp ``sim._compile_cache_key`` with their
    structural digest; for those the per-process :class:`CompileCache`
    is consulted first, so re-attaching after a snapshot restore or a
    mid-run detach skips the capability check and the lowering pass.
    """
    key = sim._compile_cache_key
    cache = process_cache() if key is not None else None
    if cache is not None:
        hit = cache.lookup(key, sim)
        if hit is not None:
            schedule, reason = hit
            if reason is not None:
                sim._backend_fallback = reason
                return None
            engine = CompiledEngine(sim, schedule)
            sim._engine = engine
            return engine
    reason = check_capability(sim)
    schedule = None
    if reason is None:
        from ..design.lower import lower

        try:
            schedule = lower(sim)
        except Exception as exc:  # defensive: lowering must never kill a run
            reason = f"lowering failed: {exc}"
    if cache is not None:
        cache.store(key, sim, schedule, reason)
    if schedule is not None:
        engine = CompiledEngine(sim, schedule)
        sim._engine = engine
        return engine
    sim._backend_fallback = reason
    return None
