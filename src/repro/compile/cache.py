"""Per-process compile cache: structural digest → lowered schedule.

A warm sweep session (:mod:`repro.sweep.warm`) stamps its simulator
with the group's structural digest (``sim._compile_cache_key``).  When
such a simulator attaches the compiled backend, :func:`repro.compile.
try_attach` consults this cache: a hit skips both the capability check
and the lowering pass and re-wraps the cached
:class:`~repro.design.lower.NodeSchedule` in a fresh engine.

The schedule holds direct references to the design's channel and
thread objects, so an entry is **only valid for the very simulator it
was lowered from** — lookups verify identity through a weak reference.
That is exactly the warm-sweep shape: one long-lived simulator per
structural digest per worker process, whose engine must cheaply
re-attach after a snapshot restore or a mid-run detach.  A point whose
session was evicted reconstructs the design anyway, and reconstruction
implies re-elaboration, so cross-simulator reuse would never be sound.

Capability *failures* are cached too (digest → reason), so a
warm-but-ineligible design records its fallback without re-walking the
checks on every point.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Optional

__all__ = ["CompileCache", "process_cache", "compile_cache_stats",
           "reset_compile_cache"]


class CompileCache:
    """Bounded LRU of lowering results, keyed by structural digest."""

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        # digest -> (weakref-to-sim, schedule-or-None, reason-or-None)
        self._entries: "OrderedDict[str, tuple]" = OrderedDict()
        self.lookups = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str, sim) -> Optional[tuple]:
        """Return ``(schedule, reason)`` for ``sim``, or None on miss."""
        self.lookups += 1
        entry = self._entries.get(key)
        if entry is not None and entry[0]() is sim:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1], entry[2]
        self.misses += 1
        return None

    def store(self, key: str, sim, schedule, reason: Optional[str]) -> None:
        self._entries[key] = (weakref.ref(sim), schedule, reason)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        return {"entries": len(self._entries), "lookups": self.lookups,
                "hits": self.hits, "misses": self.misses}


#: The process-global instance try_attach consults.
_CACHE = CompileCache()


def process_cache() -> CompileCache:
    return _CACHE


def compile_cache_stats() -> dict:
    return _CACHE.stats()


def reset_compile_cache() -> None:
    """Drop every entry and zero the counters (test isolation)."""
    global _CACHE
    _CACHE = CompileCache()
