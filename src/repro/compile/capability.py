"""Capability check: can this design run under the compiled backend?

The compiled engine (:mod:`repro.compile.engine`) proves its
equivalence to the threaded kernel cycle by cycle, and that proof only
holds for a specific — but very common — design shape: one periodic
clock driving channel cores and clocked generator threads.  Everything
else (GALS clock generators, pausible clocking, combinational methods,
timed events, observability instrumentation) routes scheduling through
machinery the flat dispatch loop does not replicate, so such designs
**fall back** to the threaded kernel rather than risk divergence.

:func:`check` returns ``None`` when the design is eligible, or a
human-readable reason string otherwise.  The reason is recorded on the
simulator (``sim.backend_fallback_reason``) and surfaced by
``python -m repro stats`` so a silent fallback is always diagnosable.
The full supported/unsupported construct table lives in
``docs/COMPILED_BACKEND.md``.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["check"]


def check(sim) -> Optional[str]:
    """Return ``None`` if ``sim`` can attach the compiled engine, else why not."""
    clocks = sim._clocks
    if len(clocks) != 1:
        return (f"design has {len(clocks)} clocks "
                f"(the compiled backend supports exactly one)")
    clock = clocks[0]
    if clock.generator is not None:
        return (f"clock {clock.name!r} has a per-edge period generator "
                f"(GALS / adaptive clocking)")
    if clock._stopped:
        return f"clock {clock.name!r} is stopped"
    if not clock._callbacks:
        return ("clock has no per-edge callbacks; the threaded kernel's "
                "idle-skip already elides empty cycles")
    if clock._pause_until > clock.next_edge:
        return (f"clock {clock.name!r} has a pending pause "
                f"(pausible clocking)")
    if sim._queue:
        return (f"{len(sim._queue)} pending timed events in the heap "
                f"(delayed notifications, unclocked threads, or methods)")
    if sim._method_count:
        return (f"{sim._method_count} combinational methods registered "
                f"(signal sensitivity needs the delta scheduler)")
    if sim.telemetry is not None:
        return "telemetry hub attached (per-delta instrumentation)"
    if sim.trace is not None:
        return "signal trace attached (per-commit recording)"
    if sim.watchdog is not None:
        return "progress watchdog attached (per-resume attribution)"
    return None
