"""The compiled dispatch engine: a flat, allocation-free scheduler loop.

Where the threaded kernel re-derives the schedule every timestep — heap
peeks, wakeup-bucket dict churn, a generator resume for every polling
thread, a ``_tick`` call for every channel — this engine executes the
static node schedule produced by :func:`repro.design.lower.lower` with
three elisions, each individually proven equivalent:

1. **Parked threads.**  A thread that yields its :class:`~repro.kernel.
   Gate` keeps its scheduling *slot* but is not resumed until the gate
   opens (a message handler calls ``gate.open()``, or the engine opens
   it when a watched channel's tick leaves data visible).  Under the
   threaded kernel ``yield gate`` is a plain one-posedge wait, so the
   only difference is *which* iterations of an idle polling loop run —
   iterations that by construction observe nothing and do nothing.
2. **Idle channels.**  A channel core whose tick is a pure no-op (empty
   queue and transit, no stall RNG to advance, no fault hook) stops
   being ticked; the first ``do_push``/``set_stall`` reactivates it and
   re-credits ``stats.cycles`` for the skipped span, whose occupancy
   contribution is exactly zero.
3. **No per-cycle rescheduling.**  Pollers stay in a flat order list
   (slot position = threaded resume order); a posedge is four integer
   updates instead of heap traffic.

Everything the elisions cannot prove equivalent **detaches**: the engine
files every live thread back into the clock's wakeup bucket in slot
order (preserving the threaded resume order), reactivates every skipped
channel, and hands the very same run back to the threaded loop.  Detach
triggers are cheap per-cycle guards: a stopped or paused clock, a timed
event in the heap, a channel/method/thread registered mid-run.

Resume-order equivalence (the byte-identity argument, spelled out in
``docs/COMPILED_BACKEND.md``): the threaded kernel wakes a cycle's
bucket in subscription-chronological order.  Sleepers (``yield n``,
n > 1) subscribed on an earlier cycle than any poller's implicit
re-subscription, so due sleepers *prepend* to the order list; pollers
keep their slots (re-subscription in resume order is order-preserving);
event-woken threads resume in a later delta and re-subscribe after
every poller, so they *append*.
"""

from __future__ import annotations

from bisect import bisect_left

from ..kernel.backend import record_run
from ..kernel.simulator import (DeltaOverflow, Event, Gate, SimulationError,
                                TimeBudgetExceeded, _TIME_BUDGET, _monotonic)

__all__ = ["CompiledEngine"]

#: _scan_idx value outside the order scan: any unpark inserts "ahead".
_NOT_SCANNING = 1 << 60


class CompiledEngine:
    """Flat dispatch loop bound to one simulator and its single clock.

    Construct via :func:`repro.compile.try_attach`, never directly: the
    capability check (:mod:`repro.compile.capability`) must pass first.
    """

    __slots__ = ("sim", "clock", "schedule", "_live", "_live_keys",
                 "_parked_map", "_key_lo", "_key_hi", "_scan_idx",
                 "_ticks", "_active", "_active_keys", "_tick_index",
                 "_cb_count", "_thread_count")

    def __init__(self, sim, schedule):
        from ..connections.channel import FastChannel

        self.sim = sim
        self.clock = schedule.clock
        self.schedule = schedule
        #: Dispatch slots: ``[key, thread, generator, state]`` where
        #: state is None (polls every cycle) or a Gate.  ``_live`` holds
        #: only runnable pollers, sorted by slot key (prepends take
        #: decreasing keys, appends increasing ones, so key order IS the
        #: threaded resume order).  An entry whose gate stays closed is
        #: *removed* from the scan and registered on the gate; the
        #: gate's ``open()`` bisect-inserts it back at its key — parked
        #: threads cost nothing per cycle, not even a skip test.  Starts
        #: empty: threads flow in from the wakeup buckets, which is what
        #: makes attach valid at any run boundary.
        self._live: list = []
        self._live_keys: list = []
        self._parked_map: dict = {}
        self._key_lo = 0
        self._key_hi = 0
        self._scan_idx = _NOT_SCANNING
        # Tick nodes in registration order: (channel, None) for managed
        # FastChannel cores, (None, fn) for callbacks that must run
        # every cycle.  Rebuilt from clock._callbacks (not the schedule)
        # so engine and clock can never disagree about order.
        ticks = []
        for cb in self.clock._callbacks:
            owner = getattr(cb, "__self__", None)
            if isinstance(owner, FastChannel) and cb.__name__ == "_tick":
                ticks.append((owner, None))
                owner._compiled = self
            else:
                ticks.append((None, cb))
        self._ticks = ticks
        # The per-cycle loop walks only the *active* subsequence of the
        # tick list: a skipped channel costs nothing until reactivated.
        # Deactivation deletes in place and reactivation bisect-inserts
        # by registration index, so active ticks always run in exact
        # registration order — unmanaged callbacks observe the same
        # channel states they would under the threaded kernel.
        self._active = [(idx, ch, fn) for idx, (ch, fn) in enumerate(ticks)
                        if ch is None or ch._skip_from is None]
        self._active_keys = [idx for idx, _ch, _fn in self._active]
        self._tick_index = {id(ch): idx for idx, (ch, _fn) in enumerate(ticks)
                            if ch is not None}
        self._cb_count = len(self.clock._callbacks)
        self._thread_count = len(sim._threads)

    # ------------------------------------------------------------------
    # channel hooks (called from FastChannel.do_push / set_stall)
    # ------------------------------------------------------------------
    def _channel_pushed(self, ch) -> None:
        """Reactivate a skipped channel the moment state re-enters it."""
        skip_from = ch._skip_from
        if skip_from is not None:
            ch._skip_from = None
            # Every skipped tick would have added one cycle of zero
            # occupancy: re-credit the cycle count, occupancy_sum += 0.
            ch.stats.cycles += self.clock.cycles - skip_from
            idx = self._tick_index[id(ch)]
            pos = bisect_left(self._active_keys, idx)
            self._active_keys.insert(pos, idx)
            self._active.insert(pos, (idx, ch, None))

    _channel_touched = _channel_pushed

    # ------------------------------------------------------------------
    # gate hook (called from Gate.open when parked threads wait there)
    # ------------------------------------------------------------------
    def _unpark(self, entries) -> None:
        """Re-insert parked entries at their slot keys.

        Mid-scan semantics mirror the threaded kernel exactly: a thread
        whose slot lies *behind* the scan cursor polled earlier this
        cycle (before the opener ran) and so resumes next cycle — the
        cursor bump keeps it un-scanned; a slot *ahead* of the cursor is
        reached later this same cycle, just as the threaded bucket would
        reach the still-subscribed poller after the opener.
        """
        live = self._live
        keys = self._live_keys
        parked_map = self._parked_map
        for entry in entries:
            del parked_map[id(entry)]
            key = entry[0]
            pos = bisect_left(keys, key)
            keys.insert(pos, key)
            live.insert(pos, entry)
            if pos <= self._scan_idx:
                self._scan_idx += 1

    # ------------------------------------------------------------------
    # detach: hand the simulation back to the threaded kernel
    # ------------------------------------------------------------------
    def detach(self, reason: str) -> None:
        """Restore exact threaded-kernel state and record the fallback.

        Live order-list threads are re-filed into the next cycle's
        wakeup bucket *in slot order*: sleepers already in that bucket
        subscribed chronologically earlier, so bucket order — hence
        resume order — matches an uninterrupted threaded run.
        """
        sim = self.sim
        clock = self.clock
        subscribe = clock._subscribe
        entries = self._live + list(self._parked_map.values())
        entries.sort(key=lambda e: e[0])
        for entry in entries:
            state = entry[3]
            if state is not None:
                state._waiters = None  # the gate's parked registration
            if not entry[1].done:
                subscribe(entry[1])
        self._live = []
        self._live_keys = []
        self._parked_map.clear()
        for ch, _fn in self._ticks:
            if ch is not None:
                skip_from = ch._skip_from
                if skip_from is not None:
                    ch._skip_from = None
                    ch.stats.cycles += clock.cycles - skip_from
                ch._compiled = None
        sim._engine = None
        sim._backend_fallback = reason
        record_run("threaded", reason)

    def reset(self) -> None:
        """Return to the just-attached state (snapshot restore path).

        Unlike :meth:`detach`, nothing is re-subscribed, no skipped
        cycles are re-credited, and no fallback is recorded: the kernel
        restore that calls this rewinds wakeup buckets and channel
        stats through the snapshot base, so the engine only clears its
        own dispatch state and resumes ticking every channel.  The
        engine stays attached — the next run reuses the same lowered
        schedule with no re-attach cost.
        """
        for entry in self._parked_map.values():
            gate = entry[3]
            if gate is not None:
                gate._waiters = None
        self._live.clear()
        self._live_keys.clear()
        self._parked_map.clear()
        self._key_lo = 0
        self._key_hi = 0
        self._scan_idx = _NOT_SCANNING
        ticks = self._ticks
        for ch, _fn in ticks:
            if ch is not None:
                ch._skip_from = None
                ch._compiled = self
        self._active = [(idx, ch, fn) for idx, (ch, fn) in enumerate(ticks)]
        self._active_keys = list(range(len(ticks)))
        self._thread_count = len(self.sim._threads)

    def _settle(self) -> None:
        """Re-credit skipped cycles on still-idle channels at a run
        boundary, so ``stats.cycles`` (hence ``mean_occupancy`` and
        link utilization) reads byte-identical to the threaded kernel
        whenever the simulation is observable."""
        cycles = self.clock.cycles
        for ch, _fn in self._ticks:
            if ch is not None:
                skip_from = ch._skip_from
                if skip_from is not None and skip_from != cycles:
                    ch.stats.cycles += cycles - skip_from
                    ch._skip_from = cycles

    # ------------------------------------------------------------------
    # thread dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, thread, emit) -> None:
        """Resume a thread entering the live list (due sleeper or
        event-woken); ``emit`` places its new slot (prepend vs append)
        and assigns the slot key (the 0 here is a placeholder)."""
        sim = self.sim
        gen = thread.gen
        try:
            request = next(gen)
        except StopIteration:
            thread.done = True
            sim._thread_finished(thread)
            return
        if request is None:
            emit([0, thread, gen, None])
            return
        kind = type(request)
        if kind is Gate:
            emit([0, thread, gen, request])
            return
        if kind is int:
            if request == 1:
                emit([0, thread, gen, None])
                return
            if request <= 0:
                raise SimulationError(
                    f"thread {thread.name!r} yielded non-positive wait "
                    f"{request}")
            self.clock._subscribe(thread, request)
            return
        if isinstance(request, Event):
            request._subscribe(thread)
            return
        if isinstance(request, int):  # bool/IntEnum yields
            if int(request) == 1:
                emit([0, thread, gen, None])
            else:
                self.clock._subscribe(thread, int(request))
            return
        raise SimulationError(
            f"thread {thread.name!r} yielded unsupported value {request!r}")

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def run(self, until, max_steps, stop_clock, stop_cycles):
        """Execute timesteps until a stop condition or a detach trigger.

        Returns ``(True, steps)`` when the run completed under the
        engine, ``(False, steps)`` after a detach — the caller's
        threaded loop then continues the same run with the remaining
        step budget.
        """
        sim = self.sim
        clock = self.clock
        # Observability may attach between runs; it needs the threaded
        # kernel's instrumented delta loop.
        if sim.telemetry is not None or sim.trace is not None \
                or sim.watchdog is not None:
            self.detach("observability attached between runs")
            return (False, 0)

        live = self._live
        keys = self._live_keys
        parked_map = self._parked_map
        active = self._active
        active_keys = self._active_keys
        queue = sim._queue
        wakeups = clock._wakeups
        callbacks = clock._callbacks
        threads = sim._threads
        cb_count = self._cb_count
        thread_count = self._thread_count
        dirty = sim._dirty_signals
        budget = _TIME_BUDGET  # stable list identity; usually empty
        steps = 0

        while True:
            if budget and _monotonic() >= budget[-1]:
                raise TimeBudgetExceeded(
                    f"simulation at t={sim.now} exceeded its wall-clock "
                    f"budget (see repro.kernel.time_budget)"
                )
            next_edge = clock.next_edge
            if until is not None and next_edge > until:
                sim.now = until
                self._settle()
                record_run("compiled")
                return (True, steps)
            # Detach guards: constructs the schedule does not cover.
            if (queue or clock._stopped
                    or clock._pause_until > next_edge
                    or len(callbacks) != cb_count
                    or sim._method_count
                    or len(threads) != thread_count):
                if queue:
                    reason = "timed event scheduled in the heap"
                elif clock._stopped:
                    reason = f"clock {clock.name!r} stopped"
                elif clock._pause_until > next_edge:
                    reason = f"clock {clock.name!r} paused"
                elif len(callbacks) != cb_count:
                    reason = "per-edge callback registered mid-run"
                elif sim._method_count:
                    reason = "combinational method registered mid-run"
                else:
                    reason = "thread registered mid-run"
                self.detach(reason)
                return (False, steps)

            # -- phase 1: the clock edge (four updates, no heap traffic)
            sim.now = next_edge
            clock.cycles = cycles = clock.cycles + 1
            clock.next_edge = next_edge + clock.period
            clock._seq = next(sim._seq)

            # -- phase 2: channel ticks; only the active subsequence runs
            # (a channel that goes idle here drops out of the walk until
            # a push/set_stall re-inserts it at its registration slot)
            i = 0
            while i < len(active):
                ch = active[i][1]
                if ch is not None:
                    ch._tick(clock)
                    if ch._queue:
                        if not ch._stalled:
                            gates = ch._wake_gates
                            if gates is not None:
                                for gate in gates:
                                    gate._open = True
                                    waiters = gate._waiters
                                    if waiters is not None:
                                        gate._waiters = None
                                        self._unpark(waiters[1])
                        i += 1
                    elif (not ch._transit
                          and ch._stall_probability == 0.0
                          and ch._faults is None):
                        ch._skip_from = cycles
                        del active[i]
                        del active_keys[i]
                    else:
                        i += 1
                else:
                    active[i][2](clock)
                    i += 1

            # -- phase 3a: due sleepers resume first (chronologically the
            # earliest subscribers in this cycle's threaded bucket).
            # Their new slots are *prepended* — but only after the live
            # scan below, so this cycle resumes them exactly once.
            front = None
            if wakeups:
                waiters = wakeups.pop(cycles, None)
                if waiters is not None:
                    if clock._next_wakeup == cycles:
                        clock._next_wakeup = (min(wakeups) if wakeups
                                              else None)
                    if waiters:
                        front = []
                        emit = front.append
                        for thread in waiters:
                            if not thread.done:
                                self._dispatch(thread, emit)

            # -- phase 3b: the live scan (slot-key order = resume order).
            # ``self._scan_idx`` is the cursor; resumed code may open a
            # gate, and ``_unpark`` bumps the cursor when it inserts a
            # slot at or behind it — so the cursor is re-read after every
            # ``next()`` and every removal happens at the re-read index.
            self._scan_idx = 0
            while True:
                k = self._scan_idx
                if k >= len(live):
                    break
                entry = live[k]
                state = entry[3]
                if state is not None:
                    if not state._open:
                        # Park: drop out of the scan entirely until the
                        # gate's open() re-inserts the slot at its key.
                        del live[k]
                        del keys[k]
                        waiters = state._waiters
                        if waiters is None:
                            state._waiters = (self, [entry])
                        else:
                            waiters[1].append(entry)
                        parked_map[id(entry)] = entry
                        continue        # cursor now points at the next slot
                    state._open = False
                try:
                    request = next(entry[2])
                except StopIteration:
                    thread = entry[1]
                    thread.done = True
                    sim._thread_finished(thread)
                    k = self._scan_idx
                    del live[k]
                    del keys[k]
                    continue
                if request is None:
                    entry[3] = None
                    self._scan_idx += 1
                    continue
                kind = type(request)
                if kind is Gate:
                    entry[3] = request
                    self._scan_idx += 1
                    continue
                if kind is int:
                    if request == 1:
                        entry[3] = None
                        self._scan_idx += 1
                        continue
                    if request <= 0:
                        self._scan_idx = _NOT_SCANNING
                        raise SimulationError(
                            f"thread {entry[1].name!r} yielded non-positive "
                            f"wait {request}")
                    k = self._scan_idx
                    del live[k]
                    del keys[k]
                    clock._subscribe(entry[1], request)
                    continue
                if isinstance(request, Event):
                    k = self._scan_idx
                    del live[k]
                    del keys[k]
                    request._subscribe(entry[1])
                    continue
                if isinstance(request, int):  # bool/IntEnum yields
                    if int(request) == 1:
                        entry[3] = None
                        self._scan_idx += 1
                        continue
                    k = self._scan_idx
                    del live[k]
                    del keys[k]
                    clock._subscribe(entry[1], int(request))
                    continue
                self._scan_idx = _NOT_SCANNING
                raise SimulationError(
                    f"thread {entry[1].name!r} yielded unsupported value "
                    f"{request!r}")
            self._scan_idx = _NOT_SCANNING

            if front:
                key_lo = self._key_lo - len(front)
                self._key_lo = key_lo
                new_keys = []
                for entry in front:
                    entry[0] = key_lo
                    new_keys.append(key_lo)
                    key_lo += 1
                keys[0:0] = new_keys
                live[0:0] = front

            # -- phase 4: extra deltas (event notifications made threads
            # runnable; they re-enter at the END of the live list —
            # threaded re-subscription in a later delta lands after
            # every poller)
            if sim._runnable or dirty:
                deltas = 1
                max_deltas = sim.MAX_DELTAS_PER_STEP

                def emit(entry):
                    key = self._key_hi + 1
                    self._key_hi = key
                    entry[0] = key
                    keys.append(key)
                    live.append(entry)

                while sim._runnable or dirty:
                    if dirty:
                        # Update phase (no methods exist: commit only).
                        for sig in dirty:
                            sig._dirty = False
                            nxt = sig._next
                            if nxt != sig._value:
                                sig._value = nxt
                        dirty.clear()
                    runnable = sim._runnable
                    if runnable:
                        deltas += 1
                        if deltas > max_deltas:
                            raise DeltaOverflow(
                                f"timestep at t={sim.now} did not converge "
                                f"after {max_deltas} delta cycles")
                        sim._runnable = []
                        sim._runnable_set.clear()
                        for proc in runnable:
                            if not proc.done:
                                self._dispatch(proc, emit)

            steps += 1
            if max_steps is not None and steps >= max_steps:
                self._settle()
                record_run("compiled")
                return (True, steps)
            if stop_clock is not None and stop_clock.cycles >= stop_cycles:
                self._settle()
                record_run("compiled")
                return (True, steps)
