"""Signal-level LI channel implementations (the "RTL" reference models).

These models implement the valid/ready/msg handshake with real
:class:`~repro.kernel.signal.Signal` objects and SystemC evaluate/update
semantics.  They serve as the reproduction's stand-in for HLS-generated
RTL simulated in a Verilog simulator: every handshake is evaluated at
signal granularity cycle by cycle, which is both the cycle-count reference
(Figures 3 and 6) and deliberately the slow path.

Handshake discipline
--------------------
A transfer fires in cycle *k* when ``valid`` and ``ready`` are both high
during cycle *k* (i.e. as committed by the end of timestep *k*'s deltas
and therefore as read by every process at edge *k+1*).  Occupancy-derived
outputs (``ready`` of a Buffer, ``valid`` of a Pipeline) are *registered*:
they reflect the occupancy after the previous edge.  The combinational
"cut-through" paths that define Bypass and Pipeline channels (Figure 2)
are driven by combinational methods, so within a cycle:

* Bypass: ``deq.valid = occ > 0 or enq.valid`` (valid cuts through,
  ready path is cut),
* Pipeline: ``enq.ready = occ < cap or deq.ready`` (ready cuts through,
  valid path is cut),
* Buffer: both paths cut (fully registered FIFO),
* Combinational: producer and consumer share one interface (pure wires).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..kernel import BitSignal, Signal

__all__ = [
    "SignalInterface",
    "CombinationalSignal",
    "BufferSignal",
    "BypassSignal",
    "PipelineSignal",
    "stream_producer",
    "stream_consumer",
]


class SignalInterface:
    """One valid/ready/msg handshake interface (a Connections port's wires)."""

    __slots__ = ("valid", "ready", "msg", "name")

    def __init__(self, sim, name: str = "iface", *, valid_init: int = 0,
                 ready_init: int = 0):
        self.name = name
        self.valid = BitSignal(sim, valid_init, name=f"{name}.valid")
        self.ready = BitSignal(sim, ready_init, name=f"{name}.ready")
        self.msg = Signal(sim, None, name=f"{name}.msg")

    def fired(self) -> bool:
        """True if a transfer completed last cycle (read at a posedge)."""
        return bool(self.valid.read() and self.ready.read())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SignalInterface({self.name!r}, v={self.valid.read()}, "
                f"r={self.ready.read()})")


class CombinationalSignal:
    """Combinational channel: the two endpoints are the same wires."""

    def __init__(self, sim, clock, *, name: str = "comb"):
        self.name = name
        self.enq = SignalInterface(sim, name=f"{name}.io")
        self.deq = self.enq  # pure wires: producer and consumer share them


class _QueuedSignalChannel:
    """Shared machinery for Buffer/Bypass/Pipeline signal channels."""

    kind = "queued"

    def __init__(self, sim, clock, *, capacity: int, name: str):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.clock = clock
        self.name = name
        self.capacity = capacity
        self.queue: deque = deque()
        self.enq = SignalInterface(sim, name=f"{name}.enq")
        self.deq = SignalInterface(sim, name=f"{name}.deq")
        # Registered occupancy signal: drives combinational methods.
        self.occ = Signal(sim, 0, name=f"{name}.occ")
        self.head = Signal(sim, None, name=f"{name}.head")
        # Stall state as a signal so combinational methods re-trigger on it.
        self.stall_sig = Signal(sim, 0, name=f"{name}.stall")
        self.transfers_in = 0
        self.transfers_out = 0
        self._stall_probability = 0.0
        self._stall_rng = None
        self._stalled = False
        self._init_outputs()
        clock.on_edge(self._edge)

    # subclass hooks ----------------------------------------------------
    def _init_outputs(self) -> None:
        raise NotImplementedError

    def _fire_conditions(self) -> tuple[bool, bool]:
        """Return (fire_enq, fire_deq) from committed signal values."""
        raise NotImplementedError

    def _update_queue(self, fire_enq: bool, fire_deq: bool) -> None:
        raise NotImplementedError

    # engine ------------------------------------------------------------
    def _edge(self, clock) -> None:
        # NOTE: stall injection is applied only when driving ``deq.valid``
        # (below / in subclasses), never here: the consumer judges a fire
        # from the committed valid&ready wires, and the channel must agree
        # with it or messages would be duplicated or lost.
        fire_enq, fire_deq = self._fire_conditions()
        self._update_queue(fire_enq, fire_deq)
        if fire_enq:
            self.transfers_in += 1
        if fire_deq:
            self.transfers_out += 1
        if self._stall_probability > 0.0:
            self._stalled = self._stall_rng.random() < self._stall_probability
            self.stall_sig.write(1 if self._stalled else 0)
        self.occ.write(len(self.queue))
        self.head.write(self.queue[0] if self.queue else None)
        self._drive_registered_outputs()

    def _drive_registered_outputs(self) -> None:
        raise NotImplementedError

    def set_stall(self, probability: float, *, seed: int = 0) -> None:
        """Randomly withhold ``deq.valid`` (verification stall injection)."""
        import random as _random

        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"stall probability must be in [0,1], got {probability}")
        self._stall_probability = probability
        if probability > 0.0:
            self._stall_rng = _random.Random(seed)
        else:
            # Full reset: probability 0 restores the pristine state
            # (same contract as FastChannel.set_stall).
            self._stall_rng = None
            self._stalled = False
            self.stall_sig.write(0)

    @property
    def occupancy(self) -> int:
        return len(self.queue)


class BufferSignal(_QueuedSignalChannel):
    """Fully registered FIFO channel (Figure 2d)."""

    kind = "Buffer"

    def _init_outputs(self) -> None:
        self.enq.ready.write(1)   # empty at reset
        self.deq.valid.write(0)

    def _fire_conditions(self) -> tuple[bool, bool]:
        fire_enq = bool(self.enq.valid.read() and self.enq.ready.read())
        fire_deq = bool(self.deq.valid.read() and self.deq.ready.read())
        return fire_enq, fire_deq

    def _update_queue(self, fire_enq: bool, fire_deq: bool) -> None:
        if fire_deq:
            self.queue.popleft()
        if fire_enq:
            self.queue.append(self.enq.msg.read())

    def _drive_registered_outputs(self) -> None:
        occ = len(self.queue)
        self.enq.ready.write(1 if occ < self.capacity else 0)
        self.deq.valid.write(1 if (occ > 0 and not self._stalled) else 0)
        self.deq.msg.write(self.queue[0] if self.queue else None)


class BypassSignal(_QueuedSignalChannel):
    """Bypass channel: DEQ enabled when empty (Figure 2b).

    ``deq.valid``/``deq.msg`` cut through combinationally from the
    enqueue side when the internal buffer is empty.
    """

    kind = "Bypass"

    def _init_outputs(self) -> None:
        self.enq.ready.write(1)
        # Combinational valid/msg cut-through.
        sim = self.enq.valid.sim
        sim.add_method(self._drive_deq, sensitive=[self.enq.valid, self.enq.msg,
                                                   self.occ, self.head,
                                                   self.stall_sig],
                       name=f"{self.name}.bypass_valid")

    def _drive_deq(self) -> None:
        occ = self.occ.read()
        if self.stall_sig.read():
            self.deq.valid.write(0)
            return
        if occ > 0:
            self.deq.valid.write(1)
            self.deq.msg.write(self.head.read())
        else:
            self.deq.valid.write(self.enq.valid.read())
            self.deq.msg.write(self.enq.msg.read())

    def _fire_conditions(self) -> tuple[bool, bool]:
        fire_enq = bool(self.enq.valid.read() and self.enq.ready.read())
        fire_deq = bool(self.deq.valid.read() and self.deq.ready.read())
        return fire_enq, fire_deq

    def _update_queue(self, fire_enq: bool, fire_deq: bool) -> None:
        if self.queue:
            if fire_deq:
                self.queue.popleft()
            if fire_enq:
                self.queue.append(self.enq.msg.read())
        else:
            # Empty: a simultaneous enq+deq passes straight through.
            if fire_enq and not fire_deq:
                self.queue.append(self.enq.msg.read())

    def _drive_registered_outputs(self) -> None:
        occ = len(self.queue)
        self.enq.ready.write(1 if occ < self.capacity else 0)


class PipelineSignal(_QueuedSignalChannel):
    """Pipeline channel: ENQ enabled when full if dequeuing (Figure 2c).

    ``enq.ready`` cuts through combinationally from ``deq.ready`` when the
    buffer is full.
    """

    kind = "Pipeline"

    def _init_outputs(self) -> None:
        self.deq.valid.write(0)
        sim = self.enq.valid.sim
        sim.add_method(self._drive_ready, sensitive=[self.deq.ready, self.occ],
                       name=f"{self.name}.pipeline_ready")

    def _drive_ready(self) -> None:
        occ = self.occ.read()
        self.enq.ready.write(1 if (occ < self.capacity or self.deq.ready.read()) else 0)

    def _fire_conditions(self) -> tuple[bool, bool]:
        fire_enq = bool(self.enq.valid.read() and self.enq.ready.read())
        fire_deq = bool(self.deq.valid.read() and self.deq.ready.read())
        return fire_enq, fire_deq

    def _update_queue(self, fire_enq: bool, fire_deq: bool) -> None:
        if fire_deq:
            self.queue.popleft()
        if fire_enq:
            if len(self.queue) >= self.capacity:
                raise RuntimeError(
                    f"pipeline channel {self.name!r} overflow — handshake bug"
                )
            self.queue.append(self.enq.msg.read())

    def _drive_registered_outputs(self) -> None:
        occ = len(self.queue)
        self.deq.valid.write(1 if (occ > 0 and not self._stalled) else 0)
        self.deq.msg.write(self.queue[0] if self.queue else None)


# ----------------------------------------------------------------------
# RTL-style testbench drivers
# ----------------------------------------------------------------------
def stream_producer(iface: SignalInterface, data):
    """Clocked thread: streams ``data`` through a signal interface.

    Holds ``valid`` high while messages remain (standard RTL driver).
    """
    items = list(data)
    index = 0
    if not items:
        iface.valid.write(0)
        return
    iface.valid.write(1)
    iface.msg.write(items[index])
    while True:
        yield
        if iface.ready.read() and iface.valid.read():
            index += 1
            if index >= len(items):
                iface.valid.write(0)
                return
            iface.msg.write(items[index])


def stream_consumer(iface: SignalInterface, sink: list, count: Optional[int] = None,
                    done: Optional[dict] = None):
    """Clocked thread: drains a signal interface into ``sink``.

    Holds ``ready`` high; records each fired message.  Stops after
    ``count`` messages if given, else runs forever.  If ``done`` is
    given, records the completion simulation time under ``"time"``.
    """
    iface.ready.write(1)
    received = 0
    while True:
        yield
        if iface.valid.read() and iface.ready.read():
            sink.append(iface.msg.read())
            received += 1
            if count is not None and received >= count:
                iface.ready.write(0)
                if done is not None:
                    done["time"] = iface.valid.sim.now
                return
