"""Connections ports: the unified ``In``/``Out`` terminal objects.

Reproduces Table 1 of the paper: components declare polymorphic ``In[T]``
and ``Out[T]`` ports and are later bound to any channel kind, which is
what lets one component implementation be reused behind a combinational
wire, a FIFO, or a network (section 2.3).

API mapping to the paper:

===============  ======================
paper            this library
===============  ======================
``Pop()``        ``yield from port.pop()``
``PopNB()``      ``port.pop_nb()``
``Push()``       ``yield from port.push(msg)``
``PushNB()``     ``port.push_nb(msg)``
===============  ======================

Blocking operations are generators: they retry once per clock cycle until
they succeed, so they must be invoked with ``yield from`` inside a
clocked thread.
"""

from __future__ import annotations

from typing import Any, Generator, Generic, Optional, TypeVar

from ..design.hierarchy import current_scope
from .channel import FastChannel

__all__ = ["In", "Out", "PortError"]

T = TypeVar("T")


class PortError(RuntimeError):
    """Raised on illegal port use (unbound, double-bound, ...)."""


class _Port(Generic[T]):
    """Common endpoint machinery: late binding to a channel.

    Ports register into the ambient design-hierarchy scope (if one is
    open), which is how elaboration resolves channel endpoints and the
    ``unbound-port`` lint knows what to check.  A port constructed
    outside any scope but *with* a channel registers at the root of that
    channel's hierarchy (the testbench-driver compatibility path); one
    constructed with neither stays invisible to elaboration.
    ``optional=True`` marks boundary terminals that legitimately stay
    unbound (e.g. mesh-edge router ports) so lint skips them.
    """

    __slots__ = ("name", "_channel", "_owner", "optional")

    def __init__(self, channel: Optional[FastChannel] = None, *,
                 name: str = "port", optional: bool = False):
        self.name = name
        self.optional = optional
        self._channel: Optional[FastChannel] = None
        scope = current_scope()
        if scope is None and channel is not None:
            # Unscoped but bound: attach to the root of the hierarchy
            # the channel lives in, so elaboration still sees the
            # endpoint (loose testbench drivers and sinks).
            owner = getattr(channel, "_design_owner", None) \
                or getattr(channel, "_design_instance", None)
            while owner is not None and owner.parent is not None:
                owner = owner.parent
            scope = owner
        self._owner = scope
        if scope is not None:
            scope.ports.append(self)
        if channel is not None:
            self.bind(channel)

    def bind(self, channel: FastChannel) -> None:
        """Bind this terminal to a channel (any kind — ports are polymorphic)."""
        if self._channel is not None:
            raise PortError(f"port {self.name!r} is already bound")
        self._channel = channel

    @property
    def channel(self) -> FastChannel:
        if self._channel is None:
            raise PortError(f"port {self.name!r} is not bound to a channel")
        return self._channel

    @property
    def bound(self) -> bool:
        return self._channel is not None

    @property
    def path(self) -> str:
        """Hierarchical dotted path (equals ``name`` outside any scope)."""
        owner = self._owner
        return owner.join(self.name) if owner is not None else self.name


class Out(_Port[T]):
    """Producer-side terminal (``Out<T>`` in the paper)."""

    def push_nb(self, msg: T) -> bool:
        """Non-blocking push; True if the channel accepted the message."""
        return self.channel.do_push(msg)

    def push(self, msg: T) -> Generator:
        """Blocking push: retries every cycle until the channel accepts."""
        channel = self.channel
        if channel.do_push(msg):
            return
        # First attempt refused: if a watchdog is attached to the
        # channel's simulator, register this thread as blocked in a push
        # handshake so hangs get a path-level diagnosis.  Disabled-path
        # cost is zero — this code only runs once backpressure appears.
        watchdog = getattr(getattr(channel, "sim", None), "watchdog", None)
        token = watchdog.on_block(self, channel, "push") \
            if watchdog is not None else None
        while True:
            yield
            if channel.do_push(msg):
                if token is not None:
                    watchdog.on_unblock(token)
                return

    def can_push(self) -> bool:
        """Would ``push_nb`` succeed this cycle (``Full()`` inverse)?"""
        return self.channel.can_push()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Out({self.name!r})"


class In(_Port[T]):
    """Consumer-side terminal (``In<T>`` in the paper)."""

    def pop_nb(self) -> tuple[bool, Optional[T]]:
        """Non-blocking pop; returns ``(ok, msg)``."""
        return self.channel.do_pop()

    def pop(self) -> Generator:
        """Blocking pop: retries every cycle; returns the message."""
        channel = self.channel
        ok, msg = channel.do_pop()
        if ok:
            return msg
        # See Out.push: register with the simulator's watchdog (if any)
        # only once the first attempt has failed.
        watchdog = getattr(getattr(channel, "sim", None), "watchdog", None)
        token = watchdog.on_block(self, channel, "pop") \
            if watchdog is not None else None
        while True:
            yield
            ok, msg = channel.do_pop()
            if ok:
                if token is not None:
                    watchdog.on_unblock(token)
                return msg

    def peek_nb(self) -> tuple[bool, Optional[T]]:
        """Inspect the head message without consuming it."""
        return self.channel.peek()

    def can_pop(self) -> bool:
        """Would ``pop_nb`` succeed this cycle (``Empty()`` inverse)?"""
        return self.channel.can_pop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"In({self.name!r})"
