"""Sim-accurate ports over signal-level channels via helper threads.

This is the literal mechanism of the paper's sim-accurate model
(section 2.3): the delayed valid/ready operations are *eliminated from
the main thread of execution*.  A producer's ``push`` deposits into an
output buffer and a TX helper thread transmits from all output buffers
with valid data; a consumer's ``pop`` takes from an input buffer filled
by an RX helper thread.  The module's main thread therefore observes the
same elapsed cycles as HLS-generated RTL.

These ports bind to :class:`~repro.connections.signal_channel.SignalInterface`
wires, so they can talk to RTL-style models directly — the reproduction's
analog of SystemC/RTL co-simulation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .signal_channel import SignalInterface

__all__ = ["SimAccurateOut", "SimAccurateIn"]


class SimAccurateOut:
    """Producer port with a TX helper thread driving the wires."""

    def __init__(self, sim, clock, iface: SignalInterface, *,
                 buffer_depth: int = 2, name: str = "tx"):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        self.iface = iface
        self.name = name
        self.buffer_depth = buffer_depth
        self._buf: deque = deque()
        self._driving = False
        sim.add_thread(self._tx_helper(), clock, name=f"{name}.tx_helper")

    def _tx_helper(self) -> Generator:
        """Helper thread: transmits buffered messages over valid/msg."""
        while True:
            # Check the outcome of last cycle's drive first.
            if self._driving and self.iface.ready.read():
                self._buf.popleft()
            if self._buf:
                self.iface.valid.write(1)
                self.iface.msg.write(self._buf[0])
                self._driving = True
            else:
                self.iface.valid.write(0)
                self._driving = False
            yield

    # main-thread API: zero simulated cycles ---------------------------
    def push_nb(self, msg: Any) -> bool:
        """Non-blocking push into the output buffer; free in the main thread."""
        if len(self._buf) >= self.buffer_depth:
            return False
        self._buf.append(msg)
        return True

    def push(self, msg: Any) -> Generator:
        """Blocking push: waits only when the output buffer is full."""
        while not self.push_nb(msg):
            yield

    def idle(self) -> bool:
        """True once every buffered message has been transmitted."""
        return not self._buf and not self._driving


class SimAccurateIn:
    """Consumer port with an RX helper thread receiving from the wires."""

    def __init__(self, sim, clock, iface: SignalInterface, *,
                 buffer_depth: int = 2, name: str = "rx"):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        self.iface = iface
        self.name = name
        self.buffer_depth = buffer_depth
        self._buf: deque = deque()
        self._ready_driven = False
        sim.add_thread(self._rx_helper(), clock, name=f"{name}.rx_helper")

    def _rx_helper(self) -> Generator:
        """Helper thread: receives messages into the input buffer."""
        while True:
            if self._ready_driven and self.iface.valid.read():
                self._buf.append(self.iface.msg.read())
            if len(self._buf) < self.buffer_depth:
                self.iface.ready.write(1)
                self._ready_driven = True
            else:
                self.iface.ready.write(0)
                self._ready_driven = False
            yield

    # main-thread API: zero simulated cycles ---------------------------
    def pop_nb(self) -> tuple[bool, Optional[Any]]:
        """Non-blocking pop from the input buffer; free in the main thread."""
        if self._buf:
            return True, self._buf.popleft()
        return False, None

    def pop(self) -> Generator:
        """Blocking pop: waits only while the input buffer is empty."""
        while True:
            if self._buf:
                return self._buf.popleft()
            yield
