"""RTL-cosimulation channel: the Figure 6 "RTL" mode of the SoC.

:class:`RtlChannel` is drop-in compatible with the fast
:class:`~repro.connections.channel.FastChannel` protocol, so any module
built on ``In``/``Out`` ports runs unchanged — but every message actually
traverses a signal-level :class:`BufferSignal` with the full valid/ready
wire dance, driven by TX/RX helper threads (the paper's sim-accurate
bridge mechanism applied at channel granularity).

Consequences, both deliberate reproductions of the paper's Figure 6
setup:

* simulation is much slower (per-transfer signal commits, combinational
  method wakeups, and helper-thread scheduling — the cost profile of
  simulating HLS-generated RTL), and
* each hop gains a few cycles of pipeline latency the fast model does
  not have, producing the small elapsed-cycle discrepancy the paper
  attributes to "unit pipeline latencies not included in the SystemC
  models".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from ..design.hierarchy import component_scope
from .signal_channel import BufferSignal

__all__ = ["RtlChannel"]


class RtlChannel:
    """Signal-level channel behind the fast-channel protocol."""

    #: Channel-kind tag reported by elaboration/telemetry.
    kind = "Rtl"

    def __init__(self, sim, clock, *, capacity: int = 8,
                 name: Optional[str] = None, buffer_depth: int = 2):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        requested = name if name is not None else "rtlchan"
        self.sim = sim
        self.clock = clock
        self.capacity = capacity
        self._tx: deque = deque()
        self._rx: deque = deque()
        self._depth = buffer_depth
        self._tx_driving = False
        self._rx_ready = False
        self._pushed = False
        self._popped = False
        # Fault-injection hook (see repro.faults.plan.ChannelFaults).
        self._faults = None
        with component_scope(sim, requested, kind="RtlChannel", obj=self,
                             clock=clock, default_name=name is None) as inst:
            self.name = inst.name if inst is not None else requested
            self.core = BufferSignal(sim, clock, name="core",
                                     capacity=capacity)
            sim.add_thread(self._tx_run(), clock, name="tx")
            sim.add_thread(self._rx_run(), clock, name="rx")
        # Register the adapter as a channel-like endpoint of its parent
        # scope (it shares the instance name claimed above).
        design = getattr(sim, "design", None)
        if design is not None and inst is not None:
            design.register_channel(self, requested, instance=inst)
        clock.on_edge(self._tick)

    def _tick(self, clock) -> None:
        self._pushed = False
        self._popped = False

    # ------------------------------------------------------------------
    # helper threads: the actual signal-level handshakes
    # ------------------------------------------------------------------
    def _tx_run(self) -> Generator:
        enq = self.core.enq
        while True:
            if self._tx_driving and enq.ready.read():
                self._tx.popleft()
            if self._tx:
                enq.valid.write(1)
                enq.msg.write(self._tx[0])
                self._tx_driving = True
            else:
                enq.valid.write(0)
                self._tx_driving = False
            yield

    def _rx_run(self) -> Generator:
        deq = self.core.deq
        while True:
            if self._rx_ready and deq.valid.read():
                self._rx.append(deq.msg.read())
            if len(self._rx) < self._depth:
                deq.ready.write(1)
                self._rx_ready = True
            else:
                deq.ready.write(0)
                self._rx_ready = False
            yield

    # ------------------------------------------------------------------
    # FastChannel protocol (what In/Out ports call)
    # ------------------------------------------------------------------
    def can_push(self) -> bool:
        return (not self._pushed) and len(self._tx) < self._depth

    def do_push(self, msg: Any) -> bool:
        if not self.can_push():
            return False
        self._pushed = True
        faults = self._faults
        if faults is not None:
            action, msg = faults.on_push(msg)
            if action == 1:  # drop: accepted by the handshake, then lost
                return True
            if action == 2:  # duplicate
                self._tx.append(msg)
        self._tx.append(msg)
        return True

    def can_pop(self) -> bool:
        return (not self._popped) and bool(self._rx)

    def do_pop(self) -> tuple[bool, Optional[Any]]:
        if not self.can_pop():
            return False, None
        self._popped = True
        return True, self._rx.popleft()

    def peek(self) -> tuple[bool, Optional[Any]]:
        if not self._rx:
            return False, None
        return True, self._rx[0]

    def set_stall(self, probability: float, *, seed: int = 0) -> None:
        """Delegate stall injection to the signal core."""
        self.core.set_stall(probability, seed=seed)

    @property
    def occupancy(self) -> int:
        return len(self._tx) + self.core.occupancy + len(self._rx)

    @property
    def path(self) -> str:
        inst = getattr(self, "_design_instance", None)
        return inst.path if inst is not None else self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RtlChannel({self.path!r}, occ={self.occupancy})"
