"""Signal-accurate port routines (the paper's *flawed* baseline model).

Reproduces the code snippet in section 2.3 of the paper: every
non-blocking push/pop performs its delayed valid/ready operations inside
the *calling thread*::

    valid.write(True)   # set valid bit
    msg.write(bits)     # write data bits
    yield               # one cycle delay
    valid.write(False)  # clear valid bit
    success = ready.read()

Because the ``wait`` lives in the main thread, a module that touches P
ports per iteration pays ~P cycles per iteration where the HLS-scheduled
RTL would overlap them all in one cycle.  This is the source of the
growing elapsed-cycles error in Figure 3, and is exactly the defect the
sim-accurate model (:mod:`repro.connections.sim_accurate` and the fast
channels in :mod:`repro.connections.channel`) eliminates.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .signal_channel import SignalInterface

__all__ = ["SignalAccurateOut", "SignalAccurateIn"]


class SignalAccurateOut:
    """Producer port doing delayed valid handling in the main thread."""

    __slots__ = ("iface", "name")

    def __init__(self, iface: SignalInterface, *, name: str = "sa_out"):
        self.iface = iface
        self.name = name

    def push_nb(self, msg: Any) -> Generator:
        """Non-blocking push; costs one cycle in the calling thread.

        Use as ``ok = yield from port.push_nb(msg)``.
        """
        self.iface.valid.write(1)
        self.iface.msg.write(msg)
        yield  # one cycle delay (the delayed operation)
        self.iface.valid.write(0)
        return bool(self.iface.ready.read())

    def push(self, msg: Any) -> Generator:
        """Blocking push: retries (one cycle each) until accepted."""
        while True:
            ok = yield from self.push_nb(msg)
            if ok:
                return


class SignalAccurateIn:
    """Consumer port doing delayed ready handling in the main thread."""

    __slots__ = ("iface", "name")

    def __init__(self, iface: SignalInterface, *, name: str = "sa_in"):
        self.iface = iface
        self.name = name

    def pop_nb(self) -> Generator:
        """Non-blocking pop; costs one cycle in the calling thread.

        Use as ``ok, msg = yield from port.pop_nb()``.
        """
        self.iface.ready.write(1)
        yield  # one cycle delay (the delayed operation)
        self.iface.ready.write(0)
        if self.iface.valid.read():
            return True, self.iface.msg.read()
        return False, None

    def pop(self) -> Generator:
        """Blocking pop: retries (one cycle each) until a message arrives."""
        while True:
            ok, msg = yield from self.pop_nb()
            if ok:
                return msg
