"""Packetizer / DePacketizer channel endpoints (Table 1, Figure 2e).

A Packetizer converts each message into a sequence of flits suitable for
transport over a network; a DePacketizer reassembles them.  Together they
let the same producer/consumer pair communicate over a NoC instead of a
dedicated channel without any change to the producer or consumer code —
the LI-design property the paper leans on (section 2.3).

The flit format here is deliberately minimal: ``Flit(seq, last, payload,
dest)``.  The NoC routers in :mod:`repro.noc` transport these flits and
add their own wormhole framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from .ports import In, Out

__all__ = ["Flit", "Packetizer", "DePacketizer", "int_serializer",
           "int_deserializer", "xor_checksum"]


def xor_checksum(payloads: list) -> int:
    """Fold a flit payload list into an end-to-end XOR checksum.

    Payloads must be ints (the :func:`int_serializer` family).  XOR
    detects every single-bit corruption of any one flit — the property
    the fault-injection campaigns rely on to prove corruption is
    *detected* rather than silently delivered (see
    ``docs/ROBUSTNESS.md``).
    """
    value = 0
    for p in payloads:
        value ^= p
    return value


@dataclass(frozen=True)
class Flit:
    """One network flit carrying a fragment of a message."""

    seq: int
    last: bool
    payload: Any
    dest: int = 0


def int_serializer(width: int, flit_width: int) -> Callable[[int], list[int]]:
    """Build a serializer slicing a ``width``-bit int into flit payloads.

    Mirrors MatchLib's Serializer: N-bit packets to M cycles of (N/M)-bit
    payloads, least-significant flit first.
    """
    if width <= 0 or flit_width <= 0:
        raise ValueError("widths must be positive")
    count = -(-width // flit_width)  # ceil division
    mask = (1 << flit_width) - 1

    def serialize(msg: int) -> list[int]:
        return [(msg >> (i * flit_width)) & mask for i in range(count)]

    return serialize


def int_deserializer(width: int, flit_width: int) -> Callable[[list[int]], int]:
    """Build the inverse of :func:`int_serializer`."""
    if width <= 0 or flit_width <= 0:
        raise ValueError("widths must be positive")
    mask = (1 << width) - 1

    def deserialize(payloads: list[int]) -> int:
        value = 0
        for i, p in enumerate(payloads):
            value |= p << (i * flit_width)
        return value & mask

    return deserialize


class Packetizer:
    """Module converting messages to flit streams.

    Ports: ``msg_in`` (messages), ``flit_out`` (flits).  One flit leaves
    per cycle — serialization of an M-flit message takes M cycles, as in
    MatchLib's Serializer.
    """

    def __init__(self, sim, clock, *, serialize: Callable[[Any], list[Any]],
                 dest_of: Callable[[Any], int] = lambda msg: 0,
                 checksum: bool = False, name: str = "packetizer"):
        self.name = name
        self.serialize = serialize
        self.dest_of = dest_of
        #: With ``checksum=True`` every message grows one trailing flit
        #: carrying :func:`xor_checksum` of its payloads, so a matching
        #: DePacketizer can *detect* in-flight payload corruption
        #: end-to-end (int payloads only).
        self.checksum = checksum
        self.msg_in: In = In(name=f"{name}.msg_in")
        self.flit_out: Out = Out(name=f"{name}.flit_out")
        self.messages_sent = 0
        sim.add_thread(self._run(), clock, name=name)

    def _run(self) -> Generator:
        while True:
            msg = yield from self.msg_in.pop()
            payloads = self.serialize(msg)
            if self.checksum:
                payloads = payloads + [xor_checksum(payloads)]
            dest = self.dest_of(msg)
            total = len(payloads)
            for seq, payload in enumerate(payloads):
                flit = Flit(seq=seq, last=(seq == total - 1),
                            payload=payload, dest=dest)
                yield from self.flit_out.push(flit)
                yield  # one flit per cycle
            self.messages_sent += 1


class DePacketizer:
    """Module reassembling flit streams into messages.

    Ports: ``flit_in`` (flits), ``msg_out`` (messages).
    """

    def __init__(self, sim, clock, *, deserialize: Callable[[list[Any]], Any],
                 checksum: bool = False, name: str = "depacketizer"):
        self.name = name
        self.deserialize = deserialize
        #: Must match the transmitting Packetizer's ``checksum`` flag.
        #: A message whose trailing checksum flit disagrees with its
        #: payloads is counted in :attr:`corrupted_messages` and dropped
        #: (detect-and-discard) instead of delivered wrong.
        self.checksum = checksum
        self.flit_in: In = In(name=f"{name}.flit_in")
        self.msg_out: Out = Out(name=f"{name}.msg_out")
        self.messages_received = 0
        self.corrupted_messages = 0
        sim.add_thread(self._run(), clock, name=name)

    def _run(self) -> Generator:
        payloads: list[Any] = []
        while True:
            flit = yield from self.flit_in.pop()
            payloads.append(flit.payload)
            if flit.last:
                if self.checksum:
                    expected = payloads.pop()
                    if xor_checksum(payloads) != expected:
                        self.corrupted_messages += 1
                        payloads = []
                        continue
                msg = self.deserialize(payloads)
                payloads = []
                yield from self.msg_out.push(msg)
                self.messages_received += 1
