"""Fast (sim-accurate) latency-insensitive channel implementations.

This is the reproduction of the *sim-accurate model* of the paper's
Connections library (section 2.3).  In the paper, push/pop handshakes are
moved out of the module's main thread into helper threads that drive the
valid/ready signals, so the main thread's elapsed cycles match
HLS-generated RTL.  Here the same effect is achieved by making the channel
itself a cycle-accurate queue updated once per clock edge, with ports that
complete non-blocking operations in zero simulated time inside the calling
thread — the end state of the paper's optimization.

Cycle semantics (shared by every kind):

* a message pushed at edge *k* becomes visible to ``pop`` at edge *k+1*
  (one-cycle handshake visibility, matching a registered valid/ready
  interface),
* at most one push and one pop complete per cycle per channel,
* backpressure is evaluated against the occupancy frozen at the start of
  the cycle, which makes results independent of thread execution order
  inside a delta cycle,
* optional ``extra_latency`` models retiming registers inserted on
  inter-partition interfaces (section 2.3).

Kind differences (capacity only; see the signal-level models in
:mod:`repro.connections.signal_channel` for the exact RTL semantics of
Bypass/Pipeline ready/valid path cutting):

=================  =================================================
Combinational      zero storage in RTL; modelled here with a 2-entry
                   skid so steady-state throughput is 1 msg/cycle
Bypass(cap)        cuts the ready path; effective capacity ``cap``
Pipeline(cap)      cuts the valid path, ENQ allowed when full if
                   dequeuing; modelled with capacity ``cap + 1``
Buffer(cap)        plain FIFO of ``cap`` entries
=================  =================================================

The residual cycle differences between this fast model and the
signal-level models are the reproduction of the paper's reported < 3 %
elapsed-cycle error (Figure 6).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Optional

__all__ = [
    "FastChannel",
    "Combinational",
    "Bypass",
    "Pipeline",
    "Buffer",
    "ChannelStats",
]


class ChannelStats:
    """Per-channel occupancy and traffic statistics (always on).

    These integer counters are cheap enough to maintain unconditionally:

    * ``transfers`` — completed pops (messages actually moved),
    * ``push_attempts`` / ``pop_attempts`` — port operations, including
      retries of blocking ``push()``/``pop()``,
    * ``push_rejections`` — attempts refused by backpressure (the
      producer saw no ready),
    * ``pop_rejections`` — attempts refused because no message was
      available (or an injected stall withheld valid),
    * ``stall_cycles`` — cycles an injected verification stall was
      active (:meth:`FastChannel.set_stall`),
    * ``occupancy_sum`` / ``cycles`` — for :attr:`mean_occupancy`.

    Occupancy *histograms* and handshake stall-cycle counters are part
    of the opt-in telemetry layer (:mod:`repro.observe`), attached only
    when the simulator has a telemetry hub.
    """

    __slots__ = ("transfers", "push_attempts", "pop_attempts",
                 "push_rejections", "pop_rejections", "stall_cycles",
                 "occupancy_sum", "cycles")

    def __init__(self) -> None:
        self.transfers = 0
        self.push_attempts = 0
        self.pop_attempts = 0
        self.push_rejections = 0
        self.pop_rejections = 0
        self.stall_cycles = 0
        self.occupancy_sum = 0
        self.cycles = 0

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.cycles if self.cycles else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChannelStats(transfers={self.transfers}, "
            f"mean_occ={self.mean_occupancy:.2f})"
        )


class FastChannel:
    """Cycle-accurate queue-based LI channel (sim-accurate model).

    Construct via the :func:`Combinational` / :func:`Bypass` /
    :func:`Pipeline` / :func:`Buffer` factories, which mirror Table 1 of
    the paper.
    """

    #: Constructor-chosen default names per kind: collisions between
    #: these dedup silently; collisions between *explicit* names are
    #: recorded for the duplicate-name lint rule.
    DEFAULT_NAMES = {
        "Combinational": "comb",
        "Bypass": "bypass",
        "Pipeline": "pipe",
        "Buffer": "buf",
    }

    __slots__ = (
        "sim", "clock", "name", "kind", "capacity", "extra_latency",
        "_queue", "_transit", "_occ_start", "_pushed", "_popped",
        "_stall_probability", "_stall_rng", "_stalled", "stats",
        "telemetry", "_design_owner", "_faults",
        "_wake_gates", "_compiled", "_skip_from",
    )

    def __init__(
        self,
        sim,
        clock,
        *,
        kind: str,
        capacity: int,
        extra_latency: int = 0,
        name: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        if extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")
        self.sim = sim
        self.clock = clock
        default = name is None
        if default:
            name = self.DEFAULT_NAMES.get(kind, "chan")
        self.name = name
        self.kind = kind
        # Register into the owning scope of the design hierarchy; the
        # claim dedups the name (``chan``, ``chan_1``, …) so telemetry
        # and VCD keys never silently merge two channels' stats.
        self._design_owner = None
        design = getattr(sim, "design", None)
        if design is not None:
            self.name = design.register_channel(self, name, default=default)
        self.capacity = capacity
        self.extra_latency = extra_latency
        self._queue: deque = deque()
        self._transit: deque = deque()  # (ready_cycle, msg) retiming stages
        self._occ_start = 0
        self._pushed = False
        self._popped = False
        self._stall_probability = 0.0
        self._stall_rng: Optional[random.Random] = None
        self._stalled = False
        # Fault-injection hook (see repro.faults.plan.ChannelFaults).
        # None by default: the hot path pays one attribute load.
        self._faults = None
        # Compiled-backend hooks (see repro.compile.engine).  ``_wake_gates``
        # are consumer Gates the engine opens when a tick leaves the queue
        # non-empty; ``_compiled`` is the attached engine (None = threaded,
        # one ``is None`` check on the push path); ``_skip_from`` is the
        # cycle the engine stopped ticking this idle channel at (None =
        # ticking normally), used to re-credit ``stats.cycles`` exactly.
        self._wake_gates = None
        self._compiled = None
        self._skip_from = None
        self.stats = ChannelStats()
        # Opt-in occupancy/stall telemetry (None when the hub is off).
        hub = getattr(sim, "telemetry", None)
        self.telemetry = hub.register_channel(self) if hub is not None else None
        clock.on_edge(self._tick)

    # ------------------------------------------------------------------
    # per-cycle update (runs before module threads at every posedge)
    # ------------------------------------------------------------------
    def _tick(self, clock) -> None:
        # Hot path: runs once per channel per posedge; keep attribute
        # loads hoisted and branches cheap.
        queue = self._queue
        transit = self._transit
        if transit:
            cycles = clock.cycles
            while transit and transit[0][0] <= cycles:
                queue.append(transit.popleft()[1])
        if self.telemetry is not None:
            self.telemetry.on_cycle(len(queue), self._popped)
        self._occ_start = len(queue) + len(transit)
        self._pushed = False
        self._popped = False
        stats = self.stats
        if self._stall_probability > 0.0:
            self._stalled = self._stall_rng.random() < self._stall_probability
            if self._stalled:
                stats.stall_cycles += 1
        stats.cycles += 1
        stats.occupancy_sum += len(queue)

    # ------------------------------------------------------------------
    # port-side operations (called by In/Out ports inside module threads)
    # ------------------------------------------------------------------
    def can_push(self) -> bool:
        return (not self._pushed) and self._occ_start + 1 <= self.capacity

    def do_push(self, msg: Any) -> bool:
        stats = self.stats
        stats.push_attempts += 1
        # inlined can_push()
        if self._pushed or self._occ_start + 1 > self.capacity:
            stats.push_rejections += 1
            if self.telemetry is not None:
                self.telemetry.on_push_rejected()
            return False
        self._pushed = True
        if self._compiled is not None:
            self._compiled._channel_pushed(self)
        faults = self._faults
        if faults is not None:
            action, msg = faults.on_push(msg)
            if action == 1:  # drop: accepted by the handshake, then lost
                return True
        # +1 models the one-cycle handshake; extra_latency adds retiming.
        ready = self.clock.cycles + 1 + self.extra_latency
        self._transit.append((ready, msg))
        self._occ_start += 1
        if faults is not None and action == 2:  # duplicate
            self._transit.append((ready, msg))
            self._occ_start += 1
        return True

    def can_pop(self) -> bool:
        return (not self._popped) and (not self._stalled) and bool(self._queue)

    def do_pop(self) -> tuple[bool, Any]:
        stats = self.stats
        stats.pop_attempts += 1
        # inlined can_pop()
        if self._popped or self._stalled or not self._queue:
            stats.pop_rejections += 1
            return False, None
        self._popped = True
        stats.transfers += 1
        return True, self._queue.popleft()

    def peek(self) -> tuple[bool, Any]:
        """Non-destructive inspection of the head message."""
        if self._stalled or not self._queue:
            return False, None
        return True, self._queue[0]

    # ------------------------------------------------------------------
    # verification hooks (section 2.3: random stall injection)
    # ------------------------------------------------------------------
    def set_stall(self, probability: float, *, seed: int = 0) -> None:
        """Randomly withhold valid with the given per-cycle probability.

        This is the paper's verification hook: modified timing of unit
        interactions without changing design or testbench code.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"stall probability must be in [0,1], got {probability}")
        self._stall_probability = probability
        if probability > 0.0:
            self._stall_rng = random.Random(seed)
        else:
            # Full reset: probability 0 restores the pristine state.
            self._stall_rng = None
            self._stalled = False
        if self._compiled is not None:
            # Stalled channels advance an RNG per tick, so the compiled
            # engine must resume (and never again skip) their ticks.
            self._compiled._channel_touched(self)

    # ------------------------------------------------------------------
    # snapshot state protocol (see repro.kernel.snapshot)
    # ------------------------------------------------------------------
    def _snapshot_state(self) -> dict:
        """Everything mutable a restore must rewind (config included:
        warm sweeps mutate capacity/stall/latency per point and rely on
        restore to reset them)."""
        stats = self.stats
        faults = self._faults
        return {
            "capacity": self.capacity,
            "extra_latency": self.extra_latency,
            "queue": tuple(self._queue),
            "transit": tuple(self._transit),
            "occ_start": self._occ_start,
            "pushed": self._pushed,
            "popped": self._popped,
            "stall_probability": self._stall_probability,
            "stall_rng": (self._stall_rng.getstate()
                          if self._stall_rng is not None else None),
            "stalled": self._stalled,
            "stats": (stats.transfers, stats.push_attempts,
                      stats.pop_attempts, stats.push_rejections,
                      stats.pop_rejections, stats.stall_cycles,
                      stats.occupancy_sum, stats.cycles),
            "faults": ((faults, faults._snapshot_state())
                       if faults is not None else None),
        }

    def _restore_state(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self.extra_latency = state["extra_latency"]
        self._queue.clear()
        self._queue.extend(state["queue"])
        self._transit.clear()
        self._transit.extend(state["transit"])
        self._occ_start = state["occ_start"]
        self._pushed = state["pushed"]
        self._popped = state["popped"]
        self._stall_probability = state["stall_probability"]
        rng_state = state["stall_rng"]
        if rng_state is None:
            self._stall_rng = None
        else:
            if self._stall_rng is None:
                self._stall_rng = random.Random()
            self._stall_rng.setstate(rng_state)
        self._stalled = state["stalled"]
        stats = self.stats
        (stats.transfers, stats.push_attempts, stats.pop_attempts,
         stats.push_rejections, stats.pop_rejections, stats.stall_cycles,
         stats.occupancy_sum, stats.cycles) = state["stats"]
        fault_state = state["faults"]
        if fault_state is None:
            self._faults = None
        else:
            self._faults = fault_state[0]
            self._faults._restore_state(fault_state[1])

    def add_wake_gate(self, gate) -> None:
        """Register a consumer's :class:`~repro.kernel.Gate`.

        The compiled engine opens registered gates whenever a tick
        leaves the queue non-empty — exactly when a polling consumer
        would first observe the message.  Inert under the threaded
        kernel (nothing reads the gates).
        """
        if self._wake_gates is None:
            self._wake_gates = [gate]
        elif gate not in self._wake_gates:
            self._wake_gates.append(gate)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Messages currently stored (committed + in transit)."""
        return len(self._queue) + len(self._transit)

    @property
    def path(self) -> str:
        """Full hierarchical dotted path (equals ``name`` at root scope)."""
        owner = self._design_owner
        return owner.join(self.name) if owner is not None else self.name

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FastChannel({self.path!r}, kind={self.kind}, occ={self.occupancy})"


def Combinational(sim, clock, *, name: Optional[str] = None,
                  extra_latency: int = 0) -> FastChannel:
    """Combinationally connects ports (Table 1).

    Zero storage in hardware; the fast model uses a 2-entry skid so that
    steady-state throughput is one message per cycle.
    """
    return FastChannel(sim, clock, kind="Combinational", capacity=2,
                       extra_latency=extra_latency, name=name)


def Bypass(sim, clock, *, capacity: int = 1, name: Optional[str] = None,
           extra_latency: int = 0) -> FastChannel:
    """Enables DEQ when empty (Table 1): cuts the ready timing path."""
    return FastChannel(sim, clock, kind="Bypass", capacity=max(capacity, 2),
                       extra_latency=extra_latency, name=name)


def Pipeline(sim, clock, *, capacity: int = 1, name: Optional[str] = None,
             extra_latency: int = 0) -> FastChannel:
    """Enables ENQ when full (Table 1): cuts the valid timing path."""
    return FastChannel(sim, clock, kind="Pipeline", capacity=capacity + 1,
                       extra_latency=extra_latency, name=name)


def Buffer(sim, clock, *, capacity: int = 8, name: Optional[str] = None,
           extra_latency: int = 0) -> FastChannel:
    """FIFO channel of ``capacity`` entries (Table 1)."""
    return FastChannel(sim, clock, kind="Buffer", capacity=capacity,
                       extra_latency=extra_latency, name=name)
