"""Connections: the paper's latency-insensitive channel library.

Three modelling levels, mirroring section 2.3:

* **fast / sim-accurate** (:mod:`.channel`, :mod:`.ports`) — the model
  used for performance simulation.  Queue-based channels updated once per
  clock edge; port operations cost zero main-thread cycles.  This is the
  default and what the rest of the library builds on.
* **signal-level** (:mod:`.signal_channel`) — valid/ready/msg wires with
  full evaluate/update semantics: the "RTL" reference.
* **signal-accurate ports** (:mod:`.signal_accurate`) — the paper's
  baseline port routines with delayed operations in the main thread,
  kept to reproduce the accuracy comparison of Figure 3.
* **sim-accurate helper-thread ports** (:mod:`.sim_accurate`) — the
  paper's mechanism for talking to signal-level wires without main-thread
  overhead (the SystemC/RTL co-simulation bridge).

Table 1 API::

    from repro.connections import In, Out, Combinational, Bypass, Pipeline, Buffer

    chan = Buffer(sim, clk, capacity=8)
    out_port = Out(chan)   # producer side:  push / push_nb
    in_port = In(chan)     # consumer side:  pop / pop_nb
"""

from .channel import (
    Buffer,
    Bypass,
    ChannelStats,
    Combinational,
    FastChannel,
    Pipeline,
)
from .packet import (DePacketizer, Flit, Packetizer, int_deserializer,
                     int_serializer, xor_checksum)
from .ports import In, Out, PortError
from .rtl_adapter import RtlChannel
from .signal_accurate import SignalAccurateIn, SignalAccurateOut
from .signal_channel import (
    BufferSignal,
    BypassSignal,
    CombinationalSignal,
    PipelineSignal,
    SignalInterface,
    stream_consumer,
    stream_producer,
)
from .sim_accurate import SimAccurateIn, SimAccurateOut

__all__ = [
    "In",
    "Out",
    "PortError",
    "FastChannel",
    "Combinational",
    "Bypass",
    "Pipeline",
    "Buffer",
    "RtlChannel",
    "ChannelStats",
    "Flit",
    "Packetizer",
    "DePacketizer",
    "int_serializer",
    "int_deserializer",
    "xor_checksum",
    "SignalInterface",
    "CombinationalSignal",
    "BufferSignal",
    "BypassSignal",
    "PipelineSignal",
    "stream_producer",
    "stream_consumer",
    "SignalAccurateOut",
    "SignalAccurateIn",
    "SimAccurateOut",
    "SimAccurateIn",
]
