"""The unit of sweep work: one (experiment, params, seed) triple.

A :class:`SweepPoint` is deliberately dumb data — no callables, no
simulator handles — so it pickles cheaply across the process pool and
hashes stably into a cache key.  The experiment name is resolved to a
runner *inside* the worker via the sweep registry
(:mod:`repro.experiments.sweeps`), which also keeps spawn-based worker
start methods working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from .serialize import canonical_json

__all__ = ["SweepPoint"]


@dataclass(frozen=True)
class SweepPoint:
    """One enumerable point of an experiment's parameter space.

    ``experiment`` names a registered sweep (see
    :data:`repro.experiments.sweeps.SWEEP_SPECS`), ``params`` are the
    keyword arguments of that experiment's point runner, and ``seed`` is
    the point's deterministic RNG seed — assigned by the space builder,
    never invented by the engine, so a point's identity fully determines
    its result.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    #: Simulation backend the point runs under ("threaded" or
    #: "compiled").  The compiled backend is differentially tested to
    #: be byte-identical, so both values *should* produce the same
    #: result — the field still enters the cache key (for non-default
    #: values) because the cache must never assert that equivalence,
    #: only observe it.
    backend: str = "threaded"

    def identity(self) -> dict:
        """The content-addressed part of the point (no runtime state).

        The default backend is omitted so existing cached results keyed
        before the field existed remain addressable.
        """
        ident = {"experiment": self.experiment, "params": dict(self.params),
                 "seed": self.seed}
        if self.backend != "threaded":
            ident["backend"] = self.backend
        return ident

    @property
    def label(self) -> str:
        """Compact human-readable tag, e.g. ``stalls[p=0.3,trial=4]#104``."""
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.experiment}[{inner}]#{self.seed}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.label

    def canonical(self) -> str:
        return canonical_json(self.identity())
