"""repro.sweep — parallel sweep engine with content-addressed caching.

Every experiment in this reproduction is an embarrassingly parallel
parameter sweep: independent, seeded simulation points whose results
only ever change when the code or the parameters do.  This package
exploits both properties:

* :class:`SweepPoint` — one (experiment, params, seed) triple, plain
  data, enumerated by each experiment's space builder (the registry
  lives in :mod:`repro.experiments.sweeps`, mirroring the
  construction-only design builders of ``repro.experiments.designs``);
* :func:`run_sweep` — executes points across a process pool with
  chunked distribution, per-point SIGALRM timeouts, retry-once-on-crash,
  and an ordered merge of per-point telemetry reports that is identical
  in content to a serial run;
* :class:`ResultCache` — a disk-backed content-addressed store keyed on
  experiment + canonical params + seed + package version + git rev,
  with LRU and max-size eviction, so re-running an unchanged sweep is
  near-instant and incremental sweeps only simulate new points;
* :mod:`.serialize` — the canonical serializer shared by the cache key,
  the merge layer, and the CLI's ``--json`` output.

Usage::

    from repro.experiments.stall_verification import sweep_space
    from repro.sweep import ResultCache, run_sweep

    points = sweep_space()                       # 40 seeded points
    result = run_sweep(points, jobs=4, cache=ResultCache(".sweep-cache"))
    print(result.summary())                      # cache traffic + wall time
    print(observe.format_report(result.report()))

From the command line::

    python -m repro sweep stall_verification --jobs 4
"""

from .cache import CacheStats, ResultCache, default_cache_dir, repo_rev
from .engine import PointOutcome, PointTimeout, SweepResult, run_sweep
from .point import SweepPoint
from .serialize import (
    NONDETERMINISTIC_FIELDS,
    canonical_digest,
    canonical_json,
    dump_json,
    to_jsonable,
)
from .warm import BatchAdapter, WarmSession

__all__ = [
    "SweepPoint",
    "run_sweep",
    "SweepResult",
    "PointOutcome",
    "PointTimeout",
    "BatchAdapter",
    "WarmSession",
    "ResultCache",
    "CacheStats",
    "default_cache_dir",
    "repo_rev",
    "canonical_json",
    "canonical_digest",
    "to_jsonable",
    "dump_json",
    "NONDETERMINISTIC_FIELDS",
]
