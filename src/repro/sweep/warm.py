"""Warm batched sweep execution: construct once, run many.

A conventional sweep pays the same fixed costs for every point: design
construction, elaboration, and — under ``backend="compiled"`` — the
capability check and lowering pass.  For the paper's architectural-
iteration loops those costs dominate, because the points themselves are
small (a few thousand cycles) while the parameter grid is large and
almost entirely *structurally shared*: hundreds of points differ only
in FIFO depths, stall schedules, or clock period.

Warm execution (``run_sweep(..., warm=True)``) amortizes the fixed
costs across each structural group:

1. pending points are grouped by **structural digest** — the canonical
   hash of the experiment, the adapter's base parameters/seed, and the
   backend (the same keying discipline the trace subsystem uses for
   incremental sweeps);
2. each group is dispatched as a batch to persistent warm workers; the
   first point to land builds the design **once** via the experiment's
   :class:`BatchAdapter`, stamps the simulator with the digest (so the
   per-process :class:`~repro.compile.cache.CompileCache` serves any
   re-attach), enables kernel snapshots, and captures the base state;
3. every point then evaluates as *mutate knobs → run → collect →
   restore*, using the kernel's snapshot/reset primitive
   (:mod:`repro.kernel.snapshot`) — restore rewinds the knob mutations
   along with all run state, so each point observes a byte-identical
   freshly-constructed simulator.

Correctness bar: a warm sweep is byte-identical to a serial or parallel
one under ``SweepResult.canonical()`` — pinned differentially by
``tests/sweep/test_warm_sweep.py`` for every registered batch adapter.

Sessions live in a small per-process cache keyed by digest, so a group
split across several pool tasks rebuilds at most once per worker, and
consecutive warm sweeps in one process skip construction entirely.
Failure containment: a point that times out or raises loses only
itself (the restore in the ``finally`` re-arms the session for the next
point), and a session whose build or restore fails demotes its
remaining points to the fresh per-point path with the reason recorded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional
from typing import Sequence, Tuple

from .point import SweepPoint
from .serialize import canonical_digest

__all__ = ["BatchAdapter", "WarmSession", "batch_adapter_for",
           "group_key", "run_warm_chunk", "reset_sessions",
           "session_count", "warm_worker_init"]


@dataclass
class WarmSession:
    """One constructed, snapshot-enabled simulation serving a group.

    ``sim`` is the live :class:`~repro.kernel.Simulator`; ``context``
    is whatever the adapter's ``build`` needs to evaluate points
    (channel handles, state dicts, the clock); ``snap`` is the base
    :class:`~repro.kernel.Snapshot` the engine restores to between
    points (stamped by the warm runner after build).
    """

    sim: Any
    context: Any = None
    snap: Any = field(default=None, repr=False)


@dataclass(frozen=True)
class BatchAdapter:
    """The construct-once map for one experiment's warm sweeps.

    ``safe_params`` are the knobs ``run`` can re-apply to a built
    session (everything else is structural and keys the group);
    ``base_params(params)`` / ``base_seed(params, seed)`` canonicalize
    a point onto its group's build configuration — the same contract as
    :class:`repro.trace.adapter.ReplayAdapter`, and experiments with
    both typically share the functions.

    ``build(base_params, base_seed)`` constructs the design **without
    running it** and returns a :class:`WarmSession`; any testbench
    state that accumulates across runs must be registered for rewind
    with :meth:`Simulator.on_restore`.  ``run(session, params, seed)``
    applies one point's knobs (capacity, stall schedule, period, …),
    runs the simulation, and returns a result record **byte-identical**
    to the plain point runner's — it must not restore; the warm runner
    owns the restore-in-finally.
    """

    safe_params: FrozenSet[str]
    base_params: Callable[[dict], dict]
    base_seed: Callable[[dict, int], int]
    build: Callable[[dict, int], WarmSession]
    run: Callable[[WarmSession, dict, int], dict]


def batch_adapter_for(experiment: str) -> Optional[BatchAdapter]:
    """The registered batch adapter for a sweep, or ``None``."""
    from .. import registry

    return registry.get_sweep(experiment).batch


def group_key(point: SweepPoint,
              adapter: BatchAdapter) -> Tuple[str, dict, int]:
    """``(digest, base_params, base_seed)`` for a point's warm group.

    The digest mirrors the incremental engine's structural-base keying
    (experiment + canonical base params + base seed) and additionally
    folds in a non-default backend, because the session is built under
    the point's backend and the compile cache is keyed by this digest.
    """
    bparams = adapter.base_params(dict(point.params))
    bseed = adapter.base_seed(dict(point.params), point.seed)
    payload: Dict[str, Any] = {"experiment": point.experiment,
                               "params": bparams, "seed": bseed}
    if point.backend != "threaded":
        payload["backend"] = point.backend
    return canonical_digest(payload), bparams, bseed


# ----------------------------------------------------------------------
# per-process session cache (worker side)
# ----------------------------------------------------------------------
#: digest -> WarmSession.  Sessions hold a full constructed design, so
#: the bound is deliberately small; an evicted group simply rebuilds.
_SESSIONS: "OrderedDict[str, WarmSession]" = OrderedDict()
_MAX_SESSIONS = 4


def reset_sessions() -> None:
    """Drop every cached warm session (test isolation)."""
    _SESSIONS.clear()


def session_count() -> int:
    return len(_SESSIONS)


def warm_worker_init() -> None:
    """Pool initializer: pre-import the experiment catalog.

    Spawn-started workers otherwise pay the catalog import inside their
    first chunk's timeout window.
    """
    from .. import registry

    registry.load()


def _build_session(digest: str, experiment: str, base_params: dict,
                   base_seed: int, backend: str,
                   adapter: BatchAdapter) -> WarmSession:
    """Construct, digest-stamp, and snapshot one group's session."""
    from ..kernel.backend import use_backend

    with use_backend(backend):
        session = adapter.build(dict(base_params), base_seed)
    sim = session.sim
    sim._compile_cache_key = digest
    sim.enable_snapshots()
    session.snap = sim.snapshot()
    _SESSIONS[digest] = session
    _SESSIONS.move_to_end(digest)
    while len(_SESSIONS) > _MAX_SESSIONS:
        _SESSIONS.popitem(last=False)
    return session


# ----------------------------------------------------------------------
# worker entry point
# ----------------------------------------------------------------------
def run_warm_chunk(task: dict) -> dict:
    """Evaluate one chunk of a warm group; returns records + counters.

    ``task`` carries only plain data across the process boundary:
    ``digest``, ``experiment``, ``base_params``, ``base_seed``,
    ``backend``, ``members`` (``(index, SweepPoint)`` pairs), and
    ``timeout``.  The adapter is re-resolved from the registry by name.

    Per-point records follow the fresh chunk protocol (``ok`` /
    ``error``) plus ``execution`` provenance; a session-level failure
    (ineligible design, build crash, unrecoverable restore) marks the
    affected points with ``fallback`` so the engine re-runs them
    through the fresh path with the reason recorded rather than
    counting them as errors.  A per-point timeout kills only the
    current point: the SIGALRM (or cycle-budget fallback) fires inside
    ``adapter.run`` and the ``finally`` restore re-arms the session
    for the rest of the batch.
    """
    from ..compile.cache import compile_cache_stats
    from ..jobs import JobRequest, execute_warm
    from .engine import _alarm

    digest = task["digest"]
    experiment = task["experiment"]
    timeout = task.get("timeout")
    members: Sequence[Tuple[int, SweepPoint]] = task["members"]
    records: List[dict] = []
    counters = {"warm_points": 0, "restores": 0, "lowering_cache_hits": 0,
                "builds": 0}
    hits0 = compile_cache_stats()["hits"]

    adapter = batch_adapter_for(experiment)
    if adapter is None:  # engine never dispatches these; stay defensive
        return {"records": [{"index": i, "ok": False,
                             "fallback": "no batch adapter registered"}
                            for i, _ in members],
                "counters": counters}

    session = _SESSIONS.get(digest)
    built = False
    fallback: Optional[str] = None
    for n, (index, point) in enumerate(members):
        if fallback is None and session is None:
            try:
                session = _build_session(
                    digest, experiment, task["base_params"],
                    task["base_seed"], task["backend"], adapter)
                built = True
                counters["builds"] += 1
            except Exception as exc:  # noqa: BLE001 - demote to fresh
                fallback = (f"warm session build failed: "
                            f"{type(exc).__name__}: {exc}")
        if fallback is not None:
            records.append({"index": index, "ok": False,
                            "fallback": fallback})
            continue
        execution = "warm" if built and n == 0 else "restored"
        try:
            with _alarm(timeout):
                job = execute_warm(JobRequest.from_point(point), adapter,
                                   session, execution=execution)
            records.append({"index": index, "ok": True,
                            "result": job.payload,
                            "wall_seconds": job.wall_seconds,
                            "execution": job.execution})
            counters["warm_points"] += 1
        except Exception as exc:  # noqa: BLE001 - reported per point
            records.append({"index": index, "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"})
        finally:
            try:
                session.sim.restore(session.snap)
                counters["restores"] += 1
            except Exception as exc:  # noqa: BLE001 - poisoned session
                _SESSIONS.pop(digest, None)
                session = None
                fallback = (f"warm session restore failed: "
                            f"{type(exc).__name__}: {exc}")
                # The point itself already has its record; only the
                # *remaining* members demote to the fresh path.  A
                # rebuild is pointless here — a failing restore means
                # the base state itself is suspect.
    counters["lowering_cache_hits"] = \
        compile_cache_stats()["hits"] - hits0
    return {"records": records, "counters": counters}
