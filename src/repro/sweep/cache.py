"""Disk-backed content-addressed result cache for sweep points.

Every executed :class:`~repro.sweep.point.SweepPoint` is stored under a
key that hashes *everything its result depends on*: the experiment
name, the canonicalized parameters, the seed, the ``repro`` package
version, and the repository revision.  Re-running an unchanged sweep is
then near-instant, an incremental sweep only simulates new points, and
bumping the package version (or committing new code) invalidates every
stale entry automatically — no manual flushing.

Entry **modes** (``sweep --incremental``, ``docs/INCREMENTAL_SIM.md``):
an entry is ``exact`` (a full simulation's result — the default, left
untagged in the key so exact keys are stable), ``derived`` (recomputed
analytically from a captured trace), or ``trace`` (a captured op trace
a future incremental sweep can replay from).  The mode is part of the
cache *key* for non-exact entries, so a derived result can never
shadow — or be shadowed by — the exact result for the same point.

Eviction is **value-aware**: every entry stores its measured recompute
cost (the wall-clock seconds it took to produce), and when the cache
exceeds ``max_entries`` / ``max_bytes`` the entries with the lowest
cost *per byte* go first — a 40-minute fig6 point outlives a 5 ms
trial even if the trial is fresher.  Recency (mtime, refreshed on every
hit) breaks ties, so among equally cheap entries the cache degrades to
plain LRU.

Layout: one ``<sha256>.json`` file per entry inside the cache root (a
flat directory).  Entries are written atomically (temp file +
``os.replace``) so concurrent sweeps sharing a cache directory can only
ever observe complete entries.  A corrupted entry (truncated write,
schema mismatch, garbage) is dropped the moment a lookup touches it and
counted — and :meth:`ResultCache.describe` recounts from disk on every
call, so a dropped entry disappears from the totals immediately, not at
the next :meth:`~ResultCache.evict`.  Cumulative hit/miss/saved-seconds
counters persist across processes in ``_stats.json`` (best-effort
merge; see :meth:`ResultCache.flush_stats`), which is what
``python -m repro stats`` reports as cache effectiveness.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

try:  # POSIX only; Windows falls back to lock-free best effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from .point import SweepPoint
from .serialize import canonical_digest

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "repo_rev"]

SCHEMA = "repro-sweep-cache/2"

#: Entry modes; "exact" stays untagged in keys (see key_for).
MODES = ("exact", "derived", "trace")

#: Cumulative counters persisted to ``<root>/_stats.json``.
_PERSISTED = ("hits", "misses", "puts", "evictions", "corrupt_dropped",
              "hits_exact", "hits_derived", "hits_trace",
              "recompute_seconds_saved",
              "warm_points", "warm_restores", "warm_lowering_hits")

_REV_CACHE: dict = {}


def repo_rev() -> str:
    """The repository's short git revision, or ``"unknown"``.

    Part of every cache key so results never survive a code change.
    Overridable with ``REPRO_SWEEP_REV`` (useful for installed packages
    without a git checkout, and for tests).
    """
    if "rev" not in _REV_CACHE:
        env = os.environ.get("REPRO_SWEEP_REV")
        if env:
            _REV_CACHE["rev"] = env
        else:
            root = pathlib.Path(__file__).resolve().parents[3]
            try:
                proc = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"], cwd=root,
                    capture_output=True, text=True, timeout=10)
                rev = proc.stdout.strip()
                _REV_CACHE["rev"] = rev if proc.returncode == 0 and rev \
                    else "unknown"
            except (OSError, subprocess.SubprocessError):
                _REV_CACHE["rev"] = "unknown"
    return _REV_CACHE["rev"]


def default_cache_dir() -> str:
    """``$REPRO_SWEEP_CACHE``, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return env
    return str(pathlib.Path.home() / ".cache" / "repro" / "sweeps")


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0
    hits_exact: int = 0
    hits_derived: int = 0
    hits_trace: int = 0
    #: Sum of the stored recompute cost of every hit — the wall-clock
    #: seconds this cache instance saved its callers.
    recompute_seconds_saved: float = 0.0
    #: Warm batched-sweep accounting (see :mod:`repro.sweep.warm`),
    #: credited by the engine after every ``warm=True`` run so
    #: ``repro stats --cache`` reports batch effectiveness alongside
    #: cache effectiveness.
    warm_points: int = 0
    warm_restores: int = 0
    warm_lowering_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Content-addressed sweep-result store, cost-aware eviction."""

    root: str
    max_entries: int = 4096
    max_bytes: int = 256 * 1024 * 1024
    #: Key components; default to the live package version / git rev so
    #: any code change invalidates.  Tests override them explicitly.
    version: Optional[str] = None
    rev: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._flushed: dict = {}  # per-counter high-water mark
        if self.version is None:
            from .. import __version__

            self.version = __version__
        if self.rev is None:
            self.rev = repo_rev()
        pathlib.Path(self.root).mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------
    def key_for(self, point: SweepPoint, *, mode: str = "exact") -> str:
        """Content hash of everything the point's result depends on.

        ``mode`` enters the key only when not ``"exact"``: exact keys
        keep their historical shape, and non-exact entries can never
        collide with (and thus shadow) them.
        """
        if mode not in MODES:
            raise ValueError(f"unknown cache mode {mode!r}; one of {MODES}")
        payload = {
            "schema": SCHEMA,
            **point.identity(),
            "version": self.version,
            "rev": self.rev,
        }
        if mode != "exact":
            payload["mode"] = mode
        return canonical_digest(payload)

    def _path(self, key: str) -> pathlib.Path:
        return pathlib.Path(self.root) / f"{key}.json"

    # -- lookup / store ------------------------------------------------
    def get(self, point: SweepPoint, *, mode: str = "exact",
            require=None) -> Optional[dict]:
        """The stored payload for ``point``, or ``None`` on a miss.

        A hit refreshes the entry's LRU clock and credits the entry's
        stored recompute cost to ``stats.recompute_seconds_saved``.
        Unreadable or schema-mismatched entries are unlinked and counted
        as misses.  ``require`` is an optional predicate on the payload:
        a stored value that fails it is a *miss* (the entry stays on
        disk and is not credited as saved work) — the engine uses this
        so a telemetry-less entry can never satisfy a telemetry-enabled
        sweep.
        """
        path = self._path(self.key_for(point, mode=mode))
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("schema") != SCHEMA or "value" not in entry:
                raise ValueError("cache entry schema mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self.stats.corrupt_dropped += 1
            self.stats.misses += 1
            return None
        if require is not None and not require(entry["value"]):
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.stats.hits += 1
        setattr(self.stats, f"hits_{mode}",
                getattr(self.stats, f"hits_{mode}") + 1)
        try:
            self.stats.recompute_seconds_saved += float(
                entry.get("cost", 0.0))
        except (TypeError, ValueError):
            pass
        return entry["value"]

    def put(self, point: SweepPoint, value: dict, *, mode: str = "exact",
            cost: float = 0.0) -> str:
        """Store ``value`` atomically; returns the key.

        ``cost`` is the measured wall-clock seconds it took to produce
        the value — the currency of cost-per-byte eviction and of the
        ``recompute_seconds_saved`` effectiveness counter.
        """
        key = self.key_for(point, mode=mode)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        entry = {"schema": SCHEMA, "mode": mode,
                 "cost": max(0.0, float(cost)), "key": {
                     **point.identity(), "version": self.version,
                     "rev": self.rev,
                 }, "value": value}
        tmp.write_text(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp, path)
        self.stats.puts += 1
        self.evict()
        return key

    # -- cross-process exclusion ---------------------------------------
    @contextmanager
    def _locked(self):
        """Exclusive advisory lock on ``<root>/_lock`` (POSIX flock).

        Serializes the cache's two read-modify-write critical sections
        — the ``_stats.json`` merge and the eviction scan — across
        concurrent sweep processes sharing one cache directory.  Entry
        reads and writes stay lock-free (they are already atomic via
        temp-file + ``os.replace``).  Where ``fcntl`` is unavailable
        the sections run unlocked, degrading to the historical
        best-effort behaviour: possible lost counter increments, never
        a corrupt file.
        """
        if fcntl is None:
            yield
            return
        path = pathlib.Path(self.root) / "_lock"
        try:
            fh = open(path, "a+")
        except OSError:  # unwritable root: degrade to lock-free
            yield
            return
        try:
            fcntl.flock(fh, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fh, fcntl.LOCK_UN)
            finally:
                fh.close()

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, pathlib.Path]]:
        """(mtime, size, path) for every entry, oldest first."""
        out = []
        for path in pathlib.Path(self.root).glob("*.json"):
            if path.name.startswith("_"):  # _stats.json sidecar
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime_ns, st.st_size, path))
        out.sort()
        return [(m / 1e9, s, p) for m, s, p in out]

    def evict(self) -> int:
        """Drop entries until ``max_entries`` / ``max_bytes`` hold.

        Victims are chosen by lowest recompute-cost-per-byte (the
        cheapest results to regenerate relative to the space they
        occupy), with recency as the tiebreaker.  The stat-only scan
        runs first: under the limits — the common case, since eviction
        runs on every put — no entry file is ever opened, and no lock
        is taken.  An over-limit cache evicts under the cross-process
        lock so two concurrent writers never race the same scan (each
        would otherwise delete from a stale listing and over-evict).
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if len(entries) <= self.max_entries and total <= self.max_bytes:
            return 0
        with self._locked():
            return self._evict_locked()

    def _evict_locked(self) -> int:
        entries = self._entries()  # re-list under the lock
        total = sum(size for _, size, _ in entries)
        if len(entries) <= self.max_entries and total <= self.max_bytes:
            return 0
        indexed = []
        for mtime, size, path in entries:
            try:
                with open(path) as fh:
                    cost = float(json.load(fh).get("cost", 0.0))
            except (OSError, ValueError, TypeError):
                cost = -1.0  # unreadable: first against the wall
            indexed.append((cost / max(size, 1), mtime, size, path))
        indexed.sort()
        dropped = 0
        while indexed and (len(indexed) > self.max_entries
                           or total > self.max_bytes):
            _, _, size, path = indexed.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            dropped += 1
        self.stats.evictions += dropped
        return dropped

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        n = 0
        for _, _, path in self._entries():
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._entries())

    # -- effectiveness accounting --------------------------------------
    def _stats_path(self) -> pathlib.Path:
        return pathlib.Path(self.root) / "_stats.json"

    def flush_stats(self) -> dict:
        """Merge this instance's counters into ``_stats.json``.

        Called by the sweep engine after every run so ``repro stats``
        can report effectiveness across processes.  The read-modify-
        write runs under the cross-process lock (:meth:`_locked`), so
        concurrent sweeps sharing a cache directory merge exactly —
        no increment is ever lost where ``flock`` is available, and
        the file is never corrupt regardless (atomic replace).  Only
        the delta since this instance's previous flush is added, so
        repeated flushes never double-count — and ``self.stats``
        itself is left untouched for callers still reporting on this
        run.
        """
        with self._locked():
            merged = self.persistent_stats()
            for name in _PERSISTED:
                current = getattr(self.stats, name)
                delta = current - self._flushed.get(name, 0)
                merged[name] = merged.get(name, 0) + delta
                self._flushed[name] = current
            path = self._stats_path()
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(merged, sort_keys=True) + "\n")
            os.replace(tmp, path)
        return merged

    def persistent_stats(self) -> dict:
        """Cumulative counters from ``_stats.json`` (empty when absent)."""
        try:
            with open(self._stats_path()) as fh:
                data = json.load(fh)
            return {k: data[k] for k in _PERSISTED if k in data}
        except (OSError, ValueError):
            return {}

    def describe(self, *, deep: bool = False) -> dict:
        """Stats + configuration as a plain serializable dict.

        Entry totals are recounted from disk on every call, so entries
        dropped by :meth:`get` (corruption) disappear immediately.
        With ``deep`` the per-mode breakdown and stored-cost totals are
        included (opens every entry; used by ``repro stats``).
        """
        entries = self._entries()
        out = {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "version": self.version,
            "rev": self.rev,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "puts": self.stats.puts,
            "evictions": self.stats.evictions,
            "corrupt_dropped": self.stats.corrupt_dropped,
            "hits_exact": self.stats.hits_exact,
            "hits_derived": self.stats.hits_derived,
            "hits_trace": self.stats.hits_trace,
            "recompute_seconds_saved": self.stats.recompute_seconds_saved,
            "warm_points": self.stats.warm_points,
            "warm_restores": self.stats.warm_restores,
            "warm_lowering_hits": self.stats.warm_lowering_hits,
        }
        if deep:
            by_mode = {mode: 0 for mode in MODES}
            cost_by_mode = {mode: 0.0 for mode in MODES}
            for _, _, path in entries:
                try:
                    with open(path) as fh:
                        entry = json.load(fh)
                    mode = entry.get("mode", "exact")
                    cost = float(entry.get("cost", 0.0))
                except (OSError, ValueError, TypeError):
                    continue
                if mode not in by_mode:
                    mode = "exact"
                by_mode[mode] += 1
                cost_by_mode[mode] += cost
            out["by_mode"] = by_mode
            out["stored_cost_seconds"] = cost_by_mode
            out["persistent"] = self.persistent_stats()
        return out
