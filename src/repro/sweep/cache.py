"""Disk-backed content-addressed result cache for sweep points.

Every executed :class:`~repro.sweep.point.SweepPoint` is stored under a
key that hashes *everything its result depends on*: the experiment
name, the canonicalized parameters, the seed, the ``repro`` package
version, and the repository revision.  Re-running an unchanged sweep is
then near-instant, an incremental sweep only simulates new points, and
bumping the package version (or committing new code) invalidates every
stale entry automatically — no manual flushing.

Layout: one ``<sha256>.json`` file per entry inside the cache root (a
flat directory).  Entries are written atomically (temp file +
``os.replace``) so concurrent sweeps sharing a cache directory can only
ever observe complete entries.  Reads refresh the file's mtime, which
doubles as the LRU clock; :meth:`ResultCache.evict` drops the
least-recently-used entries until both ``max_entries`` and
``max_bytes`` hold.  A corrupted entry (truncated write, schema
mismatch, garbage) is silently dropped and counted — it is
indistinguishable from a miss, never an error.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .point import SweepPoint
from .serialize import canonical_digest

__all__ = ["CacheStats", "ResultCache", "default_cache_dir", "repo_rev"]

SCHEMA = "repro-sweep-cache/1"

_REV_CACHE: dict = {}


def repo_rev() -> str:
    """The repository's short git revision, or ``"unknown"``.

    Part of every cache key so results never survive a code change.
    Overridable with ``REPRO_SWEEP_REV`` (useful for installed packages
    without a git checkout, and for tests).
    """
    if "rev" not in _REV_CACHE:
        env = os.environ.get("REPRO_SWEEP_REV")
        if env:
            _REV_CACHE["rev"] = env
        else:
            root = pathlib.Path(__file__).resolve().parents[3]
            try:
                proc = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"], cwd=root,
                    capture_output=True, text=True, timeout=10)
                rev = proc.stdout.strip()
                _REV_CACHE["rev"] = rev if proc.returncode == 0 and rev \
                    else "unknown"
            except (OSError, subprocess.SubprocessError):
                _REV_CACHE["rev"] = "unknown"
    return _REV_CACHE["rev"]


def default_cache_dir() -> str:
    """``$REPRO_SWEEP_CACHE``, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return env
    return str(pathlib.Path.home() / ".cache" / "repro" / "sweeps")


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Content-addressed sweep-result store with LRU + max-size eviction."""

    root: str
    max_entries: int = 4096
    max_bytes: int = 256 * 1024 * 1024
    #: Key components; default to the live package version / git rev so
    #: any code change invalidates.  Tests override them explicitly.
    version: Optional[str] = None
    rev: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.version is None:
            from .. import __version__

            self.version = __version__
        if self.rev is None:
            self.rev = repo_rev()
        pathlib.Path(self.root).mkdir(parents=True, exist_ok=True)

    # -- keys ----------------------------------------------------------
    def key_for(self, point: SweepPoint) -> str:
        """Content hash of everything the point's result depends on."""
        return canonical_digest({
            "schema": SCHEMA,
            **point.identity(),
            "version": self.version,
            "rev": self.rev,
        })

    def _path(self, key: str) -> pathlib.Path:
        return pathlib.Path(self.root) / f"{key}.json"

    # -- lookup / store ------------------------------------------------
    def get(self, point: SweepPoint) -> Optional[dict]:
        """The stored payload for ``point``, or ``None`` on a miss.

        A hit refreshes the entry's LRU clock.  Unreadable or
        schema-mismatched entries are unlinked and counted as misses.
        """
        path = self._path(self.key_for(point))
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if entry.get("schema") != SCHEMA or "value" not in entry:
                raise ValueError("cache entry schema mismatch")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self.stats.corrupt_dropped += 1
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.stats.hits += 1
        return entry["value"]

    def put(self, point: SweepPoint, value: dict) -> str:
        """Store ``value`` for ``point`` atomically; returns the key."""
        key = self.key_for(point)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        entry = {"schema": SCHEMA, "key": {
            **point.identity(), "version": self.version, "rev": self.rev,
        }, "value": value}
        tmp.write_text(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp, path)
        self.stats.puts += 1
        self.evict()
        return key

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, pathlib.Path]]:
        """(mtime, size, path) for every entry, oldest first."""
        out = []
        for path in pathlib.Path(self.root).glob("*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime_ns, st.st_size, path))
        out.sort()
        return [(m / 1e9, s, p) for m, s, p in out]

    def evict(self) -> int:
        """Drop LRU entries until ``max_entries`` / ``max_bytes`` hold."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        dropped = 0
        while entries and (len(entries) > self.max_entries
                           or total > self.max_bytes):
            _, size, path = entries.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            dropped += 1
        self.stats.evictions += dropped
        return dropped

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        n = 0
        for _, _, path in self._entries():
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._entries())

    def describe(self) -> dict:
        """Stats + configuration as a plain serializable dict."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "version": self.version,
            "rev": self.rev,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "puts": self.stats.puts,
            "evictions": self.stats.evictions,
            "corrupt_dropped": self.stats.corrupt_dropped,
        }
