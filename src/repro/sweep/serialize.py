"""Canonical serialization shared by the cache key, merge layer, and CLI.

Everything the sweep engine persists or compares goes through one
serializer so that "the same result" always has the same bytes:

* cache keys are :func:`canonical_digest` of a point's identity,
* ``--json`` output from experiment verbs is :func:`dump_json` of the
  result dataclasses,
* the merged-report identity check (``SweepResult.canonical``) compares
  :func:`canonical_json` strings.

Canonical form: dataclasses become plain dicts, tuples/sets become
lists (sets sorted), dict keys become strings and are emitted sorted,
and ``NaN``/``Inf`` are rejected (they do not round-trip through JSON).
Keys named in ``exclude`` are dropped at every nesting depth — used to
strip wall-clock fields (:data:`NONDETERMINISTIC_FIELDS`) before
comparing runs for bit-identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from enum import Enum
from typing import Any, Collection, FrozenSet, IO, Union

__all__ = [
    "NONDETERMINISTIC_FIELDS",
    "to_jsonable",
    "canonical_json",
    "canonical_digest",
    "dump_json",
]

#: Keys that carry wall-clock (not simulation) time and therefore differ
#: between two otherwise-identical runs.  Excluded wherever two runs are
#: compared for bit-identity; kept everywhere else (they are useful).
NONDETERMINISTIC_FIELDS: FrozenSet[str] = frozenset(
    {"proc_seconds", "wall_seconds", "compile_seconds",
     "dst_compile_s", "src_compile_s", "wall_fast", "wall_rtl"})


def to_jsonable(obj: Any, *, exclude: Collection[str] = ()) -> Any:
    """Recursively convert ``obj`` into JSON-encodable plain data.

    Handles dataclass instances, mappings, sequences, sets and enums;
    raises ``TypeError`` for anything else rather than guessing.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj) or math.isinf(obj):
            raise ValueError(f"non-finite float {obj!r} is not canonical")
        return obj
    if isinstance(obj, Enum):
        return to_jsonable(obj.value, exclude=exclude)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name), exclude=exclude)
                for f in dataclasses.fields(obj) if f.name not in exclude}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v, exclude=exclude)
                for k, v in obj.items() if str(k) not in exclude}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v, exclude=exclude) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((to_jsonable(v, exclude=exclude) for v in obj),
                      key=lambda v: json.dumps(v, sort_keys=True))
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__}: {obj!r} "
        "(expected dataclass / dict / sequence / scalar)")


def canonical_json(obj: Any, *, exclude: Collection[str] = ()) -> str:
    """The one true JSON string for ``obj``: sorted keys, no whitespace."""
    return json.dumps(to_jsonable(obj, exclude=exclude), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True,
                      allow_nan=False)


def canonical_digest(obj: Any, *, exclude: Collection[str] = ()) -> str:
    """SHA-256 hex digest of :func:`canonical_json` — the cache key form."""
    payload = canonical_json(obj, exclude=exclude).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def dump_json(obj: Any, fh_or_path: Union[str, IO[str]]) -> str:
    """Write ``obj`` (canonicalized, human-indented) as JSON; returns text."""
    text = json.dumps(to_jsonable(obj), sort_keys=True, indent=1,
                      allow_nan=False) + "\n"
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w") as fh:
            fh.write(text)
    else:
        fh_or_path.write(text)
    return text
