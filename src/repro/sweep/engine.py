"""The sweep engine: execute SweepPoints serially or across a process pool.

Execution model
---------------
1. Every point is first resolved against the result cache (when one is
   given); hits never touch a worker.
2. Remaining points are packed into chunks and executed — in-process
   for ``jobs <= 1``, across a ``ProcessPoolExecutor`` otherwise.  A
   chunk is one pool task: for short simulation points the per-task
   dispatch overhead would otherwise dominate.
3. Inside the worker each point runs under a SIGALRM watchdog
   (``timeout`` seconds) and inside its own telemetry capture window,
   so a wedged simulation dies with a ``PointTimeout`` instead of
   sinking the sweep, and the per-point telemetry report travels back
   with the result.
4. Failed points (exception, timeout, or a crashed worker process that
   took its whole chunk down) are retried once (``retries``), each in
   its own single-point chunk.  A point that fails again is recorded as
   an ``error`` outcome; the rest of the sweep is unaffected.
5. Outcomes are reassembled **in point order**, so the merged report is
   identical in content to a serial run regardless of which worker
   finished first.

Determinism: the engine never invents randomness.  Seeds live in the
points (assigned by the space builders), telemetry labels are derived
from point indices, and ``SweepResult.canonical()`` strips the only
nondeterministic fields (wall-clock times) — two runs of the same sweep
are bit-identical under it, whether serial, parallel, or cache-served.
"""

from __future__ import annotations

import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .point import SweepPoint
from .serialize import NONDETERMINISTIC_FIELDS, canonical_json

__all__ = ["PointTimeout", "PointOutcome", "SweepResult", "run_sweep"]


class PointTimeout(Exception):
    """A sweep point exceeded its per-point wall-clock budget."""


@contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`PointTimeout` in the current process after ``seconds``.

    SIGALRM-based, so it fires even inside a busy simulation loop.
    Where the signal cannot be armed (non-main thread, platforms
    without SIGALRM) the point instead runs under the kernel's ambient
    wall-clock budget (:func:`repro.kernel.time_budget`), which the
    simulator's timestep loop polls — a slightly softer deadline, but
    never silently unbounded.  A no-op only when no timeout was
    requested at all.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    usable = hasattr(signal, "SIGALRM")
    if usable:
        try:
            old = signal.signal(
                signal.SIGALRM,
                lambda signum, frame: (_ for _ in ()).throw(
                    PointTimeout(f"point exceeded {seconds:.3g}s")))
        except ValueError:  # not in the main thread
            usable = False
    if not usable:
        from ..kernel.simulator import TimeBudgetExceeded, time_budget

        try:
            with time_budget(seconds):
                yield
        except TimeBudgetExceeded as exc:
            raise PointTimeout(
                f"point exceeded {seconds:.3g}s "
                f"(kernel cycle-budget fallback)") from exc
        return
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _execute_point(index: int, point: SweepPoint, *,
                   telemetry: bool) -> dict:
    """Run one point in the current process; returns its raw payload.

    The point is wrapped as a :class:`~repro.jobs.JobRequest` and
    submitted to the job core, which resolves the runner from the
    experiment registry by name — the point itself stays plain data.
    With ``telemetry`` the job runs inside its own capture window and
    the flattened report records ride along (and into the cache),
    labelled by point index so serial and parallel runs produce
    identical records.
    """
    from ..jobs import JobRequest, execute

    job = execute(JobRequest.from_point(point, telemetry=telemetry),
                  telemetry_label=f"{point.experiment}[{index}]")
    return {"result": job.payload, "telemetry": job.telemetry,
            "wall_seconds": job.wall_seconds}


def _run_chunk(items: Sequence[Tuple[int, SweepPoint]], telemetry: bool,
               timeout: Optional[float]) -> List[dict]:
    """Worker entry point: execute one chunk of (index, point) pairs.

    Per-point failures are caught and returned as data — only a hard
    crash of the worker process itself (segfault, OOM kill) loses the
    chunk, and the engine retries those points individually.
    """
    out = []
    for index, point in items:
        try:
            with _alarm(timeout):
                payload = _execute_point(index, point, telemetry=telemetry)
            out.append({"index": index, "ok": True, **payload})
        except Exception as exc:  # noqa: BLE001 - reported per point
            out.append({"index": index, "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"})
    return out


@dataclass
class PointOutcome:
    """What happened to one point: executed, cache-served, or failed."""

    index: int
    point: SweepPoint
    status: str  # "ok" | "cached" | "error"
    result: Optional[dict] = None
    telemetry: Optional[List[dict]] = None
    wall_seconds: float = 0.0
    attempts: int = 0
    error: Optional[str] = None
    #: How the result was produced: "exact" (full simulation, or a
    #: cached one) vs "derived" (trace replay / analytic evaluation).
    mode: str = "exact"
    #: Construction provenance (see :data:`repro.jobs.EXECUTIONS`):
    #: "fresh" (design built for this point), "warm" (this point built
    #: a reusable warm session), or "restored" (evaluated on a warm
    #: session after a kernel snapshot restore).
    execution: str = "fresh"
    #: For incremental/warm sweeps only: why this point could not be
    #: derived (or warm-batched) and fell back to a full simulation
    #: (None when it didn't).
    fallback_reason: Optional[str] = None


@dataclass
class SweepResult:
    """An ordered sweep outcome plus engine/cache accounting."""

    experiment: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    errors: int = 0
    retried: int = 0
    cache: Optional[dict] = None  # ResultCache.describe() snapshot
    incremental: bool = False
    #: Points served by trace replay or analytic evaluation this run.
    derived: int = 0
    #: Structural base simulations captured this run (not point-indexed).
    captures: int = 0
    #: reason -> count for points that fell back to full simulation.
    fallback_reasons: Dict[str, int] = field(default_factory=dict)
    warm: bool = False
    #: Structural groups dispatched to warm workers this run.
    warm_groups: int = 0
    #: Points evaluated on a warm session (execution "warm"/"restored").
    warm_points: int = 0
    #: Kernel snapshot restores performed by warm workers.
    restores: int = 0
    #: Compiled-engine re-attaches served from the per-process
    #: CompileCache (lowering passes skipped) inside warm workers.
    lowering_cache_hits: int = 0

    @property
    def points(self) -> List[SweepPoint]:
        return [o.point for o in self.outcomes]

    @property
    def results(self) -> List[Optional[dict]]:
        """Per-point result records, point order (``None`` for errors)."""
        return [o.result for o in self.outcomes]

    @property
    def ok_results(self) -> List[dict]:
        return [o.result for o in self.outcomes if o.result is not None]

    def report(self, *, label: Optional[str] = None):
        """Merge per-point telemetry into one ordered TelemetryReport.

        Reports are merged in point-index order, so the merged report's
        content is independent of worker scheduling — identical to what
        a serial run produces.
        """
        from ..observe import from_records, merge

        parts = [from_records(o.telemetry) for o in self.outcomes
                 if o.telemetry]
        return merge(parts, label=label or self.experiment)

    def canonical(self) -> str:
        """Bit-comparable serialization of everything deterministic."""
        from ..observe import to_records

        return canonical_json({
            "experiment": self.experiment,
            "points": [p.identity() for p in self.points],
            "results": self.results,
            "telemetry": to_records(self.report()),
        }, exclude=NONDETERMINISTIC_FIELDS)

    def summary(self) -> str:
        """One status line: point counts, cache traffic, wall clock."""
        traffic = f"{self.cache_hits} cached / {self.executed} executed"
        if self.incremental:
            traffic = (f"{self.cache_hits} cached / {self.derived} derived"
                       f" / {self.executed} simulated"
                       f" (+{self.captures} captures)")
        if self.warm:
            traffic = (f"{self.cache_hits} cached / {self.warm_points} warm"
                       f" ({self.warm_groups} groups, {self.restores} "
                       f"restores) / "
                       f"{self.executed - self.warm_points} fresh")
        parts = [f"sweep {self.experiment}: {len(self.outcomes)} points",
                 traffic + (f" / {self.errors} errors" if self.errors
                            else ""),
                 f"jobs={self.jobs}", f"{self.wall_seconds:.2f}s wall"]
        if self.retried:
            parts.insert(2, f"{self.retried} retried")
        return " | ".join(parts)

    def to_payload(self) -> dict:
        """Full JSON-able dump (CLI ``--json``): points, results, stats."""
        return {
            "experiment": self.experiment,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "errors": self.errors,
            "retried": self.retried,
            "cache": self.cache,
            "incremental": self.incremental,
            "derived": self.derived,
            "captures": self.captures,
            "fallback_reasons": self.fallback_reasons,
            "warm": self.warm,
            "warm_groups": self.warm_groups,
            "warm_points": self.warm_points,
            "restores": self.restores,
            "lowering_cache_hits": self.lowering_cache_hits,
            "points": [o.point.identity() for o in self.outcomes],
            "results": self.results,
            "statuses": [o.status for o in self.outcomes],
            "modes": [o.mode for o in self.outcomes],
            "executions": [o.execution for o in self.outcomes],
            "telemetry": [r for o in self.outcomes
                          for r in (o.telemetry or ())],
        }


def _chunked(items: List[Tuple[int, SweepPoint]], jobs: int,
             chunksize: Optional[int]) -> List[List[Tuple[int, SweepPoint]]]:
    if chunksize is None:
        # ~4 chunks per worker balances dispatch overhead against
        # stragglers holding the tail of the sweep.
        chunksize = max(1, len(items) // max(1, jobs * 4))
    return [items[i:i + chunksize] for i in range(0, len(items), chunksize)]


def _execute_batch(items: List[Tuple[int, SweepPoint]], *, jobs: int,
                   telemetry: bool, timeout: Optional[float],
                   chunksize: Optional[int]) -> Dict[int, dict]:
    """Execute (index, point) pairs; returns raw payloads keyed by index.

    Worker-process crashes surface as ``BrokenProcessPool`` on every
    outstanding future of that pool; the affected points are returned as
    failed payloads so the caller's retry pass can re-run them — a fresh
    pool is created per batch, so one crash never poisons the retry.
    """
    raw: Dict[int, dict] = {}
    if not items:
        return raw
    if jobs <= 1 or len(items) == 1:
        for rec in _run_chunk(items, telemetry, timeout):
            raw[rec.pop("index")] = rec
        return raw
    chunks = _chunked(items, jobs, chunksize)
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures = [(pool.submit(_run_chunk, chunk, telemetry, timeout), chunk)
                   for chunk in chunks]
        for future, chunk in futures:
            try:
                records = future.result()
            except BrokenProcessPool:
                records = [{"index": i, "ok": False,
                            "error": "BrokenProcessPool: worker crashed"}
                           for i, _ in chunk]
            except Exception as exc:  # noqa: BLE001 - whole-chunk failure
                records = [{"index": i, "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
                           for i, _ in chunk]
            for rec in records:
                raw[rec.pop("index")] = rec
    return raw


def run_sweep(points: Sequence[SweepPoint], *, jobs: int = 1,
              cache: Optional[ResultCache] = None,
              timeout: Optional[float] = None, retries: int = 1,
              telemetry: bool = True,
              chunksize: Optional[int] = None,
              incremental: bool = False,
              warm: bool = False) -> SweepResult:
    """Execute a parameter sweep; returns ordered outcomes + accounting.

    ``jobs`` is the worker-process count (``<=1`` = in this process),
    ``cache`` fronts execution with the content-addressed result store,
    ``timeout`` is the per-point wall-clock budget in seconds, and
    ``retries`` is how many times a failed point is re-run before being
    recorded as an error.

    With ``incremental`` the engine partitions the space into structural
    bases and derivable satellites using the experiment's registered
    :class:`~repro.trace.adapter.ReplayAdapter`: one full simulation is
    captured per base (process pool), every satellite is replayed
    analytically in-process, and any point the capability check or the
    replayer refuses falls back to a full simulation with its reason
    recorded in ``SweepResult.fallback_reasons``.  Incremental sweeps
    run with telemetry off (a replayed point has no kernel to observe;
    mixing instrumented and derived records would make the merged
    report lie), so their canonical form matches a plain
    ``telemetry=False`` sweep.

    With ``warm`` the engine instead groups pending points by
    structural digest and dispatches each group as a batch to
    persistent warm workers, which construct the design once per group
    and evaluate every point via the kernel's snapshot/restore
    primitive (:mod:`repro.sweep.warm`).  Results are byte-identical
    under :meth:`SweepResult.canonical`; like ``incremental``, warm
    sweeps run telemetry-off (a snapshot-eligible design cannot carry
    a telemetry hub).  ``warm`` and ``incremental`` are mutually
    exclusive.
    """
    points = list(points)
    if not points:
        raise ValueError("run_sweep needs at least one SweepPoint")
    if warm and incremental:
        raise ValueError("warm and incremental sweeps are mutually "
                         "exclusive — a warm session re-simulates, a "
                         "replay never constructs a kernel")
    if warm:
        return _run_warm(points, jobs=jobs, cache=cache, timeout=timeout,
                         retries=retries, chunksize=chunksize)
    if incremental:
        return _run_incremental(points, jobs=jobs, cache=cache,
                                timeout=timeout, retries=retries,
                                chunksize=chunksize)
    experiment = points[0].experiment
    t0 = time.perf_counter()

    # A telemetry-enabled sweep must not be served by telemetry-less
    # entries (the merged report would silently lose those points); the
    # predicate makes them honest misses.  In the mirror case the
    # stored telemetry is stripped so a cache hit is indistinguishable
    # from a fresh telemetry=False execution.
    require = (lambda value: value.get("telemetry") is not None) \
        if telemetry else None
    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    for i, point in enumerate(points):
        hit = cache.get(point, require=require) if cache is not None \
            else None
        if hit is not None:
            outcomes[i] = PointOutcome(
                index=i, point=point, status="cached",
                result=hit.get("result"),
                telemetry=hit.get("telemetry") if telemetry else None,
                wall_seconds=0.0, attempts=0)
        else:
            pending.append((i, point))

    raw = _execute_batch(pending, jobs=jobs, telemetry=telemetry,
                         timeout=timeout, chunksize=chunksize)
    attempts = {i: 1 for i, _ in pending}
    retried = 0
    for _ in range(max(0, retries)):
        failed = [(i, p) for i, p in pending if not raw[i]["ok"]]
        if not failed:
            break
        retried += len(failed)
        retry_raw = _execute_batch(failed, jobs=jobs, telemetry=telemetry,
                                   timeout=timeout, chunksize=1)
        for i, rec in retry_raw.items():
            attempts[i] += 1
            if rec["ok"] or not raw[i]["ok"]:
                raw[i] = rec

    executed = errors = 0
    for i, point in pending:
        rec = raw[i]
        if rec["ok"]:
            executed += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="ok", result=rec["result"],
                telemetry=rec.get("telemetry"),
                wall_seconds=rec.get("wall_seconds", 0.0),
                attempts=attempts[i])
            if cache is not None:
                cache.put(point, {"result": rec["result"],
                                  "telemetry": rec.get("telemetry")},
                          cost=rec.get("wall_seconds", 0.0))
        else:
            errors += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="error",
                error=rec.get("error", "unknown failure"),
                attempts=attempts[i])

    result = SweepResult(
        experiment=experiment,
        outcomes=[o for o in outcomes if o is not None],
        jobs=jobs,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=sum(1 for o in outcomes
                       if o is not None and o.status == "cached"),
        cache_misses=len(pending),
        executed=executed,
        errors=errors,
        retried=retried,
        cache=cache.describe() if cache is not None else None,
    )
    if cache is not None:
        cache.flush_stats()
    return result


def _capture_chunk(tasks: Sequence[tuple],
                   timeout: Optional[float]) -> List[dict]:
    """Worker entry point: capture structural-base traces.

    ``tasks`` are ``(gid, experiment, base_params, base_seed)`` tuples;
    the replay adapter is re-resolved from the registry by experiment
    name so only plain data crosses the process boundary.
    """
    from ..trace.adapter import adapter_for

    out = []
    for gid, experiment, base_params, base_seed in tasks:
        t0 = time.perf_counter()
        try:
            adapter = adapter_for(experiment)
            with _alarm(timeout):
                trace = adapter.capture(dict(base_params), base_seed)
            out.append({"gid": gid, "ok": True, "trace": trace,
                        "wall_seconds": time.perf_counter() - t0})
        except Exception as exc:  # noqa: BLE001 - reported per capture
            out.append({"gid": gid, "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"})
    return out


def _run_captures(tasks: List[tuple], *, jobs: int,
                  timeout: Optional[float]) -> Dict[str, dict]:
    """Run base captures, one pool task each; records keyed by gid."""
    recs: List[dict] = []
    if not tasks:
        return {}
    if jobs <= 1 or len(tasks) == 1:
        recs = _capture_chunk(tasks, timeout)
    else:
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(tasks))) as pool:
            futures = [(pool.submit(_capture_chunk, [task], timeout), task)
                       for task in tasks]
            for future, task in futures:
                try:
                    recs.extend(future.result())
                except BrokenProcessPool:
                    recs.append({"gid": task[0], "ok": False,
                                 "error": "BrokenProcessPool: "
                                          "worker crashed"})
                except Exception as exc:  # noqa: BLE001
                    recs.append({"gid": task[0], "ok": False,
                                 "error": f"{type(exc).__name__}: {exc}"})
    return {rec["gid"]: rec for rec in recs}


def _run_incremental(points: List[SweepPoint], *, jobs: int,
                     cache: Optional[ResultCache],
                     timeout: Optional[float], retries: int,
                     chunksize: Optional[int]) -> SweepResult:
    """The ``incremental=True`` engine: capture bases, replay satellites.

    Partition order (see the tentpole walk-through in
    ``docs/INCREMENTAL_SIM.md``):

    1. cache pass — exact entries first (they are authoritative and can
       never be shadowed by derived ones), then derived entries;
    2. static classification via :func:`repro.trace.adapter.classify`;
    3. one captured full simulation per structural base, trace-cache
       fronted, across the process pool;
    4. in-process analytical replay for every satellite — a replay the
       trace's recorded capability or the replayer's soundness guards
       refuse demotes the point to the fallback set with its reason;
    5. the fallback set runs as a normal full-simulation batch.
    """
    from ..jobs import JobRequest
    from ..jobs import execute as execute_job
    from ..registry import get_sweep
    from ..trace.adapter import classify
    from ..trace.replay import ReplayError, Replayer

    experiment = points[0].experiment
    if any(p.experiment != experiment for p in points):
        raise ValueError("incremental sweeps require a single experiment")
    spec = get_sweep(experiment)
    adapter = spec.replay
    t0 = time.perf_counter()

    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    for i, point in enumerate(points):
        hit, mode = None, "exact"
        if cache is not None:
            hit = cache.get(point)
            if hit is None:
                hit, mode = cache.get(point, mode="derived"), "derived"
        if hit is not None:
            outcomes[i] = PointOutcome(
                index=i, point=point, status="cached",
                result=hit.get("result"), telemetry=None, mode=mode)
        else:
            pending.append((i, point))

    structural: List[Tuple[int, SweepPoint, str]] = []
    analytic: List[Tuple[int, SweepPoint]] = []
    groups: Dict[str, dict] = {}
    for i, point in pending:
        mode, reason, bparams, bseed = classify(
            adapter, dict(point.params), point.seed)
        if mode == "structural":
            structural.append((i, point, reason))
        elif adapter.kind == "analytic":
            analytic.append((i, point))
        else:
            gid = canonical_json({"experiment": experiment,
                                  "params": bparams, "seed": bseed})
            group = groups.setdefault(
                gid, {"base_params": bparams, "base_seed": bseed,
                      "members": []})
            group["members"].append((i, point))

    # One capture per structural base, trace-cache fronted.  Ineligible
    # traces are cached too: the recorded reasons are stable for a
    # given base, so a warm sweep skips straight to the fallback.
    captures: Dict[str, dict] = {}
    need: List[tuple] = []
    for gid, group in groups.items():
        group["base_point"] = SweepPoint(
            experiment, group["base_params"], seed=group["base_seed"])
        hit = cache.get(group["base_point"], mode="trace") \
            if cache is not None else None
        if hit is not None:
            captures[gid] = {"ok": True, "trace": hit["trace"],
                             "wall_seconds": 0.0}
        else:
            need.append((gid, experiment, dict(group["base_params"]),
                         group["base_seed"]))
    captures.update(_run_captures(need, jobs=jobs, timeout=timeout))
    captures_run = sum(1 for gid, _, _, _ in need
                       if captures.get(gid, {}).get("ok"))
    if cache is not None:
        for gid, _, _, _ in need:
            rec = captures.get(gid)
            if rec is not None and rec["ok"]:
                cache.put(groups[gid]["base_point"],
                          {"trace": rec["trace"]}, mode="trace",
                          cost=rec.get("wall_seconds", 0.0))

    derived_count = 0
    for gid, group in groups.items():
        rec = captures.get(gid, {"ok": False, "error": "capture missing"})
        if not rec["ok"]:
            reason = f"capture failed: {rec.get('error', 'unknown')}"
            structural.extend((i, p, reason) for i, p in group["members"])
            continue
        trace = rec["trace"]
        if not trace.get("eligible", False):
            reason = ("capture ineligible: "
                      + "; ".join(trace.get("reasons") or ["unrecorded"]))
            structural.extend((i, p, reason) for i, p in group["members"])
            continue
        # One precompiled evaluator per base: the trace is parsed once
        # and identical channel-override signatures (e.g. period-only
        # satellites) are served from its memo.
        replayer = Replayer(trace)
        for i, point in group["members"]:
            p0 = time.perf_counter()
            try:
                res = adapter.derive(
                    trace,
                    replayer.replay(
                        adapter.overrides(dict(point.params),
                                          point.seed)),
                    dict(point.params), point.seed)
            except ReplayError as exc:
                structural.append((i, point, f"replay refused: {exc}"))
                continue
            except Exception as exc:  # noqa: BLE001 - fall back, record
                structural.append(
                    (i, point,
                     f"replay failed: {type(exc).__name__}: {exc}"))
                continue
            wall = time.perf_counter() - p0
            derived_count += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="ok", result=res,
                wall_seconds=wall, attempts=1, mode="derived")
            if cache is not None:
                cache.put(point, {"result": res, "telemetry": None},
                          mode="derived", cost=wall)

    # Analytic experiments have no kernel: the runner *is* the derived
    # evaluator, so its output is cached as exact (it is the exact
    # result) while the outcome is accounted as derived (no simulation
    # was dispatched for it).
    errors = 0
    for i, point in analytic:
        p0 = time.perf_counter()
        try:
            with _alarm(timeout):
                res = execute_job(JobRequest.from_point(point)).payload
        except Exception as exc:  # noqa: BLE001 - terminal for the point
            errors += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="error", attempts=1,
                mode="derived",
                error=f"{type(exc).__name__}: {exc}")
            continue
        wall = time.perf_counter() - p0
        derived_count += 1
        outcomes[i] = PointOutcome(
            index=i, point=point, status="ok", result=res,
            wall_seconds=wall, attempts=1, mode="derived")
        if cache is not None:
            cache.put(point, {"result": res, "telemetry": None},
                      cost=wall)

    structural.sort(key=lambda item: item[0])
    fallback_reasons: Dict[str, int] = {}
    for _, _, reason in structural:
        fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
    reason_of = {i: reason for i, _, reason in structural}
    fallback = [(i, p) for i, p, _ in structural]
    raw = _execute_batch(fallback, jobs=jobs, telemetry=False,
                         timeout=timeout, chunksize=chunksize)
    attempts = {i: 1 for i, _ in fallback}
    retried = 0
    for _ in range(max(0, retries)):
        failed = [(i, p) for i, p in fallback if not raw[i]["ok"]]
        if not failed:
            break
        retried += len(failed)
        retry_raw = _execute_batch(failed, jobs=jobs, telemetry=False,
                                   timeout=timeout, chunksize=1)
        for i, rec in retry_raw.items():
            attempts[i] += 1
            if rec["ok"] or not raw[i]["ok"]:
                raw[i] = rec

    executed = 0
    for i, point in fallback:
        rec = raw[i]
        if rec["ok"]:
            executed += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="ok", result=rec["result"],
                wall_seconds=rec.get("wall_seconds", 0.0),
                attempts=attempts[i], fallback_reason=reason_of[i])
            if cache is not None:
                cache.put(point, {"result": rec["result"],
                                  "telemetry": None},
                          cost=rec.get("wall_seconds", 0.0))
        else:
            errors += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="error",
                error=rec.get("error", "unknown failure"),
                attempts=attempts[i], fallback_reason=reason_of[i])

    result = SweepResult(
        experiment=experiment,
        outcomes=[o for o in outcomes if o is not None],
        jobs=jobs,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=sum(1 for o in outcomes
                       if o is not None and o.status == "cached"),
        cache_misses=len(pending),
        executed=executed,
        errors=errors,
        retried=retried,
        cache=cache.describe() if cache is not None else None,
        incremental=True,
        derived=derived_count,
        captures=captures_run,
        fallback_reasons=fallback_reasons,
    )
    if cache is not None:
        cache.flush_stats()
    return result


def _warm_tasks(groups: Dict[str, dict], experiment: str, jobs: int,
                timeout: Optional[float],
                chunksize: Optional[int]) -> List[dict]:
    """Split warm groups into pool tasks (chunks never mix groups).

    The default chunk size spreads each group over at most ``jobs``
    tasks: warm chunks should be *large* — every extra chunk of a group
    is a potential extra session build on another worker — so the
    fresh engine's ~4-chunks-per-worker heuristic would be
    counterproductive here.
    """
    tasks: List[dict] = []
    for digest, group in groups.items():
        members = group["members"]
        size = chunksize if chunksize is not None else \
            max(1, -(-len(members) // max(1, jobs)))
        for lo in range(0, len(members), size):
            tasks.append({
                "digest": digest,
                "experiment": experiment,
                "base_params": group["base_params"],
                "base_seed": group["base_seed"],
                "backend": group["backend"],
                "members": members[lo:lo + size],
                "timeout": timeout,
            })
    return tasks


def _run_warm(points: List[SweepPoint], *, jobs: int,
              cache: Optional[ResultCache],
              timeout: Optional[float], retries: int,
              chunksize: Optional[int]) -> SweepResult:
    """The ``warm=True`` engine: construct once per group, run many.

    Execution order (see ``docs/PERFORMANCE.md``):

    1. cache pass — identical keys to a plain ``telemetry=False``
       sweep, so warm, fresh, and cached runs all interchange;
    2. grouping by structural digest via the experiment's registered
       :class:`~repro.sweep.warm.BatchAdapter` (no adapter: every
       point demotes to the fresh path with the reason recorded);
    3. batch dispatch — one persistent pool for every group task, warm
       workers keep their sessions across tasks;
    4. demotions (session build/restore failures) and warm failures
       re-run through the normal fresh path, the latter consuming one
       retry; remaining ``retries`` apply as usual.
    """
    from .warm import batch_adapter_for, group_key, run_warm_chunk
    from .warm import warm_worker_init

    experiment = points[0].experiment
    if any(p.experiment != experiment for p in points):
        raise ValueError("warm sweeps require a single experiment")
    adapter = batch_adapter_for(experiment)
    t0 = time.perf_counter()

    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            outcomes[i] = PointOutcome(
                index=i, point=point, status="cached",
                result=hit.get("result"), telemetry=None)
        else:
            pending.append((i, point))

    # Partition: warm groups vs the fresh demotion set.
    reason_of: Dict[int, str] = {}
    fresh: List[Tuple[int, SweepPoint]] = []
    groups: Dict[str, dict] = {}
    if adapter is None:
        for i, point in pending:
            reason_of[i] = "no batch adapter registered"
            fresh.append((i, point))
    else:
        for i, point in pending:
            digest, bparams, bseed = group_key(point, adapter)
            group = groups.setdefault(
                digest, {"base_params": bparams, "base_seed": bseed,
                         "backend": point.backend, "members": []})
            group["members"].append((i, point))

    # Batch dispatch: one persistent pool serves every group task, so
    # workers keep their warm sessions across tasks (and sweeps, for
    # the in-process jobs<=1 path).
    tasks = _warm_tasks(groups, experiment, jobs, timeout, chunksize)
    counters = {"warm_points": 0, "restores": 0,
                "lowering_cache_hits": 0, "builds": 0}
    chunk_results: List[dict] = []
    if tasks:
        if jobs <= 1 or len(tasks) == 1:
            chunk_results = [run_warm_chunk(task) for task in tasks]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(tasks)),
                    initializer=warm_worker_init) as pool:
                futures = [(pool.submit(run_warm_chunk, task), task)
                           for task in tasks]
                for future, task in futures:
                    try:
                        chunk_results.append(future.result())
                    except BrokenProcessPool:
                        chunk_results.append({"records": [
                            {"index": i, "ok": False,
                             "error": "BrokenProcessPool: worker crashed"}
                            for i, _ in task["members"]], "counters": {}})
                    except Exception as exc:  # noqa: BLE001
                        chunk_results.append({"records": [
                            {"index": i, "ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                            for i, _ in task["members"]], "counters": {}})
    raw: Dict[int, dict] = {}
    for res in chunk_results:
        for rec in res["records"]:
            raw[rec["index"]] = rec
        for name, value in res.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value

    # Sort the warm records: successes become outcomes, session-level
    # demotions join the fresh set, per-point failures re-run fresh
    # (consuming one retry).
    executed = 0
    warm_failed: List[Tuple[int, SweepPoint]] = []
    for group in groups.values():
        for i, point in group["members"]:
            rec = raw.get(i, {"ok": False, "error": "warm record missing"})
            if not rec["ok"] and rec.get("fallback"):
                reason_of[i] = rec["fallback"]
                fresh.append((i, point))
            elif rec["ok"]:
                executed += 1
                outcomes[i] = PointOutcome(
                    index=i, point=point, status="ok",
                    result=rec["result"],
                    wall_seconds=rec.get("wall_seconds", 0.0),
                    attempts=1, execution=rec.get("execution", "warm"))
                if cache is not None:
                    cache.put(point, {"result": rec["result"],
                                      "telemetry": None},
                              cost=rec.get("wall_seconds", 0.0))
            else:
                reason_of[i] = ("warm execution failed: "
                                + rec.get("error", "unknown failure"))
                warm_failed.append((i, point))

    fresh_all = sorted(fresh + warm_failed)
    warm_failed_ids = {i for i, _ in warm_failed}
    raw2 = _execute_batch(fresh_all, jobs=jobs, telemetry=False,
                          timeout=timeout, chunksize=chunksize)
    attempts = {i: (2 if i in warm_failed_ids else 1)
                for i, _ in fresh_all}
    retried = len(warm_failed)
    for _ in range(max(0, retries)):
        failed = [(i, p) for i, p in fresh_all if not raw2[i]["ok"]]
        if not failed:
            break
        retried += len(failed)
        retry_raw = _execute_batch(failed, jobs=jobs, telemetry=False,
                                   timeout=timeout, chunksize=1)
        for i, rec in retry_raw.items():
            attempts[i] += 1
            if rec["ok"] or not raw2[i]["ok"]:
                raw2[i] = rec

    errors = 0
    fallback_reasons: Dict[str, int] = {}
    for i, point in fresh_all:
        reason = reason_of[i]
        fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
        rec = raw2[i]
        if rec["ok"]:
            executed += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="ok", result=rec["result"],
                wall_seconds=rec.get("wall_seconds", 0.0),
                attempts=attempts[i], fallback_reason=reason)
            if cache is not None:
                cache.put(point, {"result": rec["result"],
                                  "telemetry": None},
                          cost=rec.get("wall_seconds", 0.0))
        else:
            errors += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="error",
                error=rec.get("error", "unknown failure"),
                attempts=attempts[i], fallback_reason=reason)

    result = SweepResult(
        experiment=experiment,
        outcomes=[o for o in outcomes if o is not None],
        jobs=jobs,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=sum(1 for o in outcomes
                       if o is not None and o.status == "cached"),
        cache_misses=len(pending),
        executed=executed,
        errors=errors,
        retried=retried,
        cache=cache.describe() if cache is not None else None,
        fallback_reasons=fallback_reasons,
        warm=True,
        warm_groups=len(groups),
        warm_points=counters["warm_points"],
        restores=counters["restores"],
        lowering_cache_hits=counters["lowering_cache_hits"],
    )
    if cache is not None:
        cache.stats.warm_points += counters["warm_points"]
        cache.stats.warm_restores += counters["restores"]
        cache.stats.warm_lowering_hits += counters["lowering_cache_hits"]
        cache.flush_stats()
    return result
