"""The sweep engine: execute SweepPoints serially or across a process pool.

Execution model
---------------
1. Every point is first resolved against the result cache (when one is
   given); hits never touch a worker.
2. Remaining points are packed into chunks and executed — in-process
   for ``jobs <= 1``, across a ``ProcessPoolExecutor`` otherwise.  A
   chunk is one pool task: for short simulation points the per-task
   dispatch overhead would otherwise dominate.
3. Inside the worker each point runs under a SIGALRM watchdog
   (``timeout`` seconds) and inside its own telemetry capture window,
   so a wedged simulation dies with a ``PointTimeout`` instead of
   sinking the sweep, and the per-point telemetry report travels back
   with the result.
4. Failed points (exception, timeout, or a crashed worker process that
   took its whole chunk down) are retried once (``retries``), each in
   its own single-point chunk.  A point that fails again is recorded as
   an ``error`` outcome; the rest of the sweep is unaffected.
5. Outcomes are reassembled **in point order**, so the merged report is
   identical in content to a serial run regardless of which worker
   finished first.

Determinism: the engine never invents randomness.  Seeds live in the
points (assigned by the space builders), telemetry labels are derived
from point indices, and ``SweepResult.canonical()`` strips the only
nondeterministic fields (wall-clock times) — two runs of the same sweep
are bit-identical under it, whether serial, parallel, or cache-served.
"""

from __future__ import annotations

import signal
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import ResultCache
from .point import SweepPoint
from .serialize import NONDETERMINISTIC_FIELDS, canonical_json

__all__ = ["PointTimeout", "PointOutcome", "SweepResult", "run_sweep"]


class PointTimeout(Exception):
    """A sweep point exceeded its per-point wall-clock budget."""


@contextmanager
def _alarm(seconds: Optional[float]):
    """Raise :class:`PointTimeout` in the current process after ``seconds``.

    SIGALRM-based, so it fires even inside a busy simulation loop.
    Where the signal cannot be armed (non-main thread, platforms
    without SIGALRM) the point instead runs under the kernel's ambient
    wall-clock budget (:func:`repro.kernel.time_budget`), which the
    simulator's timestep loop polls — a slightly softer deadline, but
    never silently unbounded.  A no-op only when no timeout was
    requested at all.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    usable = hasattr(signal, "SIGALRM")
    if usable:
        try:
            old = signal.signal(
                signal.SIGALRM,
                lambda signum, frame: (_ for _ in ()).throw(
                    PointTimeout(f"point exceeded {seconds:.3g}s")))
        except ValueError:  # not in the main thread
            usable = False
    if not usable:
        from ..kernel.simulator import TimeBudgetExceeded, time_budget

        try:
            with time_budget(seconds):
                yield
        except TimeBudgetExceeded as exc:
            raise PointTimeout(
                f"point exceeded {seconds:.3g}s "
                f"(kernel cycle-budget fallback)") from exc
        return
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _execute_point(index: int, point: SweepPoint, *,
                   telemetry: bool) -> dict:
    """Run one point in the current process; returns its raw payload.

    The runner is resolved from the sweep registry by name — the point
    itself stays plain data.  With ``telemetry`` the point runs inside
    its own capture window and the flattened report records ride along
    (and into the cache), labelled by point index so serial and parallel
    runs produce identical records.
    """
    from ..experiments.sweeps import get_sweep
    from ..kernel.backend import use_backend

    spec = get_sweep(point.experiment)
    t0 = time.perf_counter()
    if telemetry:
        from .. import observe

        # Telemetry forces the threaded kernel anyway (the compiled
        # engine detaches when a hub is attached); running the point
        # under its requested backend keeps the fallback accounting
        # honest either way.
        with use_backend(point.backend), observe.capture() as session:
            result = spec.runner(dict(point.params), point.seed)
        records = observe.to_records(
            session.report(label=f"{point.experiment}[{index}]"))
    else:
        with use_backend(point.backend):
            result = spec.runner(dict(point.params), point.seed)
        records = None
    return {"result": result, "telemetry": records,
            "wall_seconds": time.perf_counter() - t0}


def _run_chunk(items: Sequence[Tuple[int, SweepPoint]], telemetry: bool,
               timeout: Optional[float]) -> List[dict]:
    """Worker entry point: execute one chunk of (index, point) pairs.

    Per-point failures are caught and returned as data — only a hard
    crash of the worker process itself (segfault, OOM kill) loses the
    chunk, and the engine retries those points individually.
    """
    out = []
    for index, point in items:
        try:
            with _alarm(timeout):
                payload = _execute_point(index, point, telemetry=telemetry)
            out.append({"index": index, "ok": True, **payload})
        except Exception as exc:  # noqa: BLE001 - reported per point
            out.append({"index": index, "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"})
    return out


@dataclass
class PointOutcome:
    """What happened to one point: executed, cache-served, or failed."""

    index: int
    point: SweepPoint
    status: str  # "ok" | "cached" | "error"
    result: Optional[dict] = None
    telemetry: Optional[List[dict]] = None
    wall_seconds: float = 0.0
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class SweepResult:
    """An ordered sweep outcome plus engine/cache accounting."""

    experiment: str
    outcomes: List[PointOutcome] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    errors: int = 0
    retried: int = 0
    cache: Optional[dict] = None  # ResultCache.describe() snapshot

    @property
    def points(self) -> List[SweepPoint]:
        return [o.point for o in self.outcomes]

    @property
    def results(self) -> List[Optional[dict]]:
        """Per-point result records, point order (``None`` for errors)."""
        return [o.result for o in self.outcomes]

    @property
    def ok_results(self) -> List[dict]:
        return [o.result for o in self.outcomes if o.result is not None]

    def report(self, *, label: Optional[str] = None):
        """Merge per-point telemetry into one ordered TelemetryReport.

        Reports are merged in point-index order, so the merged report's
        content is independent of worker scheduling — identical to what
        a serial run produces.
        """
        from ..observe import from_records, merge

        parts = [from_records(o.telemetry) for o in self.outcomes
                 if o.telemetry]
        return merge(parts, label=label or self.experiment)

    def canonical(self) -> str:
        """Bit-comparable serialization of everything deterministic."""
        from ..observe import to_records

        return canonical_json({
            "experiment": self.experiment,
            "points": [p.identity() for p in self.points],
            "results": self.results,
            "telemetry": to_records(self.report()),
        }, exclude=NONDETERMINISTIC_FIELDS)

    def summary(self) -> str:
        """One status line: point counts, cache traffic, wall clock."""
        parts = [f"sweep {self.experiment}: {len(self.outcomes)} points",
                 f"{self.cache_hits} cached / {self.executed} executed"
                 + (f" / {self.errors} errors" if self.errors else ""),
                 f"jobs={self.jobs}", f"{self.wall_seconds:.2f}s wall"]
        if self.retried:
            parts.insert(2, f"{self.retried} retried")
        return " | ".join(parts)

    def to_payload(self) -> dict:
        """Full JSON-able dump (CLI ``--json``): points, results, stats."""
        return {
            "experiment": self.experiment,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "errors": self.errors,
            "retried": self.retried,
            "cache": self.cache,
            "points": [o.point.identity() for o in self.outcomes],
            "results": self.results,
            "statuses": [o.status for o in self.outcomes],
            "telemetry": [r for o in self.outcomes
                          for r in (o.telemetry or ())],
        }


def _chunked(items: List[Tuple[int, SweepPoint]], jobs: int,
             chunksize: Optional[int]) -> List[List[Tuple[int, SweepPoint]]]:
    if chunksize is None:
        # ~4 chunks per worker balances dispatch overhead against
        # stragglers holding the tail of the sweep.
        chunksize = max(1, len(items) // max(1, jobs * 4))
    return [items[i:i + chunksize] for i in range(0, len(items), chunksize)]


def _execute_batch(items: List[Tuple[int, SweepPoint]], *, jobs: int,
                   telemetry: bool, timeout: Optional[float],
                   chunksize: Optional[int]) -> Dict[int, dict]:
    """Execute (index, point) pairs; returns raw payloads keyed by index.

    Worker-process crashes surface as ``BrokenProcessPool`` on every
    outstanding future of that pool; the affected points are returned as
    failed payloads so the caller's retry pass can re-run them — a fresh
    pool is created per batch, so one crash never poisons the retry.
    """
    raw: Dict[int, dict] = {}
    if not items:
        return raw
    if jobs <= 1 or len(items) == 1:
        for rec in _run_chunk(items, telemetry, timeout):
            raw[rec.pop("index")] = rec
        return raw
    chunks = _chunked(items, jobs, chunksize)
    with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
        futures = [(pool.submit(_run_chunk, chunk, telemetry, timeout), chunk)
                   for chunk in chunks]
        for future, chunk in futures:
            try:
                records = future.result()
            except BrokenProcessPool:
                records = [{"index": i, "ok": False,
                            "error": "BrokenProcessPool: worker crashed"}
                           for i, _ in chunk]
            except Exception as exc:  # noqa: BLE001 - whole-chunk failure
                records = [{"index": i, "ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
                           for i, _ in chunk]
            for rec in records:
                raw[rec.pop("index")] = rec
    return raw


def run_sweep(points: Sequence[SweepPoint], *, jobs: int = 1,
              cache: Optional[ResultCache] = None,
              timeout: Optional[float] = None, retries: int = 1,
              telemetry: bool = True,
              chunksize: Optional[int] = None) -> SweepResult:
    """Execute a parameter sweep; returns ordered outcomes + accounting.

    ``jobs`` is the worker-process count (``<=1`` = in this process),
    ``cache`` fronts execution with the content-addressed result store,
    ``timeout`` is the per-point wall-clock budget in seconds, and
    ``retries`` is how many times a failed point is re-run before being
    recorded as an error.
    """
    points = list(points)
    if not points:
        raise ValueError("run_sweep needs at least one SweepPoint")
    experiment = points[0].experiment
    t0 = time.perf_counter()

    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    pending: List[Tuple[int, SweepPoint]] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            outcomes[i] = PointOutcome(
                index=i, point=point, status="cached",
                result=hit.get("result"), telemetry=hit.get("telemetry"),
                wall_seconds=0.0, attempts=0)
        else:
            pending.append((i, point))

    raw = _execute_batch(pending, jobs=jobs, telemetry=telemetry,
                         timeout=timeout, chunksize=chunksize)
    attempts = {i: 1 for i, _ in pending}
    retried = 0
    for _ in range(max(0, retries)):
        failed = [(i, p) for i, p in pending if not raw[i]["ok"]]
        if not failed:
            break
        retried += len(failed)
        retry_raw = _execute_batch(failed, jobs=jobs, telemetry=telemetry,
                                   timeout=timeout, chunksize=1)
        for i, rec in retry_raw.items():
            attempts[i] += 1
            if rec["ok"] or not raw[i]["ok"]:
                raw[i] = rec

    executed = errors = 0
    for i, point in pending:
        rec = raw[i]
        if rec["ok"]:
            executed += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="ok", result=rec["result"],
                telemetry=rec.get("telemetry"),
                wall_seconds=rec.get("wall_seconds", 0.0),
                attempts=attempts[i])
            if cache is not None:
                cache.put(point, {"result": rec["result"],
                                  "telemetry": rec.get("telemetry")})
        else:
            errors += 1
            outcomes[i] = PointOutcome(
                index=i, point=point, status="error",
                error=rec.get("error", "unknown failure"),
                attempts=attempts[i])

    result = SweepResult(
        experiment=experiment,
        outcomes=[o for o in outcomes if o is not None],
        jobs=jobs,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=sum(1 for o in outcomes
                       if o is not None and o.status == "cached"),
        cache_misses=len(pending),
        executed=executed,
        errors=errors,
        retried=retried,
        cache=cache.describe() if cache is not None else None,
    )
    return result
