"""Section 4 verification claim: stall injection finds corner cases.

"Leveraging the advantages of LI design, we add an option to inject
random stalls into any channel ... Such testing assists in quickly
covering complex corner case scenarios that otherwise would require
significant dedicated test development effort."

The experiment plants a classic latency-insensitivity bug — a forwarding
unit that drops a message after repeated backpressure (a missing skid
buffer) — and measures how quickly randomized stall campaigns expose it.
Without stalls the consumer is always ready, backpressure never happens,
and the buggy design passes every test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..connections import Buffer, In, Out
from ..design.hierarchy import component_scope
from ..kernel import Simulator
from .. import registry
from ..sweep.point import SweepPoint
from ..sweep.warm import BatchAdapter, WarmSession

__all__ = ["LeakyForwarder", "build_stall_testbench", "stall_campaign",
           "CampaignResult", "format_campaign", "sweep_space",
           "run_sweep_point", "campaigns_from_sweep", "summarize_sweep",
           "make_replay_adapter", "BATCH_ADAPTER"]

#: Defaults shared by the serial campaign and the sweep space, so both
#: enumerate exactly the same (probability, seed) grid.
DEFAULT_PROBABILITIES = (0.0, 0.1, 0.3, 0.5)
DEFAULT_TRIALS = 10
DEFAULT_BASE_SEED = 100


class LeakyForwarder:
    """A forwarding unit with a seeded backpressure bug.

    With ``bug=True`` the unit drops the in-flight message after two
    consecutive failed pushes — exactly the kind of timing-interaction
    defect that only appears when the downstream stalls.
    """

    def __init__(self, sim, clock, *, bug: bool = True, name: str = "fwd"):
        self.bug = bug
        with component_scope(sim, name, kind="LeakyForwarder", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.in_port: In = In(name="in")
            self.out_port: Out = Out(name="out")
            self.forwarded = 0
            self.dropped = 0
            # Factory-style registration keeps the design snapshot-
            # eligible (warm batched sweeps re-create the generator on
            # every restore); the counters rewind via on_restore below.
            sim.add_thread(lambda: self._run(), clock, name="ctl")
            sim.on_restore(self._reset_counters)

    def _reset_counters(self) -> None:
        self.forwarded = 0
        self.dropped = 0

    def _run(self) -> Generator:
        while True:
            msg = yield from self.in_port.pop()
            fails = 0
            dropped = False
            while not self.out_port.push_nb(msg):
                fails += 1
                if self.bug and fails >= 2:
                    self.dropped += 1  # the bug: message silently lost
                    dropped = True
                    break
                yield
            if not dropped:
                self.forwarded += 1
            yield


@dataclass(frozen=True)
class CampaignResult:
    stall_probability: float
    trials: int
    detections: int
    first_detection_trial: int  # -1 if never detected

    @property
    def detection_rate(self) -> float:
        return self.detections / self.trials


def build_stall_testbench(stall_probability: float = 0.3, seed: int = 100, *,
                          n_msgs: int = 60, bug: bool = True):
    """Construct (without running) one stall-injection trial.

    Returns ``(sim, received)``: run the simulator, then compare
    ``received`` against ``list(range(n_msgs))`` to detect the bug.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    up = Buffer(sim, clk, capacity=2, name="up")
    down = Buffer(sim, clk, capacity=2, name="down")
    if stall_probability > 0:
        down.set_stall(stall_probability, seed=seed)
    dut = LeakyForwarder(sim, clk, bug=bug)
    dut.in_port.bind(up)
    dut.out_port.bind(down)
    received: List[int] = []

    def producer(src):
        for i in range(n_msgs):
            yield from src.push(i)

    def consumer(dst):
        # Fixed test length: LI-correct designs deliver everything.
        for _ in range(n_msgs * 40):
            ok, msg = dst.pop_nb()
            if ok:
                received.append(msg)
            yield

    # Ports are constructed once (inside their component scope); only
    # the generators are factory-recreated on a snapshot restore.
    with component_scope(sim, "src", kind="StreamSource", clock=clk):
        src_port = Out(up, name="out")
        sim.add_thread(lambda: producer(src_port), clk, name="ctl")
    with component_scope(sim, "snk", kind="StreamSink", clock=clk):
        snk_port = In(down, name="in")
        sim.add_thread(lambda: consumer(snk_port), clk, name="ctl")
    sim.on_restore(received.clear)
    return sim, received


def _one_trial(stall_probability: float, seed: int, *, n_msgs: int = 60,
               bug: bool = True) -> bool:
    """Returns True if the trial *detected* the bug (output mismatch)."""
    sim, received = build_stall_testbench(stall_probability, seed,
                                          n_msgs=n_msgs, bug=bug)
    sim.run(until=n_msgs * 1200)
    return received != list(range(n_msgs))


def stall_campaign(stall_probability: float, *, trials: int = 20,
                   bug: bool = True, base_seed: int = 100) -> CampaignResult:
    """Run randomized trials at one stall probability."""
    detections = 0
    first = -1
    for t in range(trials):
        if _one_trial(stall_probability, base_seed + t, bug=bug):
            detections += 1
            if first < 0:
                first = t + 1
    return CampaignResult(stall_probability, trials, detections, first)


# ----------------------------------------------------------------------
# sweep integration (repro.sweep): one point per (probability, trial)
# ----------------------------------------------------------------------
def sweep_space(*, probabilities=DEFAULT_PROBABILITIES,
                trials: int = DEFAULT_TRIALS, seed: int = DEFAULT_BASE_SEED,
                n_msgs: int = 60, bug: bool = True) -> List[SweepPoint]:
    """Enumerate the stall campaign as independent seeded trials.

    ``seed`` is the campaign base seed; trial ``t`` runs with
    ``seed + t`` at every probability — the exact grid
    :func:`stall_campaign` walks serially.
    """
    return [
        SweepPoint("stall_verification",
                   {"stall_probability": p, "trial": t,
                    "n_msgs": n_msgs, "bug": bug},
                   seed=seed + t)
        for p in probabilities
        for t in range(trials)
    ]


def run_sweep_point(params: dict, seed: int) -> dict:
    """Execute one trial; the sweep registry's point runner."""
    detected = _one_trial(params["stall_probability"], seed,
                          n_msgs=params["n_msgs"], bug=params["bug"])
    return {"stall_probability": params["stall_probability"],
            "trial": params["trial"], "seed": seed, "detected": detected}


# ----------------------------------------------------------------------
# replay adapter: the *dynamic* fallback showcase
# ----------------------------------------------------------------------
# The static classifier accepts these points (only the stall knobs vary
# between trials), but the capture itself records that this harness is
# not replayable — LeakyForwarder retries with push_nb and the checker
# polls with pop_nb, and non-blocking timing races are exactly what
# analytical replay cannot reconstruct.  `sweep --incremental` therefore
# captures the base once, reads the recorded reasons, and falls back to
# full simulation for every point — the honest path an adapter author
# hits before restructuring a harness around blocking handshakes
# (compare li_latency, which is this pipeline rebuilt replay-safe).
def _replay_base_params(params: dict) -> dict:
    return {**params, "stall_probability": 0.0, "trial": 0}


def _replay_base_seed(params: dict, seed: int) -> int:
    return DEFAULT_BASE_SEED


def _replay_capture(base_params: dict, base_seed: int) -> dict:
    from ..trace.capture import capture

    sim, _ = build_stall_testbench(
        base_params["stall_probability"], base_seed,
        n_msgs=base_params["n_msgs"], bug=base_params["bug"])
    with capture(sim) as session:
        sim.run(until=base_params["n_msgs"] * 1200)
    return session.trace


def _replay_overrides(params: dict, seed: int) -> dict:
    channels = {}
    if params["stall_probability"] > 0.0:
        channels["down"] = {"stall": [params["stall_probability"], seed]}
    return {"channels": channels}


def _replay_derive(trace: dict, result, params: dict, seed: int) -> dict:
    from ..trace.replay import ReplayError

    # Unreachable while the harness uses non-blocking ops; kept as a
    # guard because `detected` depends on message *values* (which the
    # trace does not carry), so timing replay alone can never serve it.
    raise ReplayError(
        "stall_verification records depend on delivered message values, "
        "which op traces do not capture")


def make_replay_adapter():
    """Built lazily: repro.trace imports must not load at module scope
    here (the sweep registry imports this module eagerly)."""
    from ..trace.adapter import ReplayAdapter

    return ReplayAdapter(
        kind="trace",
        safe_params=frozenset({"stall_probability", "trial"}),
        base_params=_replay_base_params,
        base_seed=_replay_base_seed,
        capture=_replay_capture,
        overrides=_replay_overrides,
        derive=_replay_derive,
    )


# ----------------------------------------------------------------------
# batch adapter: warm batched execution (`sweep --warm`)
# ----------------------------------------------------------------------
# Where analytical replay is impossible for this harness (non-blocking
# timing races, value-dependent verdicts — see the replay adapter
# above), warm batching is not: a warm session *re-simulates* every
# point on the constructed testbench, so the non-blocking ops and
# message values play out exactly as in a fresh build.  The pair makes
# the contrast concrete: replay derives results from one recorded run,
# warm batching amortizes construction across many real runs.
def _batch_build(base_params: dict, base_seed: int) -> WarmSession:
    sim, received = build_stall_testbench(
        base_params["stall_probability"], base_seed,
        n_msgs=base_params["n_msgs"], bug=base_params["bug"])
    down = next(chan for inst in sim.design.root.walk()
                for chan in inst.channels if chan.path == "down")
    return WarmSession(sim=sim, context={"received": received,
                                         "down": down})


def _batch_run(session: WarmSession, params: dict, seed: int) -> dict:
    if params["stall_probability"] > 0.0:
        session.context["down"].set_stall(params["stall_probability"],
                                          seed=seed)
    n_msgs = params["n_msgs"]
    session.sim.run(until=n_msgs * 1200)
    detected = session.context["received"] != list(range(n_msgs))
    return {"stall_probability": params["stall_probability"],
            "trial": params["trial"], "seed": seed, "detected": detected}


BATCH_ADAPTER = BatchAdapter(
    safe_params=frozenset({"stall_probability", "trial"}),
    base_params=_replay_base_params,
    base_seed=_replay_base_seed,
    build=_batch_build,
    run=_batch_run,
)


def campaigns_from_sweep(results: List[dict]) -> List[CampaignResult]:
    """Fold per-trial sweep records back into per-probability campaigns.

    Records may arrive in any order; trials are re-sorted so the
    ``first_detection_trial`` statistic matches a serial campaign.
    """
    by_p: dict = {}
    for rec in results:
        by_p.setdefault(rec["stall_probability"], []).append(rec)
    campaigns = []
    for p in sorted(by_p):
        trials = sorted(by_p[p], key=lambda r: r["trial"])
        detections = sum(1 for r in trials if r["detected"])
        first = next((r["trial"] + 1 for r in trials if r["detected"]), -1)
        campaigns.append(CampaignResult(p, len(trials), detections, first))
    return campaigns


def summarize_sweep(results: List[dict]) -> str:
    return format_campaign(campaigns_from_sweep(results))


def format_campaign(results: List[CampaignResult]) -> str:
    lines = ["Stall-injection bug hunting (seeded backpressure-drop bug)",
             f"{'stall p':>8} {'trials':>7} {'detections':>11} "
             f"{'first hit':>10}"]
    for r in results:
        first = str(r.first_detection_trial) if r.first_detection_trial > 0 \
            else "never"
        lines.append(f"{r.stall_probability:>8.2f} {r.trials:>7} "
                     f"{r.detections:>11} {first:>10}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> List[CampaignResult]:
    base_seed = seed if seed is not None else DEFAULT_BASE_SEED
    return [stall_campaign(p, trials=10, base_seed=base_seed)
            for p in DEFAULT_PROBABILITIES]


def _cli_design():
    """One stall-injection trial around the LeakyForwarder DUT."""
    sim, _received = build_stall_testbench(0.3, 100)
    return sim


registry.register(registry.ExperimentSpec(
    name="stalls",
    summary="4: stall-injection bug hunting",
    runner=_cli_runner,
    formatter=format_campaign,
    design=_cli_design,
    sweep=registry.SweepSpec(
        name="stall_verification",
        help="randomized stall-injection trials "
             "(4 probabilities x 10 seeds)",
        space=sweep_space,
        runner=run_sweep_point,
        summarize=summarize_sweep,
        # Statically derivable, dynamically refused: the capture records
        # the harness's non-blocking ops and every point falls back with
        # that reason — the recorded-capability path, exercised for real.
        replay=make_replay_adapter(),
        batch=BATCH_ADAPTER,
    ),
    compiled=True,
    order=70,
))
