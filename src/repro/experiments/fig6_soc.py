"""Figure 6: performance-model accuracy on six SoC-level tests.

The paper runs six SoC-level tests on both the SystemC performance model
(sim-accurate Connections) and HLS-generated RTL in a Verilog simulator,
reporting 20-30x wall-clock speedup at < 3 % elapsed-cycle error.

Here each workload runs on the prototype SoC twice: ``mode="fast"``
(the performance model) and ``mode="rtl"`` (signal-level links plus
per-unit netlist activity).  Both runs produce bit-exact results — the
checks inside :func:`~repro.workloads.soc_workloads.run_workload` assert
it — so the comparison isolates modelling speed and timing fidelity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from .. import registry
from ..sweep.point import SweepPoint
from ..workloads.soc_workloads import (
    SocWorkload,
    conv2d_workload,
    dot_product_workload,
    kmeans_workload,
    memcpy_workload,
    reduction_workload,
    run_workload,
    vector_scale_workload,
)

__all__ = ["Fig6Point", "run_fig6_test", "figure6", "format_figure6",
           "fig6_workloads_small", "pe_scaling_space",
           "run_pe_scaling_point", "summarize_pe_scaling"]


@dataclass(frozen=True)
class Fig6Point:
    """One SoC-level test's fast-vs-RTL comparison."""

    name: str
    cycles_fast: int
    cycles_rtl: int
    wall_fast: float
    wall_rtl: float

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of the performance model over RTL."""
        return self.wall_rtl / self.wall_fast

    @property
    def cycle_error(self) -> float:
        """Relative elapsed-cycles discrepancy (fast vs RTL reference)."""
        return abs(self.cycles_fast - self.cycles_rtl) / self.cycles_rtl


def fig6_workloads_small() -> List[SocWorkload]:
    """Reduced-size variants of the six tests (tractable RTL runtimes)."""
    return [
        vector_scale_workload(n_pes=16, n_per_pe=32),
        memcpy_workload(n_pes=16, n_per_pe=32),
        reduction_workload(n_pes=16, n_per_pe=32),
        dot_product_workload(n_pes=16, n_per_pe=24),
        conv2d_workload(height=5, width=10),
        kmeans_workload(n_points=16, dim=2, k=2, n_pes=4),
    ]


def run_fig6_test(workload: SocWorkload) -> Fig6Point:
    """Run one workload in both modes and compare."""
    start = time.perf_counter()
    soc_fast = run_workload(workload, mode="fast")
    wall_fast = time.perf_counter() - start

    start = time.perf_counter()
    soc_rtl = run_workload(workload, mode="rtl")
    wall_rtl = time.perf_counter() - start

    return Fig6Point(
        name=workload.name,
        cycles_fast=soc_fast.finish_time // soc_fast.CLOCK_PERIOD,
        cycles_rtl=soc_rtl.finish_time // soc_rtl.CLOCK_PERIOD,
        wall_fast=wall_fast,
        wall_rtl=wall_rtl,
    )


def figure6(workloads: Optional[List[SocWorkload]] = None) -> List[Fig6Point]:
    """Regenerate Figure 6's data (six points by default)."""
    if workloads is None:
        workloads = fig6_workloads_small()
    return [run_fig6_test(w) for w in workloads]


# ----------------------------------------------------------------------
# sweep integration (repro.sweep): PE-array strong scaling, one point
# per PE count at a fixed total problem size
# ----------------------------------------------------------------------
def pe_scaling_space(*, pe_counts=(1, 2, 4, 8), total_words: int = 256,
                     mode: str = "fast", seed: int = 0) -> List[SweepPoint]:
    """Enumerate the PE strong-scaling sweep on the prototype SoC.

    The workload data is deterministic; ``seed`` only contributes to the
    point identity (so differently-seeded sweeps cache separately).
    """
    return [
        SweepPoint("pe_scaling",
                   {"n_pes": n, "n_per_pe": total_words // n, "mode": mode},
                   seed=seed)
        for n in pe_counts
    ]


def run_pe_scaling_point(params: dict, seed: int) -> dict:
    """Run one PE count's workload; the sweep registry's point runner."""
    workload = vector_scale_workload(n_pes=params["n_pes"],
                                     n_per_pe=params["n_per_pe"])
    soc = run_workload(workload, mode=params["mode"])
    return {"n_pes": params["n_pes"], "n_per_pe": params["n_per_pe"],
            "mode": params["mode"],
            "cycles": soc.finish_time // soc.CLOCK_PERIOD}


def summarize_pe_scaling(results: List[dict]) -> str:
    """Render the strong-scaling table (throughput relative to 1 PE)."""
    recs = sorted(results, key=lambda r: r["n_pes"])
    base = next((r["cycles"] for r in recs if r["n_pes"] == 1),
                recs[0]["cycles"] if recs else 0)
    lines = ["PE-array strong scaling (vector scale, fixed total words)",
             f"{'PEs':>5} {'words/PE':>9} {'cycles':>9} {'speedup':>8}"]
    for r in recs:
        speedup = base / r["cycles"] if r["cycles"] else 0.0
        lines.append(f"{r['n_pes']:>5} {r['n_per_pe']:>9} "
                     f"{r['cycles']:>9} {speedup:>8.2f}")
    return "\n".join(lines)


def format_figure6(points: List[Fig6Point]) -> str:
    """Render the speedup-vs-error scatter as a table."""
    lines = [
        "Figure 6: SystemC performance model vs RTL, SoC-level tests",
        f"{'test':>16} {'cycles(fast)':>12} {'cycles(rtl)':>12} "
        f"{'error %':>8} {'speedup x':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.name:>16} {p.cycles_fast:>12} {p.cycles_rtl:>12} "
            f"{100 * p.cycle_error:>8.2f} {p.speedup:>10.1f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> List[Fig6Point]:
    return figure6()


def _cli_design():
    """A small Figure 6 SoC in fast mode (2x2 PE array)."""
    from ..soc.chip import PrototypeSoC

    return PrototypeSoC(mode="fast", pe_columns=2, pe_rows=2, lanes=4,
                        spad_words=256, gmem_words=1024).sim


registry.register(registry.ExperimentSpec(
    name="fig6",
    summary="Figure 6: SoC speedup vs cycle error (slow!)",
    runner=_cli_runner,
    formatter=format_figure6,
    design=_cli_design,
    sweep=registry.SweepSpec(
        name="pe_scaling",
        help="PE-array strong scaling on the prototype SoC (fast mode)",
        space=pe_scaling_space,
        runner=run_pe_scaling_point,
        summarize=summarize_pe_scaling,
    ),
    compiled=True,
    seedable=False,
    order=20,
))
