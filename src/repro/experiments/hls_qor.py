"""Section 2.2 QoR claim: HLS within ±10 % of hand-optimized RTL.

"Preliminary experiments across a range of datapath modules and small
functional units show that comparable QoR (±10 %) can be achieved
through appropriate code optimizations and design constraints."

This experiment compares the HLS engine's area (scheduled, bound, with
control/mux/register overheads) against an analytic hand-RTL reference
for a range of datapath modules — under good constraints and, as the
ablation, under deliberately bad ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .. import registry
from ..hls import (
    adder_tree_design,
    alu_design,
    estimate_area,
    fir_design,
    hand_rtl_area,
    schedule,
    vector_mac_design,
)

__all__ = ["QorResult", "hls_vs_hand_qor", "bad_constraint_ablation",
           "format_qor_results"]


@dataclass(frozen=True)
class QorResult:
    design: str
    hls_area: float
    hand_area: float

    @property
    def delta(self) -> float:
        """Signed relative area difference (positive = HLS bigger)."""
        return self.hls_area / self.hand_area - 1.0


def _module_suite() -> List:
    return [
        vector_mac_design(8, 16),
        vector_mac_design(16, 16),
        fir_design(8, 16),
        fir_design(16, 16),
        adder_tree_design(16, 32),
        adder_tree_design(32, 32),
        alu_design(32),
        alu_design(64),
    ]


def hls_vs_hand_qor(*, clock_period_ps: float = 909.0) -> List[QorResult]:
    """Well-constrained HLS vs hand RTL across the datapath suite."""
    results = []
    for design in _module_suite():
        rpt = estimate_area(schedule(design, clock_period_ps=clock_period_ps))
        results.append(QorResult(design.name, rpt.total,
                                 hand_rtl_area(design)))
    return results


def bad_constraint_ablation(*, clock_period_ps: float = 909.0) -> List[QorResult]:
    """The flip side: over-constrained resources blow the QoR budget."""
    results = []
    for design in _module_suite():
        sched = schedule(design, clock_period_ps=clock_period_ps,
                         resource_limits={"mul": 1, "add": 1})
        rpt = estimate_area(sched, pipelined=True)
        results.append(QorResult(design.name, rpt.total,
                                 hand_rtl_area(design)))
    return results


def format_qor_results(results: List[QorResult], *, title: str) -> str:
    lines = [title,
             f"{'design':>16} {'HLS NAND2':>12} {'hand NAND2':>12} {'delta %':>9}"]
    for r in results:
        lines.append(f"{r.design:>16} {r.hls_area:>12,.0f} "
                     f"{r.hand_area:>12,.0f} {100 * r.delta:>9.1f}")
    worst = max(abs(r.delta) for r in results)
    lines.append(f"worst |delta|: {100 * worst:.1f} %")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> dict:
    return {"hls_vs_hand": hls_vs_hand_qor(),
            "bad_constraints": bad_constraint_ablation()}


def _cli_format(payload: dict) -> str:
    return (format_qor_results(payload["hls_vs_hand"],
                               title="HLS vs hand RTL (paper: ±10 %)")
            + "\n\n"
            + format_qor_results(payload["bad_constraints"],
                                 title="...with bad constraints (ablation)"))


registry.register(registry.ExperimentSpec(
    name="hls-qor",
    summary="2.2: HLS vs hand RTL",
    runner=_cli_runner,
    formatter=_cli_format,
    compiled=False,       # analytic QoR model, no simulated design
    seedable=False,
    order=40,
))
