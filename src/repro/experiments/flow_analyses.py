"""Flow-level analyses as registered experiments: backend + productivity.

The section-4 claims that are pure models — backend turnaround (the
12-hour claim) and design productivity (gates per engineer-day) — used
to live only as hand-written CLI verbs.  This module gives each one a
proper :class:`~repro.registry.ExperimentSpec` so they flow through the
same job-oriented execution core (:mod:`repro.jobs`) as the simulated
experiments: ``repro run backend --json`` produces the same canonical
payload the legacy verb does.

Both are analytic (no simulated design, no sweep space) and fully
deterministic — ``--seed`` is accepted and ignored.
"""

from __future__ import annotations

from typing import List

from .. import registry

__all__ = ["run_backend_turnaround", "format_backend_turnaround",
           "run_productivity", "format_productivity"]


def run_backend_turnaround(params: dict = None, seed=None) -> dict:
    """Evaluate the flow-runtime model over the testchip inventory."""
    from ..flow import FlowRuntimeModel, inventory_partitions
    from ..flow import testchip_inventory as chip_inventory

    model = FlowRuntimeModel()
    parts = inventory_partitions(chip_inventory())
    return {"gals": model.turnaround(parts, gals=True),
            "synchronous": model.turnaround(parts, gals=False),
            "flat_hours": model.flat_hours(parts)}


def format_backend_turnaround(payload: dict) -> str:
    return (payload["gals"].to_text()
            + f"\nsynchronous hierarchical flow: "
              f"{payload['synchronous'].total_hours:.1f} h"
            + f"\nflat flow: {payload['flat_hours']:.1f} h")


def run_productivity(params: dict = None, seed=None) -> dict:
    """Evaluate the effort model under both methodologies."""
    from ..flow import (
        OOHLS_METHODOLOGY,
        RTL_METHODOLOGY,
        inventory_efforts,
        productivity_report,
    )
    from ..flow import testchip_inventory as chip_inventory

    efforts = inventory_efforts(chip_inventory())
    return {"oohls": productivity_report(efforts, OOHLS_METHODOLOGY),
            "rtl": productivity_report(efforts, RTL_METHODOLOGY)}


def format_productivity(payload: dict) -> str:
    return payload["oohls"].to_text() + "\n\n" + payload["rtl"].to_text()


registry.register(registry.ExperimentSpec(
    name="backend",
    summary="4: RTL-to-layout turnaround",
    runner=run_backend_turnaround,
    formatter=format_backend_turnaround,
    compiled=False,       # flow-runtime model, no simulated design
    seedable=False,
    order=90,
))

registry.register(registry.ExperimentSpec(
    name="productivity",
    summary="4: gates per engineer-day",
    runner=run_productivity,
    formatter=format_productivity,
    compiled=False,       # effort model, no simulated design
    seedable=False,
    order=100,
))
