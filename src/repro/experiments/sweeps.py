"""Sweep registry: each experiment's parameter space as SweepPoints.

The sibling of :mod:`repro.experiments.designs` — where that registry
maps every CLI experiment to a *construction-only* design builder, this
one maps every multi-point experiment to three callables:

* ``space(**options)`` — enumerate the parameter grid as a list of
  :class:`~repro.sweep.point.SweepPoint` (cheap, no simulation).  Every
  builder accepts ``seed=`` to re-seed the whole space deterministically.
* ``runner(params, seed)`` — execute one point, returning a plain
  JSON-able result record.  Resolved by name inside worker processes,
  so points stay dumb data across the pool.
* ``summarize(results)`` — render the merged, ordered result records as
  the experiment's usual table.

Usage::

    from repro.experiments.sweeps import build_space, get_sweep
    from repro.sweep import run_sweep

    points = build_space("stall_verification")
    result = run_sweep(points, jobs=4)
    print(get_sweep("stall_verification").summarize(result.ok_results))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sweep.point import SweepPoint
from ..trace.adapter import ReplayAdapter
from . import crossbar_qor, fig3_crossbar, fig6_soc, gals_overhead
from . import li_latency
from . import stall_verification as stalls

__all__ = ["SweepSpec", "SWEEP_SPECS", "register_sweep", "get_sweep",
           "build_space"]


@dataclass(frozen=True)
class SweepSpec:
    """One registered sweep: space builder + point runner + formatter.

    ``replay``, when set, opts the experiment into incremental sweeps
    (``run_sweep(..., incremental=True)``): it carries the semantic map
    from sweep points to captured traces and back.  Experiments without
    one still work incrementally — every point just falls back to full
    simulation with the reason recorded.
    """

    name: str
    help: str
    space: Callable[..., List[SweepPoint]]
    runner: Callable[[dict, int], dict]
    summarize: Optional[Callable[[List[dict]], str]] = None
    replay: Optional[ReplayAdapter] = None


#: Sweep name -> spec.  Extended via :func:`register_sweep` (tests
#: register synthetic experiments; fork-started workers inherit them).
SWEEP_SPECS: Dict[str, SweepSpec] = {}


def register_sweep(spec: SweepSpec) -> SweepSpec:
    SWEEP_SPECS[spec.name] = spec
    return spec


def get_sweep(name: str) -> SweepSpec:
    try:
        return SWEEP_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown sweep experiment {name!r}; one of "
                       f"{sorted(SWEEP_SPECS)}") from None


def build_space(name: str, *, seed: Optional[int] = None,
                **options) -> List[SweepPoint]:
    """Enumerate a registered sweep's default (or re-seeded) space."""
    if seed is not None:
        options["seed"] = seed
    return get_sweep(name).space(**options)


register_sweep(SweepSpec(
    name="stall_verification",
    help="randomized stall-injection trials (4 probabilities x 10 seeds)",
    space=stalls.sweep_space,
    runner=stalls.run_sweep_point,
    summarize=stalls.summarize_sweep,
    # Statically derivable, dynamically refused: the capture records
    # the harness's non-blocking ops and every point falls back with
    # that reason — the recorded-capability path, exercised for real.
    replay=stalls.make_replay_adapter(),
))

register_sweep(SweepSpec(
    name="li_latency",
    help="LI pipeline latency grid (FIFO depth x stall p x period); "
         "replayable from 2 captured traces via sweep --incremental",
    space=li_latency.sweep_space,
    runner=li_latency.run_sweep_point,
    summarize=li_latency.summarize_sweep,
    replay=li_latency.REPLAY_ADAPTER,
))

register_sweep(SweepSpec(
    name="fig3_crossbar",
    help="Figure 3 modelling-accuracy grid (3 models x 4 port counts)",
    space=fig3_crossbar.sweep_space,
    runner=fig3_crossbar.run_sweep_point,
    summarize=fig3_crossbar.summarize_sweep,
))

register_sweep(SweepSpec(
    name="gals_overhead",
    help="GALS overhead fraction vs partition logic size",
    space=gals_overhead.sweep_space,
    runner=gals_overhead.run_sweep_point,
    summarize=gals_overhead.summarize_sweep,
    # Closed-form model, no kernel: every point is derivable by
    # evaluating the runner in-process, skipping the pool entirely.
    replay=ReplayAdapter(kind="analytic"),
))

register_sweep(SweepSpec(
    name="crossbar_qor",
    help="src- vs dst-loop crossbar QoR (lane sweep + clock sweep)",
    space=crossbar_qor.sweep_space,
    runner=crossbar_qor.run_sweep_point,
    summarize=crossbar_qor.summarize_sweep,
))

register_sweep(SweepSpec(
    name="pe_scaling",
    help="PE-array strong scaling on the prototype SoC (fast mode)",
    space=fig6_soc.pe_scaling_space,
    runner=fig6_soc.run_pe_scaling_point,
    summarize=fig6_soc.summarize_pe_scaling,
))


# The fault-campaign spec resolves repro.faults.campaign lazily:
# repro.faults imports experiment harnesses, so importing it here at
# module scope would close an import cycle through this registry.
def _fault_campaign_space(**options) -> List[SweepPoint]:
    from ..faults import campaign

    return campaign.sweep_space(**options)


def _fault_campaign_runner(params: dict, seed: int) -> dict:
    from ..faults import campaign

    return campaign.run_sweep_point(params, seed)


def _fault_campaign_summarize(results: List[dict]) -> str:
    from ..faults import campaign

    return campaign.summarize_sweep(results)


register_sweep(SweepSpec(
    name="fault_campaign",
    help="seeded fault-injection cases per harness (drop/dup/corrupt/"
         "stall/clock faults), watchdog-triaged",
    space=_fault_campaign_space,
    runner=_fault_campaign_runner,
    summarize=_fault_campaign_summarize,
))
