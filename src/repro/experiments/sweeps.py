"""Sweep registry: each experiment's parameter space as SweepPoints.

.. deprecated::
    This module is now a thin view over :mod:`repro.registry` — each
    experiment module declares its :class:`SweepSpec` on its
    :class:`~repro.registry.ExperimentSpec` and ``SWEEP_SPECS`` is
    derived from those specs.  The historical surface (``SWEEP_SPECS``,
    :func:`register_sweep`, :func:`get_sweep`, :func:`build_space`)
    keeps working unchanged for existing imports and for tests that
    register synthetic sweeps; new code should use
    ``registry.get_sweep`` / ``registry.register_sweep``.  The alias is
    slated for removal once nothing in-tree imports it (tracked in
    ``docs/REGISTRY.md``).

Each registered sweep maps a multi-point experiment to three callables:

* ``space(**options)`` — enumerate the parameter grid as a list of
  :class:`~repro.sweep.point.SweepPoint` (cheap, no simulation).  Every
  builder accepts ``seed=`` to re-seed the whole space deterministically.
* ``runner(params, seed)`` — execute one point, returning a plain
  JSON-able result record.  Resolved by name inside worker processes,
  so points stay dumb data across the pool.
* ``summarize(results)`` — render the merged, ordered result records as
  the experiment's usual table.

Usage::

    from repro.experiments.sweeps import build_space, get_sweep
    from repro.sweep import run_sweep

    points = build_space("stall_verification")
    result = run_sweep(points, jobs=4)
    print(get_sweep("stall_verification").summarize(result.ok_results))
"""

from __future__ import annotations

from typing import List, Optional

from ..registry import SweepSpec, get_sweep, register_sweep
from ..registry import sweep_specs_view
from ..sweep.point import SweepPoint

__all__ = ["SweepSpec", "SWEEP_SPECS", "register_sweep", "get_sweep",
           "build_space"]

#: Sweep name -> spec: a live read-through view of the experiment
#: registry.  Extended via :func:`register_sweep` (tests register
#: synthetic experiments; fork-started workers inherit them).
SWEEP_SPECS = sweep_specs_view()


def build_space(name: str, *, seed: Optional[int] = None,
                **options) -> List[SweepPoint]:
    """Enumerate a registered sweep's default (or re-seeded) space."""
    if seed is not None:
        options["seed"] = seed
    return get_sweep(name).space(**options)
