"""LI pipeline latency sweep: the incremental re-simulation showcase.

The paper's architectural-iteration loop sweeps latency-insensitive
parameters — FIFO depths, injected stall schedules, clock period —
across a fixed LI topology.  This experiment models exactly that loop
on a linear LI pipeline (producer → N forwarding stages → consumer,
every hop a ``Buffer`` channel with blocking handshakes) and measures
end-to-end completion latency and per-hop handshake counters.

Because every channel op here is *blocking*, the design is replayable
from one captured trace (:mod:`repro.trace`): the default sweep space
holds only two structural configurations (the stage counts) and dozens
of derivable satellites, so ``python -m repro sweep li_latency
--incremental`` simulates twice and replays everything else — the
LightningSimV2 workflow from PAPERS.md in miniature.  The replay
adapter below is the reference implementation of
:class:`repro.trace.adapter.ReplayAdapter`.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..connections import Buffer, In, Out
from ..design.hierarchy import component_scope
from ..kernel import Simulator
from .. import registry
from ..sweep.point import SweepPoint
from ..sweep.warm import BatchAdapter, WarmSession
from ..trace.adapter import ReplayAdapter

__all__ = ["build_li_pipeline", "build_design", "hop_paths",
           "horizon_cycles", "run_point", "format_report", "sweep_space",
           "run_sweep_point", "summarize_sweep", "REPLAY_ADAPTER",
           "BATCH_ADAPTER"]

DEFAULT_PERIOD = 10
DEFAULT_N_MSGS = 80
#: Capture bases run at the *fastest* point of the space — maximum
#: capacity, no stalls — so satellite replays only ever slow threads
#: down and the replayer's hidden-op guard stays quiet.
BASE_CAPACITY = 64


class LatencyForwarder:
    """One LI pipeline stage: blocking pop upstream, blocking push down."""

    def __init__(self, sim, clock, *, n_msgs: int, name: str = "stage"):
        with component_scope(sim, name, kind="LatencyForwarder", obj=self,
                             clock=clock) as inst:
            self.name = inst.name if inst is not None else name
            self.in_port: In = In(name="in")
            self.out_port: Out = Out(name="out")
            # Factory-style registration keeps the design snapshot-
            # eligible (warm batched sweeps re-create the generator on
            # every restore).
            sim.add_thread(lambda: self._run(n_msgs), clock, name="ctl")

    def _run(self, n_msgs: int) -> Generator:
        for _ in range(n_msgs):
            msg = yield from self.in_port.pop()
            yield from self.out_port.push(msg)


def hop_paths(stages: int) -> List[str]:
    """Design paths of the pipeline's channels, producer side first."""
    return [f"hop{i}" for i in range(stages + 1)]


def horizon_cycles(params: dict) -> int:
    """Simulation horizon in posedges — structural parameters only.

    Points sharing a structural base must tick the same number of
    cycles, so the budget may not depend on replay-safe knobs.  40
    cycles per message covers mean stall delays up to p ≈ 0.95; a point
    that still misses the horizon reports ``completed: False`` (replay
    reproduces that verdict exactly).
    """
    return params["n_msgs"] * 40 + 50 * params["stages"] + 100


def build_li_pipeline(*, stages: int, n_msgs: int, capacity: int,
                      stall_probability: float, stall_seed: int,
                      period: int = DEFAULT_PERIOD):
    """Construct (without running) one pipeline configuration.

    Returns ``(sim, state, channels)``; ``state["completion_cycle"]``
    is set by the consumer when the final message lands (stays ``None``
    if the horizon expires first).  The stall, when enabled, injects on
    the final hop — the consumer-facing channel, mirroring the
    ``stall_verification`` testbench.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=period)
    channels = [Buffer(sim, clk, capacity=capacity, name=name)
                for name in hop_paths(stages)]
    if stall_probability > 0.0:
        channels[-1].set_stall(stall_probability, seed=stall_seed)
    prev = channels[0]
    for i in range(stages):
        stage = LatencyForwarder(sim, clk, n_msgs=n_msgs, name=f"stage{i}")
        stage.in_port.bind(prev)
        stage.out_port.bind(channels[i + 1])
        prev = channels[i + 1]
    state = {"completion_cycle": None, "checksum": 0}

    def producer(src: Out) -> Generator:
        for value in range(n_msgs):
            yield from src.push(value)

    def consumer(dst: In) -> Generator:
        total = 0
        for _ in range(n_msgs):
            msg = yield from dst.pop()
            total += msg
        state["checksum"] = total
        state["completion_cycle"] = clk.cycles

    # Ports are constructed once (inside their component scope); only
    # the generators are factory-recreated on a snapshot restore.
    with component_scope(sim, "src", kind="StreamSource", clock=clk):
        src_port = Out(channels[0], name="out")
        sim.add_thread(lambda: producer(src_port), clk, name="ctl")
    with component_scope(sim, "snk", kind="StreamSink", clock=clk):
        snk_port = In(channels[-1], name="in")
        sim.add_thread(lambda: consumer(snk_port), clk, name="ctl")

    def _reset_state() -> None:
        state["completion_cycle"] = None
        state["checksum"] = 0

    sim.on_restore(_reset_state)
    return sim, state, channels


def build_design(*, stages: int = 2, n_msgs: int = DEFAULT_N_MSGS,
                 capacity: int = 4, stall_probability: float = 0.0,
                 seed: int = 0, period: int = DEFAULT_PERIOD):
    """Construction-only builder for the designs registry (inspect/lint)."""
    sim, _, _ = build_li_pipeline(
        stages=stages, n_msgs=n_msgs, capacity=capacity,
        stall_probability=stall_probability, stall_seed=seed,
        period=period)
    return sim


def _channel_record(path: str, stats: dict) -> dict:
    return {"path": path, **{k: stats[k] for k in (
        "transfers", "push_attempts", "pop_attempts", "push_rejections",
        "pop_rejections", "stall_cycles", "occupancy_sum", "cycles")}}


def _result_record(params: dict, seed: int, *,
                   completion_cycle: Optional[int],
                   channels: List[dict]) -> dict:
    """Fold measurements into the result record.

    Shared by the kernel runner and the replay adapter's ``derive`` so
    an incremental sweep is byte-identical to a full one by
    construction: both paths feed raw counters through this one
    formatter.
    """
    n_msgs = params["n_msgs"]
    completed = completion_cycle is not None
    return {
        "stages": params["stages"],
        "n_msgs": n_msgs,
        "capacity": params["capacity"],
        "stall_probability": params["stall_probability"],
        "period": params["period"],
        "trial": params["trial"],
        "seed": seed,
        "completed": completed,
        "completion_cycle": completion_cycle if completed else -1,
        "completion_ns": (completion_cycle - 1) * params["period"]
                         if completed else -1,
        "cycles_per_msg": completion_cycle / n_msgs if completed else -1.0,
        "checksum": n_msgs * (n_msgs - 1) // 2 if completed else 0,
        "channels": channels,
    }


def _channel_stats(channels: List) -> List[dict]:
    """Per-channel counter records, shared by every execution path."""
    return [_channel_record(c.path, {
        "transfers": c.stats.transfers,
        "push_attempts": c.stats.push_attempts,
        "pop_attempts": c.stats.pop_attempts,
        "push_rejections": c.stats.push_rejections,
        "pop_rejections": c.stats.pop_rejections,
        "stall_cycles": c.stats.stall_cycles,
        "occupancy_sum": c.stats.occupancy_sum,
        "cycles": c.stats.cycles,
    }) for c in channels]


def run_point(params: dict, seed: int) -> dict:
    """Execute one configuration with the full simulator."""
    sim, state, channels = build_li_pipeline(
        stages=params["stages"], n_msgs=params["n_msgs"],
        capacity=params["capacity"],
        stall_probability=params["stall_probability"], stall_seed=seed,
        period=params["period"])
    sim.run(until=(horizon_cycles(params) - 1) * params["period"])
    return _result_record(params, seed,
                          completion_cycle=state["completion_cycle"],
                          channels=_channel_stats(channels))


# ----------------------------------------------------------------------
# replay adapter: the semantic map for `sweep --incremental`
# ----------------------------------------------------------------------
def _base_params(params: dict) -> dict:
    return {**params, "capacity": BASE_CAPACITY, "stall_probability": 0.0,
            "trial": 0, "period": DEFAULT_PERIOD}


def _base_seed(params: dict, seed: int) -> int:
    # The base runs without stalls, so the point seed is irrelevant;
    # a constant collapses every satellite onto one capture.
    return 0


def _capture_base(base_params: dict, base_seed: int) -> dict:
    from ..trace.capture import capture

    sim, _, _ = build_li_pipeline(
        stages=base_params["stages"], n_msgs=base_params["n_msgs"],
        capacity=base_params["capacity"],
        stall_probability=base_params["stall_probability"],
        stall_seed=base_seed, period=base_params["period"])
    with capture(sim) as session:
        sim.run(until=(horizon_cycles(base_params) - 1)
                * base_params["period"])
    return session.trace


def _overrides(params: dict, seed: int) -> dict:
    paths = hop_paths(params["stages"])
    channels = {path: {"capacity": params["capacity"]} for path in paths}
    if params["stall_probability"] > 0.0:
        channels[paths[-1]]["stall"] = [params["stall_probability"], seed]
    return {"period": params["period"], "channels": channels}


def _derive(trace: dict, result, params: dict, seed: int) -> dict:
    snk = next(path for path in result.threads if path.startswith("snk"))
    consumer = result.threads[snk]
    completion = consumer["last_done"] if consumer["finished_script"] \
        else None
    channels = [_channel_record(rec["path"], result.channels[rec["path"]])
                for rec in trace["channels"]]
    return _result_record(params, seed, completion_cycle=completion,
                          channels=channels)


REPLAY_ADAPTER = ReplayAdapter(
    kind="trace",
    safe_params=frozenset({"capacity", "stall_probability", "trial",
                           "period"}),
    base_params=_base_params,
    base_seed=_base_seed,
    capture=_capture_base,
    overrides=_overrides,
    derive=_derive,
)


# ----------------------------------------------------------------------
# batch adapter: the construct-once map for `sweep --warm`
# ----------------------------------------------------------------------
# The warm session is built at the replay adapter's base configuration
# (one per stage count); each point then re-applies the very mutations
# a fresh construction would have performed — capacity, stall schedule,
# clock period — before its first run, which the kernel's snapshot
# restore rewinds afterwards.  `tests/sweep/test_warm_sweep.py` pins
# byte-identity against the fresh runner.
def _batch_build(base_params: dict, base_seed: int) -> "WarmSession":
    sim, state, channels = build_li_pipeline(
        stages=base_params["stages"], n_msgs=base_params["n_msgs"],
        capacity=base_params["capacity"],
        stall_probability=base_params["stall_probability"],
        stall_seed=base_seed, period=base_params["period"])
    return WarmSession(sim=sim, context={"state": state,
                                         "channels": channels,
                                         "clock": sim._clocks[0]})


def _batch_run(session: "WarmSession", params: dict, seed: int) -> dict:
    channels = session.context["channels"]
    for chan in channels:
        chan.capacity = params["capacity"]
    if params["stall_probability"] > 0.0:
        channels[-1].set_stall(params["stall_probability"], seed=seed)
    session.context["clock"].period = params["period"]
    session.sim.run(until=(horizon_cycles(params) - 1) * params["period"])
    state = session.context["state"]
    return _result_record(params, seed,
                          completion_cycle=state["completion_cycle"],
                          channels=_channel_stats(channels))


BATCH_ADAPTER = BatchAdapter(
    safe_params=frozenset({"capacity", "stall_probability", "trial",
                           "period"}),
    base_params=_base_params,
    base_seed=_base_seed,
    build=_batch_build,
    run=_batch_run,
)


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
def sweep_space(*, stages=(1, 3), n_msgs: int = DEFAULT_N_MSGS,
                capacities=(1, 2, 4, 8),
                probabilities=(0.0, 0.25, 0.5), trials: int = 2,
                seed: int = 500,
                period: int = DEFAULT_PERIOD) -> List[SweepPoint]:
    """Enumerate the latency grid: only ``stages`` is structural."""
    return [
        SweepPoint("li_latency",
                   {"stages": s, "n_msgs": n_msgs, "capacity": cap,
                    "stall_probability": p, "trial": t, "period": period},
                   seed=seed + t)
        for s in stages
        for cap in capacities
        for p in probabilities
        for t in range(trials)
    ]


def run_sweep_point(params: dict, seed: int) -> dict:
    return run_point(params, seed)


def summarize_sweep(results: List[dict]) -> str:
    by_cfg: dict = {}
    for rec in results:
        key = (rec["stages"], rec["capacity"], rec["stall_probability"])
        by_cfg.setdefault(key, []).append(rec)
    lines = ["LI pipeline latency sweep (blocking handshakes end to end)",
             f"{'stages':>6} {'cap':>4} {'stall p':>8} {'trials':>7} "
             f"{'mean cycles':>12} {'cycles/msg':>11}"]
    for key in sorted(by_cfg):
        recs = by_cfg[key]
        done = [r for r in recs if r["completed"]]
        if done:
            mean = sum(r["completion_cycle"] for r in done) / len(done)
            cpm = sum(r["cycles_per_msg"] for r in done) / len(done)
            tail = f"{mean:>12.1f} {cpm:>11.3f}"
        else:
            tail = f"{'horizon':>12} {'-':>11}"
        lines.append(f"{key[0]:>6} {key[1]:>4} {key[2]:>8.2f} "
                     f"{len(recs):>7} {tail}")
    return "\n".join(lines)


def run_report(*, stages: int = 1, n_msgs: int = 40,
               capacities=(1, 2, 4), probabilities=(0.0, 0.3),
               seed: int = 500, period: int = DEFAULT_PERIOD) -> List[dict]:
    """Small serial grid for the CLI verb (no pool, no cache)."""
    results = []
    for point in sweep_space(stages=(stages,), n_msgs=n_msgs,
                             capacities=capacities,
                             probabilities=probabilities, trials=1,
                             seed=seed, period=period):
        results.append(run_sweep_point(point.params, point.seed))
    return results


def format_report(results: List[dict]) -> str:
    return summarize_sweep(results)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> List[dict]:
    return run_report(seed=seed if seed is not None else 500)


registry.register(registry.ExperimentSpec(
    name="li-latency",
    summary="4: LI pipeline latency grid "
            "(replay-safe; see sweep --incremental)",
    runner=_cli_runner,
    formatter=format_report,
    design=build_design,
    sweep=registry.SweepSpec(
        name="li_latency",
        help="LI pipeline latency grid (FIFO depth x stall p x period); "
             "replayable from 2 captured traces via sweep --incremental",
        space=sweep_space,
        runner=run_sweep_point,
        summarize=summarize_sweep,
        replay=REPLAY_ADAPTER,
        batch=BATCH_ADAPTER,
    ),
    compiled=True,
    order=80,
))
