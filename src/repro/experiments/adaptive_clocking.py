"""Section 3.1: adaptive local clocks reduce supply-noise margin.

"Local adaptive clock generators are able to better track local power
supply noise [Kamakshi ASYNC'16] to reduce design margin."

A synchronous design must run every cycle slow enough for the *worst*
supply droop (a static margin); an adaptive local generator stretches
only the cycles that actually see a droop and runs at nominal speed the
rest of the time.  The experiment runs both clocking styles under the
same noise process for a fixed interval and compares completed cycles —
the adaptive clock's throughput advantage equals the margin it avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import registry
from ..gals.clock_generator import LocalClockGenerator, SupplyNoise
from ..kernel import Simulator

__all__ = ["AdaptiveClockingResult", "adaptive_clocking_experiment",
           "format_adaptive_clocking"]


@dataclass(frozen=True)
class AdaptiveClockingResult:
    nominal_period: int
    duration: int
    adaptive_cycles: int
    synchronous_cycles: int
    static_margin: float
    mean_adaptive_stretch: float

    @property
    def throughput_gain(self) -> float:
        """Adaptive throughput relative to the margined synchronous clock."""
        return self.adaptive_cycles / self.synchronous_cycles - 1.0


def _worst_droop(noise_seed: int, amplitude: float, *, samples: int = 5000,
                 step: int = 1000) -> float:
    """Probe the noise process for its observed worst droop."""
    noise = SupplyNoise(amplitude=amplitude, seed=noise_seed)
    return max(noise.droop(t * step) for t in range(samples))


def adaptive_clocking_experiment(*, nominal_period: int = 909,
                                 amplitude: float = 0.08, seed: int = 3,
                                 duration: int = 5_000_000,
                                 guardband: float = 0.02
                                 ) -> AdaptiveClockingResult:
    """Run adaptive vs static-margin clocking under identical noise.

    The synchronous clock's period carries the worst observed droop plus
    ``guardband`` (the signoff slack a real methodology adds on top).
    """
    worst = _worst_droop(seed, amplitude)
    static_margin = worst + guardband
    sync_period = round(nominal_period * (1.0 + static_margin))

    sim = Simulator()
    adaptive = LocalClockGenerator(
        sim, "adaptive", nominal_period=nominal_period,
        noise=SupplyNoise(amplitude=amplitude, seed=seed))
    synchronous = sim.add_clock("sync", period=sync_period)
    sim.run(until=duration)

    return AdaptiveClockingResult(
        nominal_period=nominal_period,
        duration=duration,
        adaptive_cycles=adaptive.clock.cycles,
        synchronous_cycles=synchronous.cycles,
        static_margin=static_margin,
        mean_adaptive_stretch=adaptive.mean_period / nominal_period - 1.0,
    )


def format_adaptive_clocking(result: AdaptiveClockingResult) -> str:
    return "\n".join([
        "Adaptive local clock vs static-margin synchronous clock "
        f"({result.duration / 1e6:.0f} us window)",
        f"  static margin required:      {100 * result.static_margin:6.2f} %",
        f"  mean adaptive stretch:       "
        f"{100 * result.mean_adaptive_stretch:6.2f} %",
        f"  adaptive cycles completed:   {result.adaptive_cycles:,}",
        f"  synchronous cycles:          {result.synchronous_cycles:,}",
        f"  adaptive throughput gain:    "
        f"{100 * result.throughput_gain:6.2f} %",
    ])


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> AdaptiveClockingResult:
    kwargs = {} if seed is None else {"seed": seed}
    return adaptive_clocking_experiment(**kwargs)


def _cli_design():
    """The adaptive-clocking duel: one noisy local clock, one static."""
    sim = Simulator()
    LocalClockGenerator(sim, "adaptive", nominal_period=909,
                        noise=SupplyNoise(amplitude=0.08, seed=3))
    sim.add_clock("sync", period=1000)
    return sim


registry.register(registry.ExperimentSpec(
    name="adaptive-clocking",
    summary="3.1: adaptive clock margin",
    runner=_cli_runner,
    formatter=format_adaptive_clocking,
    design=_cli_design,
    compiled=False,       # adaptive clocks are aperiodic: always falls back
    order=60,
))
