"""Design builders: construct each experiment's design without running it.

.. deprecated::
    This module is now a thin view over :mod:`repro.registry` — each
    experiment module declares its design builder on its
    :class:`~repro.registry.ExperimentSpec` and this registry is derived
    from those specs.  ``DESIGN_BUILDERS`` and :func:`build_design` keep
    their exact historical surface for existing imports; new code should
    use ``registry.get(name).design`` / ``registry.build_design``.
    The alias is slated for removal once nothing in-tree imports it
    (tracked in ``docs/REGISTRY.md``).

``python -m repro inspect <experiment>`` and ``python -m repro lint
<experiment>`` need a *constructed* simulator — elaboration and lint are
pre-run passes over the design hierarchy, never a simulation.  The
builders assemble a representative instance of each experiment's design
(cheap: construction only, no ``sim.run``) and return the
:class:`~repro.kernel.Simulator`.  Experiments that are purely analytic
(QoR models, flow-runtime models) have no simulated design; their entry
is ``None`` and the CLI reports that instead of failing.

Usage::

    from repro.design import elaborate, lint
    from repro.experiments.designs import build_design

    sim = build_design("fig3")
    print(elaborate(sim).tree())
    assert not lint(sim)
"""

from __future__ import annotations

from ..registry import build_design, design_builders_view

__all__ = ["DESIGN_BUILDERS", "build_design"]

#: Experiment verb -> design builder (``None`` = analytic, no design).
#: A live read-through view of the experiment registry.
DESIGN_BUILDERS = design_builders_view()
