"""Design builders: construct each experiment's design without running it.

``python -m repro inspect <experiment>`` and ``python -m repro lint
<experiment>`` need a *constructed* simulator — elaboration and lint are
pre-run passes over the design hierarchy, never a simulation.  This
registry maps every CLI experiment verb to a builder that assembles a
representative instance of that experiment's design (cheap: construction
only, no ``sim.run``) and returns the :class:`~repro.kernel.Simulator`.

Experiments that are purely analytic (QoR models, flow-runtime models)
have no simulated design; their entry is ``None`` and the CLI reports
that instead of failing.

Usage::

    from repro.design import elaborate, lint
    from repro.experiments.designs import build_design

    sim = build_design("fig3")
    print(elaborate(sim).tree())
    assert not lint(sim)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

__all__ = ["DESIGN_BUILDERS", "build_design"]


def _build_fig3():
    """Figure 3's sim-accurate crossbar testbench (4 ports)."""
    from .fig3_crossbar import build_crossbar_testbench

    return build_crossbar_testbench("sim-accurate", 4).sim


def _build_fig6():
    """A small Figure 6 SoC in fast mode (2x2 PE array)."""
    from ..soc.chip import PrototypeSoC

    return PrototypeSoC(mode="fast", pe_columns=2, pe_rows=2, lanes=4,
                        spad_words=256, gmem_words=1024).sim


def _build_gals():
    """A GALS SoC: per-node clock generators + pausible-FIFO links."""
    from ..soc.chip import PrototypeSoC

    return PrototypeSoC(mode="fast", gals=True, pe_columns=2, pe_rows=2,
                        lanes=4, spad_words=256, gmem_words=1024).sim


def _build_adaptive():
    """The adaptive-clocking duel: one noisy local clock, one static."""
    from ..gals.clock_generator import LocalClockGenerator, SupplyNoise
    from ..kernel import Simulator

    sim = Simulator()
    LocalClockGenerator(sim, "adaptive", nominal_period=909,
                        noise=SupplyNoise(amplitude=0.08, seed=3))
    sim.add_clock("sync", period=1000)
    return sim


def _build_stalls():
    """One stall-injection trial around the LeakyForwarder DUT."""
    from .stall_verification import build_stall_testbench

    sim, _received = build_stall_testbench(0.3, 100)
    return sim


def _build_li_latency():
    """The replay-safe LI pipeline (2 forwarding stages, depth 4)."""
    from .li_latency import build_design

    return build_design()


#: Experiment verb -> design builder (``None`` = analytic, no design).
DESIGN_BUILDERS: Dict[str, Optional[Callable[[], object]]] = {
    "fig3": _build_fig3,
    "fig6": _build_fig6,
    "crossbar-qor": None,      # analytic QoR model
    "hls-qor": None,           # analytic QoR model
    "gals": _build_gals,
    "adaptive-clocking": _build_adaptive,
    "stalls": _build_stalls,
    "li-latency": _build_li_latency,
    "backend": None,           # flow-runtime model
    "productivity": None,      # effort model
}


def build_design(experiment: str):
    """Construct the named experiment's design; returns its Simulator.

    Raises ``KeyError`` for unknown experiments and ``ValueError`` for
    analytic experiments that have no simulated design.
    """
    try:
        builder = DESIGN_BUILDERS[experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment!r}; one of "
            f"{sorted(DESIGN_BUILDERS)}") from None
    if builder is None:
        raise ValueError(f"experiment {experiment!r} is analytic — "
                         "it builds no simulated design")
    return builder()
