"""Experiment harnesses: one module per paper table/figure/claim.

===========================  ==========================================
:mod:`.fig3_crossbar`        Figure 3 — modelling accuracy on the
                             arbitrated crossbar
:mod:`.fig6_soc`             Figure 6 — SoC-level speedup vs cycle error
:mod:`.crossbar_qor`         section 2.4 — src-loop vs dst-loop QoR
:mod:`.hls_qor`              section 2.2 — HLS vs hand RTL (±10 %)
:mod:`.gals_overhead`        section 3.1 — GALS area overhead (< 3 %)
:mod:`.stall_verification`   section 4 — stall injection finds bugs
:mod:`.li_latency`           section 4 — LI latency grid, replayable
                             from captured traces (``repro.trace``)
===========================  ==========================================

The flow-level analyses (12-hour turnaround, 2K-20K gates/day) live in
:mod:`repro.flow` and their benches under ``benchmarks/``.
"""

from .adaptive_clocking import (
    AdaptiveClockingResult,
    adaptive_clocking_experiment,
    format_adaptive_clocking,
)
from .crossbar_qor import (
    QorPoint,
    crossbar_clock_sweep,
    crossbar_qor_sweep,
    format_qor_table,
)
from .designs import DESIGN_BUILDERS, build_design
from .fig3_crossbar import (
    CrossbarTestbench,
    Fig3Point,
    build_crossbar_testbench,
    figure3,
    format_figure3,
    run_crossbar_accuracy,
)
from . import flow_analyses
from .fig6_soc import (
    Fig6Point,
    fig6_workloads_small,
    figure6,
    format_figure6,
    run_fig6_test,
)
from .gals_overhead import (
    OverheadPoint,
    format_overhead_table,
    partition_size_sweep,
    testchip_overhead,
    testchip_partitions,
)
from .hls_qor import (
    QorResult,
    bad_constraint_ablation,
    format_qor_results,
    hls_vs_hand_qor,
)
from .li_latency import (
    LatencyForwarder,
    build_li_pipeline,
)
from .li_latency import run_report as li_latency_report
from .stall_verification import (
    CampaignResult,
    LeakyForwarder,
    build_stall_testbench,
    format_campaign,
    stall_campaign,
)
from .sweeps import SWEEP_SPECS, SweepSpec, build_space, get_sweep

__all__ = [
    "DESIGN_BUILDERS", "build_design",
    "SWEEP_SPECS", "SweepSpec", "build_space", "get_sweep",
    "Fig3Point", "CrossbarTestbench", "build_crossbar_testbench",
    "run_crossbar_accuracy", "figure3", "format_figure3",
    "Fig6Point", "run_fig6_test", "figure6", "format_figure6",
    "fig6_workloads_small",
    "QorPoint", "crossbar_qor_sweep", "crossbar_clock_sweep",
    "format_qor_table",
    "QorResult", "hls_vs_hand_qor", "bad_constraint_ablation",
    "format_qor_results",
    "OverheadPoint", "partition_size_sweep", "testchip_partitions",
    "testchip_overhead", "format_overhead_table",
    "LeakyForwarder", "build_stall_testbench", "stall_campaign",
    "CampaignResult", "format_campaign",
    "LatencyForwarder", "build_li_pipeline", "li_latency_report",
    "AdaptiveClockingResult", "adaptive_clocking_experiment",
    "format_adaptive_clocking",
]
