"""Figure 3: SystemC modelling accuracy on an arbitrated crossbar.

The paper measures cycles per transaction of an arbitrated crossbar with
2/4/8/16 input/output ports under three models:

* **RTL** — the reference (HLS-generated RTL in a Verilog simulator);
  here the signal-level :class:`ArbitratedCrossbarRTL`,
* **sim-accurate** — Connections' fast model; matches RTL throughput at
  every port count,
* **signal-accurate** — delayed valid/ready operations serialized in the
  module's main thread; its error grows with the number of ports.

Run :func:`figure3` to regenerate the whole figure's data, or
:func:`run_crossbar_accuracy` for a single point.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..connections import Buffer, In, Out, stream_consumer, stream_producer
from ..kernel import Simulator
from ..matchlib import (
    ArbitratedCrossbarModule,
    ArbitratedCrossbarRTL,
    ArbitratedCrossbarSA,
)

__all__ = ["Fig3Point", "run_crossbar_accuracy", "figure3", "MODELS"]

MODELS = ("rtl", "sim-accurate", "signal-accurate")

_PERIOD = 10  # ticks per cycle


@dataclass(frozen=True)
class Fig3Point:
    """One data point of Figure 3."""

    model: str
    n_ports: int
    transactions: int
    elapsed_cycles: int
    wall_seconds: float

    @property
    def cycles_per_transaction(self) -> float:
        """Average cycles for each port to move one message."""
        return self.elapsed_cycles * self.n_ports / self.transactions


def _uniform_traffic(n_ports: int, per_port: int, seed: int) -> list[list[tuple]]:
    rng = random.Random(seed)
    return [
        [(rng.randrange(n_ports), (port, i)) for i in range(per_port)]
        for port in range(n_ports)
    ]


def run_crossbar_accuracy(model: str, n_ports: int, *, txns_per_port: int = 200,
                          seed: int = 1) -> Fig3Point:
    """Measure one (model, port-count) point of Figure 3."""
    if model not in MODELS:
        raise ValueError(f"model must be one of {MODELS}, got {model!r}")
    traffic = _uniform_traffic(n_ports, txns_per_port, seed)
    total = n_ports * txns_per_port
    sim = Simulator()
    clk = sim.add_clock("clk", period=_PERIOD)
    done: dict = {}

    if model == "sim-accurate":
        xbar = ArbitratedCrossbarModule(sim, clk, n_ports, n_ports)
        in_chans = [Buffer(sim, clk, capacity=2, name=f"i{i}")
                    for i in range(n_ports)]
        out_chans = [Buffer(sim, clk, capacity=2, name=f"o{o}")
                     for o in range(n_ports)]
        for i in range(n_ports):
            xbar.ins[i].bind(in_chans[i])
            xbar.outs[i].bind(out_chans[i])

        def producer(i):
            src = Out(in_chans[i])
            for m in traffic[i]:
                yield from src.push(m)

        counter = {"n": 0}

        def consumer(o):
            dst = In(out_chans[o])
            while counter["n"] < total:
                ok, _ = dst.pop_nb()
                if ok:
                    counter["n"] += 1
                    if counter["n"] >= total:
                        done["time"] = sim.now
                yield

        for i in range(n_ports):
            sim.add_thread(producer(i), clk, name=f"p{i}")
            sim.add_thread(consumer(i), clk, name=f"c{i}")
    else:
        cls = ArbitratedCrossbarRTL if model == "rtl" else ArbitratedCrossbarSA
        xbar = cls(sim, clk, n_ports, n_ports)
        counter = {"n": 0}
        sinks: list[list] = [[] for _ in range(n_ports)]

        def counting_consumer(o):
            iface = xbar.deq[o]
            iface.ready.write(1)
            while True:
                yield
                if iface.valid.read() and iface.ready.read():
                    sinks[o].append(iface.msg.read())
                    counter["n"] += 1
                    if counter["n"] >= total:
                        done["time"] = sim.now

        for i in range(n_ports):
            sim.add_thread(stream_producer(xbar.enq[i], traffic[i]), clk,
                           name=f"p{i}")
            sim.add_thread(counting_consumer(i), clk, name=f"c{i}")

    start = time.perf_counter()
    # Generous cap: signal-accurate at 16 ports is very slow per txn.
    sim.run(until=total * n_ports * 40 * _PERIOD)
    wall = time.perf_counter() - start
    if "time" not in done:
        raise RuntimeError(
            f"{model} crossbar with {n_ports} ports did not finish "
            f"({counter['n']}/{total} transactions)"
        )
    return Fig3Point(
        model=model,
        n_ports=n_ports,
        transactions=total,
        elapsed_cycles=done["time"] // _PERIOD,
        wall_seconds=wall,
    )


def figure3(ports=(2, 4, 8, 16), *, txns_per_port: int = 200,
            seed: int = 1) -> list[Fig3Point]:
    """Regenerate every series of Figure 3."""
    return [
        run_crossbar_accuracy(model, n, txns_per_port=txns_per_port, seed=seed)
        for model in MODELS
        for n in ports
    ]


def format_figure3(points: list[Fig3Point]) -> str:
    """Render Figure 3's data as the table the paper plots."""
    ports = sorted({p.n_ports for p in points})
    by = {(p.model, p.n_ports): p for p in points}
    lines = ["Figure 3: cycles per transaction, arbitrated crossbar",
             f"{'ports':>6} " + " ".join(f"{m:>16}" for m in MODELS)]
    for n in ports:
        row = f"{n:>6} "
        row += " ".join(
            f"{by[(m, n)].cycles_per_transaction:>16.2f}" for m in MODELS
        )
        lines.append(row)
    return "\n".join(lines)
