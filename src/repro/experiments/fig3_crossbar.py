"""Figure 3: SystemC modelling accuracy on an arbitrated crossbar.

The paper measures cycles per transaction of an arbitrated crossbar with
2/4/8/16 input/output ports under three models:

* **RTL** — the reference (HLS-generated RTL in a Verilog simulator);
  here the signal-level :class:`ArbitratedCrossbarRTL`,
* **sim-accurate** — Connections' fast model; matches RTL throughput at
  every port count,
* **signal-accurate** — delayed valid/ready operations serialized in the
  module's main thread; its error grows with the number of ports.

Run :func:`figure3` to regenerate the whole figure's data, or
:func:`run_crossbar_accuracy` for a single point.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..connections import Buffer, In, Out, stream_consumer, stream_producer
from ..design.hierarchy import component_scope
from ..kernel import Simulator
from ..matchlib import (
    ArbitratedCrossbarModule,
    ArbitratedCrossbarRTL,
    ArbitratedCrossbarSA,
)
from .. import registry
from ..sweep.point import SweepPoint

__all__ = ["Fig3Point", "CrossbarTestbench", "build_crossbar_testbench",
           "run_crossbar_accuracy", "figure3", "MODELS",
           "sweep_space", "run_sweep_point", "summarize_sweep"]

MODELS = ("rtl", "sim-accurate", "signal-accurate")

_PERIOD = 10  # ticks per cycle


@dataclass(frozen=True)
class Fig3Point:
    """One data point of Figure 3."""

    model: str
    n_ports: int
    transactions: int
    elapsed_cycles: int
    wall_seconds: float

    @property
    def cycles_per_transaction(self) -> float:
        """Average cycles for each port to move one message."""
        return self.elapsed_cycles * self.n_ports / self.transactions


def _uniform_traffic(n_ports: int, per_port: int, seed: int) -> list[list[tuple]]:
    rng = random.Random(seed)
    return [
        [(rng.randrange(n_ports), (port, i)) for i in range(per_port)]
        for port in range(n_ports)
    ]


class CrossbarTestbench:
    """One (model, port-count) testbench, constructed but not yet run.

    Construction builds the entire design — crossbar, channels, all
    testbench threads with their ports created **eagerly** — so the
    simulator can be elaborated and linted (``python -m repro inspect
    fig3``) before, or without, ever running it.  Call :meth:`run` to
    measure the Figure 3 data point.
    """

    def __init__(self, model: str, n_ports: int, *, txns_per_port: int = 200,
                 seed: int = 1):
        if model not in MODELS:
            raise ValueError(f"model must be one of {MODELS}, got {model!r}")
        self.model = model
        self.n_ports = n_ports
        self.total = n_ports * txns_per_port
        self.done: dict = {}
        self.counter = {"n": 0}
        traffic = _uniform_traffic(n_ports, txns_per_port, seed)
        self.sim = sim = Simulator()
        self.clock = clk = sim.add_clock("clk", period=_PERIOD)

        if model == "sim-accurate":
            self.xbar = xbar = ArbitratedCrossbarModule(sim, clk,
                                                        n_ports, n_ports)
            in_chans = [Buffer(sim, clk, capacity=2, name=f"i{i}")
                        for i in range(n_ports)]
            out_chans = [Buffer(sim, clk, capacity=2, name=f"o{o}")
                         for o in range(n_ports)]
            for i in range(n_ports):
                xbar.ins[i].bind(in_chans[i])
                xbar.outs[i].bind(out_chans[i])

            def producer(src, msgs):
                for m in msgs:
                    yield from src.push(m)

            def consumer(dst):
                while self.counter["n"] < self.total:
                    ok, _ = dst.pop_nb()
                    if ok:
                        self.counter["n"] += 1
                        if self.counter["n"] >= self.total:
                            self.done["time"] = sim.now
                    yield

            for i in range(n_ports):
                with component_scope(sim, f"src{i}", kind="StreamSource",
                                     clock=clk):
                    src = Out(in_chans[i], name="out")
                    sim.add_thread(producer(src, traffic[i]), clk, name="ctl")
                with component_scope(sim, f"snk{i}", kind="StreamSink",
                                     clock=clk):
                    dst = In(out_chans[i], name="in")
                    sim.add_thread(consumer(dst), clk, name="ctl")
        else:
            cls = (ArbitratedCrossbarRTL if model == "rtl"
                   else ArbitratedCrossbarSA)
            self.xbar = xbar = cls(sim, clk, n_ports, n_ports)
            sinks: list[list] = [[] for _ in range(n_ports)]

            def counting_consumer(o):
                iface = xbar.deq[o]
                iface.ready.write(1)
                while True:
                    yield
                    if iface.valid.read() and iface.ready.read():
                        sinks[o].append(iface.msg.read())
                        self.counter["n"] += 1
                        if self.counter["n"] >= self.total:
                            self.done["time"] = sim.now

            for i in range(n_ports):
                sim.add_thread(stream_producer(xbar.enq[i], traffic[i]), clk,
                               name=f"p{i}")
                sim.add_thread(counting_consumer(i), clk, name=f"c{i}")

    def run(self) -> Fig3Point:
        """Run to completion and return the measured data point."""
        start = time.perf_counter()
        # Generous cap: signal-accurate at 16 ports is very slow per txn.
        self.sim.run(until=self.total * self.n_ports * 40 * _PERIOD)
        wall = time.perf_counter() - start
        if "time" not in self.done:
            raise RuntimeError(
                f"{self.model} crossbar with {self.n_ports} ports did not "
                f"finish ({self.counter['n']}/{self.total} transactions)"
            )
        return Fig3Point(
            model=self.model,
            n_ports=self.n_ports,
            transactions=self.total,
            elapsed_cycles=self.done["time"] // _PERIOD,
            wall_seconds=wall,
        )


def build_crossbar_testbench(model: str = "sim-accurate", n_ports: int = 4,
                             **kw) -> CrossbarTestbench:
    """Construct (without running) a Figure 3 testbench."""
    return CrossbarTestbench(model, n_ports, **kw)


def run_crossbar_accuracy(model: str, n_ports: int, *, txns_per_port: int = 200,
                          seed: int = 1) -> Fig3Point:
    """Measure one (model, port-count) point of Figure 3."""
    return CrossbarTestbench(model, n_ports, txns_per_port=txns_per_port,
                             seed=seed).run()


def figure3(ports=(2, 4, 8, 16), *, txns_per_port: int = 200,
            seed: int = 1) -> list[Fig3Point]:
    """Regenerate every series of Figure 3."""
    return [
        run_crossbar_accuracy(model, n, txns_per_port=txns_per_port, seed=seed)
        for model in MODELS
        for n in ports
    ]


# ----------------------------------------------------------------------
# sweep integration (repro.sweep): one point per (model, port count)
# ----------------------------------------------------------------------
def sweep_space(*, ports=(2, 4, 8, 16), txns_per_port: int = 60,
                seed: int = 1, models=MODELS) -> list[SweepPoint]:
    """Enumerate Figure 3's (model, port-count) grid as sweep points."""
    return [
        SweepPoint("fig3_crossbar",
                   {"model": model, "n_ports": n,
                    "txns_per_port": txns_per_port},
                   seed=seed)
        for model in models
        for n in ports
    ]


def run_sweep_point(params: dict, seed: int) -> dict:
    """Measure one Figure 3 point; the sweep registry's point runner."""
    from dataclasses import asdict

    point = run_crossbar_accuracy(params["model"], params["n_ports"],
                                  txns_per_port=params["txns_per_port"],
                                  seed=seed)
    return asdict(point)


def summarize_sweep(results: list[dict]) -> str:
    return format_figure3([Fig3Point(**rec) for rec in results])


def format_figure3(points: list[Fig3Point]) -> str:
    """Render Figure 3's data as the table the paper plots."""
    ports = sorted({p.n_ports for p in points})
    by = {(p.model, p.n_ports): p for p in points}
    lines = ["Figure 3: cycles per transaction, arbitrated crossbar",
             f"{'ports':>6} " + " ".join(f"{m:>16}" for m in MODELS)]
    for n in ports:
        row = f"{n:>6} "
        row += " ".join(
            f"{by[(m, n)].cycles_per_transaction:>16.2f}" for m in MODELS
        )
        lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> list[Fig3Point]:
    ports = tuple(int(p) for p in
                  str(params.get("ports", "2,4,8,16")).split(","))
    return figure3(ports=ports, txns_per_port=params.get("txns", 60),
                   seed=seed if seed is not None else 1)


def _cli_design():
    """Figure 3's sim-accurate crossbar testbench (4 ports)."""
    return build_crossbar_testbench("sim-accurate", 4).sim


registry.register(registry.ExperimentSpec(
    name="fig3",
    summary="Figure 3: crossbar modelling accuracy",
    runner=_cli_runner,
    formatter=format_figure3,
    design=_cli_design,
    sweep=registry.SweepSpec(
        name="fig3_crossbar",
        help="Figure 3 modelling-accuracy grid (3 models x 4 port counts)",
        space=sweep_space,
        runner=run_sweep_point,
        summarize=summarize_sweep,
    ),
    params=(
        registry.CliParam("ports", "2,4,8,16",
                          help="comma-separated port counts"),
        registry.CliParam("txns", 60, type=int,
                          help="transactions per port"),
    ),
    compiled=True,
    order=10,
))
