"""Section 2.4 case study: src-loop vs dst-loop crossbar QoR.

The paper measured a 25 % area penalty for the src-loop coding of a
32-lane 32-bit crossbar in Catapult HLS, plus significantly longer
compile times and worse scaling.  This experiment regenerates the
comparison with the reproduction's HLS engine: a lane sweep, the paper's
exact configuration, and a clock sweep showing how the penalty decomposes
(comparator/priority logic vs forced pipelining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hls import (
    crossbar_dst_loop_design,
    crossbar_src_loop_design,
    estimate_area,
    schedule,
)
from .. import registry
from ..sweep.point import SweepPoint

__all__ = ["QorPoint", "crossbar_qor_sweep", "crossbar_clock_sweep",
           "format_qor_table", "sweep_space", "run_sweep_point",
           "summarize_sweep"]


@dataclass(frozen=True)
class QorPoint:
    """src-vs-dst comparison at one configuration."""

    lanes: int
    width: int
    clock_period_ps: float
    dst_area: float
    src_area: float
    dst_latency: int
    src_latency: int
    dst_compile_s: float
    src_compile_s: float

    @property
    def area_penalty(self) -> float:
        """Relative extra area of the src-loop implementation."""
        return self.src_area / self.dst_area - 1.0

    @property
    def compile_ratio(self) -> float:
        return self.src_compile_s / max(self.dst_compile_s, 1e-9)


def _point(lanes: int, width: int, clock_period_ps: float) -> QorPoint:
    dst = crossbar_dst_loop_design(lanes, width)
    src = crossbar_src_loop_design(lanes, width)
    sched_dst = schedule(dst, clock_period_ps=clock_period_ps)
    sched_src = schedule(src, clock_period_ps=clock_period_ps)
    rpt_dst = estimate_area(sched_dst)
    rpt_src = estimate_area(sched_src)
    return QorPoint(
        lanes=lanes, width=width, clock_period_ps=clock_period_ps,
        dst_area=rpt_dst.total, src_area=rpt_src.total,
        dst_latency=rpt_dst.latency, src_latency=rpt_src.latency,
        dst_compile_s=sched_dst.compile_seconds,
        src_compile_s=sched_src.compile_seconds,
    )


def crossbar_qor_sweep(lanes: Sequence[int] = (8, 16, 32, 64), *,
                       width: int = 32,
                       clock_period_ps: float = 909.0) -> List[QorPoint]:
    """Lane sweep at the paper's 1.1 GHz clock (909 ps)."""
    return [_point(n, width, clock_period_ps) for n in lanes]


def crossbar_clock_sweep(periods_ps: Sequence[float] = (700, 909, 1250, 2500),
                         *, lanes: int = 32, width: int = 32) -> List[QorPoint]:
    """Clock sweep at the paper's 32x32 configuration.

    Shows the penalty's two components: at relaxed clocks only the
    comparator/priority logic remains; tight clocks add pipeline
    registers and control for the deep priority chain.
    """
    return [_point(lanes, width, p) for p in periods_ps]


# ----------------------------------------------------------------------
# sweep integration (repro.sweep): lane sweep + clock sweep, one point
# per (lanes, width, clock) configuration
# ----------------------------------------------------------------------
def sweep_space(*, lanes: Sequence[int] = (8, 16, 32, 64), width: int = 32,
                clock_period_ps: float = 909.0,
                periods_ps: Sequence[float] = (700, 909, 1250, 2500),
                clock_lanes: int = 32, seed: int = 0) -> List[SweepPoint]:
    """Enumerate both paper sweeps (analytic; seed is identity-only)."""
    grid = [(n, width, float(clock_period_ps)) for n in lanes]
    grid += [(clock_lanes, width, float(p)) for p in periods_ps]
    return [
        SweepPoint("crossbar_qor",
                   {"lanes": n, "width": w, "clock_period_ps": p},
                   seed=seed)
        for n, w, p in grid
    ]


def run_sweep_point(params: dict, seed: int) -> dict:
    """Schedule one configuration; the sweep registry's point runner."""
    from dataclasses import asdict

    return asdict(_point(params["lanes"], params["width"],
                         params["clock_period_ps"]))


def summarize_sweep(results: List[dict]) -> str:
    return format_qor_table([QorPoint(**rec) for rec in results])


def format_qor_table(points: List[QorPoint]) -> str:
    lines = [
        "src-loop vs dst-loop crossbar QoR (paper 2.4: 25% penalty at 32x32)",
        f"{'lanes':>6} {'clk ps':>7} {'dst NAND2':>12} {'src NAND2':>12} "
        f"{'penalty %':>10} {'dst/src lat':>12} {'compile x':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.lanes:>6} {p.clock_period_ps:>7.0f} {p.dst_area:>12,.0f} "
            f"{p.src_area:>12,.0f} {100 * p.area_penalty:>10.1f} "
            f"{f'{p.dst_latency}/{p.src_latency}':>12} {p.compile_ratio:>10.1f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> dict:
    return {"lane_sweep": crossbar_qor_sweep(),
            "clock_sweep": crossbar_clock_sweep()}


def _cli_format(payload: dict) -> str:
    return (format_qor_table(payload["lane_sweep"]) + "\n\n"
            + format_qor_table(payload["clock_sweep"]))


registry.register(registry.ExperimentSpec(
    name="crossbar-qor",
    summary="2.4: src- vs dst-loop crossbar",
    runner=_cli_runner,
    formatter=_cli_format,
    sweep=registry.SweepSpec(
        name="crossbar_qor",
        help="src- vs dst-loop crossbar QoR (lane sweep + clock sweep)",
        space=sweep_space,
        runner=run_sweep_point,
        summarize=summarize_sweep,
    ),
    compiled=False,       # analytic QoR model, no simulated design
    seedable=False,
    order=30,
))
