"""Section 3.1: GALS area overhead and the synchronous alternative.

The paper: "Although we incur a small area penalty for local clock
generators and pausible bisynchronous FIFOs, we estimate this overhead
to be less than 3 % for typical partition sizes."

Two experiments:

* a partition-size sweep locating the crossover below which fine-grained
  GALS stops being cheap,
* the testchip's actual partition inventory (15 replicated PEs, two
  global memories, RISC-V, I/O — section 4) with chip-level overhead,
  against the synchronous baseline's clock-tree area and skew/OCV margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .. import registry
from ..gals.overhead import GalsOverheadModel, Partition, SynchronousBaseline
from ..trace.adapter import ReplayAdapter
from ..sweep.point import SweepPoint

__all__ = [
    "OverheadPoint",
    "partition_size_sweep",
    "testchip_partitions",
    "testchip_overhead",
    "format_overhead_table",
    "sweep_space",
    "run_sweep_point",
    "summarize_sweep",
]

DEFAULT_SIZES = (5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6)


@dataclass(frozen=True)
class OverheadPoint:
    logic_gates: float
    overhead_gates: float

    @property
    def fraction(self) -> float:
        return self.overhead_gates / self.logic_gates


def partition_size_sweep(sizes: Sequence[float] = DEFAULT_SIZES, *,
        n_interfaces: int = 5, interface_width: int = 64,
        model: GalsOverheadModel = GalsOverheadModel()) -> List[OverheadPoint]:
    """GALS overhead fraction vs partition logic size."""
    points = []
    for gates in sizes:
        p = Partition("sweep", logic_gates=gates, n_interfaces=n_interfaces,
                      interface_width=interface_width)
        points.append(OverheadPoint(gates, model.overhead_gates(p)))
    return points


def testchip_partitions() -> List[Partition]:
    """The prototype SoC's partition inventory (section 4).

    87M transistors ~= 22M NAND2-equivalent gates, split across the five
    unique digital partition types: 15 replicated PEs, left/right global
    memory, RISC-V, and I/O.
    """
    return (
        [Partition(f"pe{i}", logic_gates=260_000, macro_gates=550_000,
                   n_interfaces=5) for i in range(15)]
        + [Partition("gmem_left", logic_gates=500_000, macro_gates=3_000_000,
                     n_interfaces=6),
           Partition("gmem_right", logic_gates=500_000, macro_gates=3_000_000,
                     n_interfaces=6),
           Partition("riscv", logic_gates=900_000, macro_gates=500_000,
                     n_interfaces=3),
           Partition("io", logic_gates=700_000, n_interfaces=4)]
    )


@dataclass(frozen=True)
class TestchipOverheadReport:
    chip_overhead_fraction: float
    per_partition: List[tuple]
    sync_clock_tree_gates: float
    sync_skew_margin_ps: float
    sync_frequency_penalty: float


def testchip_overhead(*, clock_period_ps: float = 909.0,
                      model: GalsOverheadModel = GalsOverheadModel(),
                      baseline: SynchronousBaseline = SynchronousBaseline()
                      ) -> TestchipOverheadReport:
    """Chip-level GALS overhead vs what the synchronous design pays."""
    partitions = testchip_partitions()
    per_partition = [(p.name, model.overhead_fraction(p)) for p in partitions]
    return TestchipOverheadReport(
        chip_overhead_fraction=model.chip_overhead_fraction(partitions),
        per_partition=per_partition,
        sync_clock_tree_gates=baseline.clock_tree_gates(partitions),
        sync_skew_margin_ps=baseline.skew_margin_ps(partitions),
        sync_frequency_penalty=baseline.frequency_penalty(partitions,
                                                          clock_period_ps),
    )


# ----------------------------------------------------------------------
# sweep integration (repro.sweep): one point per partition size
# ----------------------------------------------------------------------
def sweep_space(*, sizes: Sequence[float] = DEFAULT_SIZES,
                n_interfaces: int = 5, interface_width: int = 64,
                seed: int = 0) -> List[SweepPoint]:
    """Enumerate the partition-size sweep (analytic; seed is identity-only)."""
    return [
        SweepPoint("gals_overhead",
                   {"logic_gates": float(gates), "n_interfaces": n_interfaces,
                    "interface_width": interface_width},
                   seed=seed)
        for gates in sizes
    ]


def run_sweep_point(params: dict, seed: int) -> dict:
    """Evaluate one partition size; the sweep registry's point runner."""
    model = GalsOverheadModel()
    p = Partition("sweep", logic_gates=params["logic_gates"],
                  n_interfaces=params["n_interfaces"],
                  interface_width=params["interface_width"])
    return {"logic_gates": params["logic_gates"],
            "overhead_gates": model.overhead_gates(p)}


def summarize_sweep(results: List[dict]) -> str:
    points = [OverheadPoint(r["logic_gates"], r["overhead_gates"])
              for r in results]
    lines = ["GALS overhead vs partition size "
             "(paper 3.1: <3% for typical sizes)",
             f"{'logic gates':>14} {'overhead gates':>15} {'fraction %':>11}"]
    for p in points:
        lines.append(f"{p.logic_gates:>14,.0f} {p.overhead_gates:>15,.0f} "
                     f"{100 * p.fraction:>11.2f}")
    return "\n".join(lines)


def format_overhead_table(points: List[OverheadPoint],
                          report: TestchipOverheadReport) -> str:
    lines = ["GALS overhead vs partition size (paper 3.1: <3% for typical sizes)",
             f"{'logic gates':>14} {'overhead gates':>15} {'fraction %':>11}"]
    for p in points:
        lines.append(f"{p.logic_gates:>14,.0f} {p.overhead_gates:>15,.0f} "
                     f"{100 * p.fraction:>11.2f}")
    lines.append("")
    lines.append(f"testchip chip-level GALS overhead: "
                 f"{100 * report.chip_overhead_fraction:.2f} %")
    lines.append(f"synchronous baseline instead pays: "
                 f"{report.sync_clock_tree_gates:,.0f} clock-tree gates, "
                 f"{report.sync_skew_margin_ps:.0f} ps skew margin "
                 f"({100 * report.sync_frequency_penalty:.1f} % of the period)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# registry spec (see repro.registry / docs/REGISTRY.md)
# ----------------------------------------------------------------------
def _cli_runner(params: dict, seed) -> dict:
    return {"partition_sweep": partition_size_sweep(),
            "testchip": testchip_overhead()}


def _cli_format(payload: dict) -> str:
    return format_overhead_table(payload["partition_sweep"],
                                 payload["testchip"])


def _cli_design():
    """A GALS SoC: per-node clock generators + pausible-FIFO links."""
    from ..soc.chip import PrototypeSoC

    return PrototypeSoC(mode="fast", gals=True, pe_columns=2, pe_rows=2,
                        lanes=4, spad_words=256, gmem_words=1024).sim


registry.register(registry.ExperimentSpec(
    name="gals",
    summary="3.1: GALS area overhead",
    runner=_cli_runner,
    formatter=_cli_format,
    design=_cli_design,
    sweep=registry.SweepSpec(
        name="gals_overhead",
        help="GALS overhead fraction vs partition logic size",
        space=sweep_space,
        runner=run_sweep_point,
        summarize=summarize_sweep,
        # Closed-form model, no kernel: every point is derivable by
        # evaluating the runner in-process, skipping the pool entirely.
        replay=ReplayAdapter(kind="analytic"),
    ),
    compiled=False,       # pausible clocks are not compilable (yet)
    seedable=False,
    order=50,
))
