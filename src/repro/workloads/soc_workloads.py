"""SoC-level workloads: command tables for the prototype SoC.

Each builder returns a :class:`SocWorkload` — the controller command
table, global-memory preloads, and a bit-exact check against the golden
references in :mod:`repro.workloads.reference`.  The six workloads of
:func:`figure6_workloads` are the reproduction's stand-ins for the
paper's six SoC-level tests (Figure 6); they cover the applications the
paper names for the accelerator: CNN layers (conv2d), k-means
clustering, and vector/image kernels.

All builders target the default SoC geometry (4x4 PE array): PEs at
nodes 0-15, controller at 16, global memories at 17 (left) and 18
(right).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List

from ..soc.protocol import Cmd, Kernel
from .reference import (
    conv2d_ref,
    dot_ref,
    gemm_ref,
    kmeans_min_distances_ref,
    mask32,
    scale_ref,
    sum_ref,
)

__all__ = [
    "SocWorkload",
    "vector_scale_workload",
    "memcpy_workload",
    "reduction_workload",
    "dot_product_workload",
    "conv2d_workload",
    "conv2d_fp16_workload",
    "kmeans_workload",
    "gemm_workload",
    "figure6_workloads",
    "run_workload",
]

CONTROLLER = 16
GMEM_LEFT = 17
GMEM_RIGHT = 18


@dataclass
class SocWorkload:
    """A complete SoC test: commands, data, and its correctness check."""

    name: str
    commands: List
    preload_left: List[int] = field(default_factory=list)
    preload_right: List[int] = field(default_factory=list)
    check: Callable = lambda soc: True
    description: str = ""


def _send(dest: int, *words) -> tuple:
    return ("send", dest, [int(w) for w in words])


# ----------------------------------------------------------------------
# 1. vector scale (data-parallel streaming)
# ----------------------------------------------------------------------
def vector_scale_workload(*, n_pes: int = 16, n_per_pe: int = 64,
                          factor: int = 3, seed: int = 1) -> SocWorkload:
    """Each PE scales its slice of a large vector by a constant."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 16) for _ in range(n_pes * n_per_pe)]
    out_base = len(data)
    commands = []
    for pe in range(n_pes):
        base = pe * n_per_pe
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, base, 0, n_per_pe),
            _send(pe, Cmd.COMPUTE, Kernel.SCALE, 0, 0, n_per_pe, n_per_pe,
                  factor),
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + base, n_per_pe,
                  n_per_pe),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))
    expected = scale_ref(data, factor)

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, len(data)) == expected

    return SocWorkload("vector_scale", commands, preload_left=data,
                       check=check,
                       description=f"{n_pes} PEs x {n_per_pe} words, x{factor}")


# ----------------------------------------------------------------------
# 2. memcpy stream (NoC + memory bandwidth)
# ----------------------------------------------------------------------
def memcpy_workload(*, n_pes: int = 16, n_per_pe: int = 64,
                    seed: int = 2) -> SocWorkload:
    """Stream a buffer from the left to the right memory through PEs."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 32) for _ in range(n_pes * n_per_pe)]
    commands = []
    for pe in range(n_pes):
        base = pe * n_per_pe
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, base, 0, n_per_pe),
            _send(pe, Cmd.STORE, GMEM_RIGHT, base, 0, n_per_pe),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))

    def check(soc) -> bool:
        return soc.gmem_right.dump(0, len(data)) == data

    return SocWorkload("memcpy_stream", commands, preload_left=data,
                       check=check,
                       description=f"{n_pes} PEs x {n_per_pe} words L->R")


# ----------------------------------------------------------------------
# 3. reduction (two-phase tree)
# ----------------------------------------------------------------------
def reduction_workload(*, n_pes: int = 16, n_per_pe: int = 64,
                       seed: int = 3) -> SocWorkload:
    """Sum a large vector: per-PE partial sums, then PE0 combines."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 20) for _ in range(n_pes * n_per_pe)]
    partials_base = len(data)
    final_addr = partials_base + n_pes
    commands = []
    for pe in range(n_pes):
        base = pe * n_per_pe
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, base, 0, n_per_pe),
            _send(pe, Cmd.COMPUTE, Kernel.VSUM, 0, 0, n_per_pe, n_per_pe, 0),
            _send(pe, Cmd.STORE, GMEM_LEFT, partials_base + pe, n_per_pe, 1),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))
    commands += [
        _send(0, Cmd.LOAD, GMEM_LEFT, partials_base, 0, n_pes),
        _send(0, Cmd.COMPUTE, Kernel.VSUM, 0, 0, n_pes, n_pes, 0),
        _send(0, Cmd.STORE, GMEM_LEFT, final_addr, n_pes, 1),
        _send(0, Cmd.NOTIFY, CONTROLLER, 100),
        ("wait", n_pes + 1),
    ]
    expected = sum_ref(data)

    def check(soc) -> bool:
        return soc.gmem_left.dump(final_addr, 1) == [expected]

    return SocWorkload("reduction", commands, preload_left=data, check=check,
                       description=f"sum of {len(data)} words, 2-phase")


# ----------------------------------------------------------------------
# 4. dot product (two-phase)
# ----------------------------------------------------------------------
def dot_product_workload(*, n_pes: int = 16, n_per_pe: int = 64,
                         seed: int = 4) -> SocWorkload:
    """dot(a, b) with a in the left memory, b in the right."""
    rng = random.Random(seed)
    n = n_pes * n_per_pe
    a = [rng.randrange(1 << 12) for _ in range(n)]
    b = [rng.randrange(1 << 12) for _ in range(n)]
    partials_base = n
    final_addr = partials_base + n_pes
    commands = []
    for pe in range(n_pes):
        base = pe * n_per_pe
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, base, 0, n_per_pe),
            _send(pe, Cmd.LOAD, GMEM_RIGHT, base, n_per_pe, n_per_pe),
            _send(pe, Cmd.COMPUTE, Kernel.DOT, 0, n_per_pe, 2 * n_per_pe,
                  n_per_pe, 0),
            _send(pe, Cmd.STORE, GMEM_LEFT, partials_base + pe, 2 * n_per_pe, 1),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))
    commands += [
        _send(0, Cmd.LOAD, GMEM_LEFT, partials_base, 0, n_pes),
        _send(0, Cmd.COMPUTE, Kernel.VSUM, 0, 0, n_pes, n_pes, 0),
        _send(0, Cmd.STORE, GMEM_LEFT, final_addr, n_pes, 1),
        _send(0, Cmd.NOTIFY, CONTROLLER, 100),
        ("wait", n_pes + 1),
    ]
    expected = dot_ref(a, b)

    def check(soc) -> bool:
        return soc.gmem_left.dump(final_addr, 1) == [expected]

    return SocWorkload("dot_product", commands, preload_left=a,
                       preload_right=b, check=check,
                       description=f"dot of two {n}-word vectors")


# ----------------------------------------------------------------------
# 5. conv2d (CNN layer)
# ----------------------------------------------------------------------
def conv2d_workload(*, height: int = 12, width: int = 16,
                    seed: int = 5) -> SocWorkload:
    """3x3 valid convolution; one PE per output row.

    Per output row each PE accumulates the nine shifted-row x weight
    products with LOAD + SCALE + VADD command sequences — a CNN layer
    expressed on the PE's vector kernels.
    """
    rng = random.Random(seed)
    image = [[rng.randrange(256) for _ in range(width)] for _ in range(height)]
    kernel = [[rng.randrange(-4, 5) for _ in range(3)] for _ in range(3)]
    out_h, out_w = height - 2, width - 2
    flat = [px for row in image for px in row]
    out_base = len(flat)

    # Scratchpad layout per PE: acc @0, tmp @out_w, tmp2 @2*out_w.
    acc, tmp, tmp2 = 0, out_w, 2 * out_w
    commands = []
    for oy in range(out_h):
        pe = oy % 16
        # Zero the accumulator: load any row then scale by 0.
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, oy * width, tmp, out_w),
            _send(pe, Cmd.COMPUTE, Kernel.SCALE, tmp, 0, acc, out_w, 0),
        ]
        for ky in range(3):
            for kx in range(3):
                w = kernel[ky][kx]
                if w == 0:
                    continue
                src = (oy + ky) * width + kx
                commands += [
                    _send(pe, Cmd.LOAD, GMEM_LEFT, src, tmp, out_w),
                    _send(pe, Cmd.COMPUTE, Kernel.SCALE, tmp, 0, tmp2,
                          out_w, w),
                    _send(pe, Cmd.COMPUTE, Kernel.VADD, acc, tmp2, acc,
                          out_w, 0),
                ]
        commands += [
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + oy * out_w, acc, out_w),
            _send(pe, Cmd.NOTIFY, CONTROLLER, oy),
        ]
    commands.append(("wait", out_h))
    expected = [px for row in conv2d_ref(image, kernel) for px in row]

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, len(expected)) == expected

    return SocWorkload("conv2d", commands, preload_left=flat, check=check,
                       description=f"{height}x{width} image, 3x3 kernel")


# ----------------------------------------------------------------------
# 6. k-means distance step
# ----------------------------------------------------------------------
def kmeans_workload(*, n_points: int = 64, dim: int = 4, k: int = 3,
                    n_pes: int = 8, seed: int = 6) -> SocWorkload:
    """Min squared distance from each point to its nearest centroid.

    Dimension-planar layout: plane d holds coordinate d of every point.
    Each PE handles a slice of points; centroid coordinates are embedded
    in the command stream as ADDS constants (they are parameters of the
    kernel launch, like CNN weights).
    """
    if n_points % n_pes:
        raise ValueError("n_points must divide evenly among PEs")
    rng = random.Random(seed)
    points = [[rng.randrange(-50, 50) for _ in range(dim)]
              for _ in range(n_points)]
    centroids = [[rng.randrange(-50, 50) for _ in range(dim)]
                 for _ in range(k)]
    planes = [[mask32(p[d]) for p in points] for d in range(dim)]
    flat = [v for plane in planes for v in plane]
    out_base = len(flat)
    per_pe = n_points // n_pes

    commands = []
    for pe in range(n_pes):
        lo = pe * per_pe
        # Scratchpad layout: planes at d*per_pe, then acc/diff/sq/best.
        acc = dim * per_pe
        diff = acc + per_pe
        sq = diff + per_pe
        best = sq + per_pe
        for d in range(dim):
            commands.append(_send(pe, Cmd.LOAD, GMEM_LEFT,
                                  d * n_points + lo, d * per_pe, per_pe))
        for ci, c in enumerate(centroids):
            # acc = sum_d (x_d - c_d)^2
            for d in range(dim):
                commands += [
                    _send(pe, Cmd.COMPUTE, Kernel.ADDS, d * per_pe, 0, diff,
                          per_pe, mask32(-c[d])),
                    _send(pe, Cmd.COMPUTE, Kernel.VMUL, diff, diff, sq,
                          per_pe, 0),
                ]
                if d == 0:
                    commands.append(_send(pe, Cmd.COMPUTE, Kernel.SCALE, sq,
                                          0, acc, per_pe, 1))
                else:
                    commands.append(_send(pe, Cmd.COMPUTE, Kernel.VADD, acc,
                                          sq, acc, per_pe, 0))
            if ci == 0:
                commands.append(_send(pe, Cmd.COMPUTE, Kernel.SCALE, acc, 0,
                                      best, per_pe, 1))
            else:
                commands.append(_send(pe, Cmd.COMPUTE, Kernel.VMIN, best, acc,
                                      best, per_pe, 0))
        commands += [
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + lo, best, per_pe),
            _send(pe, Cmd.NOTIFY, CONTROLLER, pe),
        ]
    commands.append(("wait", n_pes))
    expected = kmeans_min_distances_ref(points, centroids)

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, n_points) == expected

    return SocWorkload("kmeans_distance", commands, preload_left=flat,
                       check=check,
                       description=f"{n_points} pts, {dim}-d, {k} centroids")


# ----------------------------------------------------------------------
# 7. GEMM (bonus; used by examples)
# ----------------------------------------------------------------------
def gemm_workload(*, m: int = 8, k: int = 8, n: int = 8,
                  seed: int = 7) -> SocWorkload:
    """Integer matrix multiply, one PE per row of A."""
    if m > 16:
        raise ValueError("at most one PE per row of A (m <= 16)")
    rng = random.Random(seed)
    a = [[rng.randrange(-16, 16) for _ in range(k)] for _ in range(m)]
    b = [[rng.randrange(-16, 16) for _ in range(k)] for _ in range(n)]
    # b is stored column-major: column j of B == row j of the stored array.
    a_flat = [mask32(v) for row in a for v in row]
    b_cols = [mask32(b[j][p]) for j in range(n) for p in range(k)]
    out_base = len(a_flat)

    commands = []
    for i in range(m):
        pe = i
        # Scratchpad: A-row @0, B-col @k, results @2k+j.
        commands.append(_send(pe, Cmd.LOAD, GMEM_LEFT, i * k, 0, k))
        for j in range(n):
            commands += [
                _send(pe, Cmd.LOAD, GMEM_RIGHT, j * k, k, k),
                _send(pe, Cmd.COMPUTE, Kernel.DOT, 0, k, 2 * k + j, k, 0),
            ]
        commands += [
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + i * n, 2 * k, n),
            _send(pe, Cmd.NOTIFY, CONTROLLER, i),
        ]
    commands.append(("wait", m))
    # b is stored column-major (b[j] is column j): reconstruct B (k x n).
    b_matrix = [[b[j][p] for j in range(n)] for p in range(k)]
    expected = [v for row in gemm_ref(a, b_matrix) for v in row]

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, m * n) == expected

    return SocWorkload("gemm", commands, preload_left=a_flat,
                       preload_right=b_cols, check=check,
                       description=f"{m}x{k} @ {k}x{n} int GEMM")


def figure6_workloads() -> List[SocWorkload]:
    """The six SoC-level tests used to reproduce Figure 6."""
    return [
        vector_scale_workload(),
        memcpy_workload(),
        reduction_workload(),
        dot_product_workload(),
        conv2d_workload(),
        kmeans_workload(),
    ]


def run_workload(workload: SocWorkload, *, mode: str = "fast",
                 gals: bool = False, **chip_kwargs):
    """Build a SoC, run one workload, verify it; returns the chip.

    Raises ``AssertionError`` if the result does not match the golden
    reference bit-for-bit.
    """
    from ..soc.chip import PrototypeSoC

    soc = PrototypeSoC(commands=workload.commands, mode=mode, gals=gals,
                       **chip_kwargs)
    if workload.preload_left:
        soc.gmem_left.load(workload.preload_left)
    if workload.preload_right:
        soc.gmem_right.load(workload.preload_right)
    soc.run()
    assert workload.check(soc), f"workload {workload.name} result mismatch"
    return soc


# ----------------------------------------------------------------------
# 8. conv2d in FP16 (the ML datapath end to end)
# ----------------------------------------------------------------------
def conv2d_fp16_workload(*, height: int = 8, width: int = 10,
                         seed: int = 8) -> SocWorkload:
    """3x3 valid convolution computed in FP16 on the PE datapath.

    Same structure as :func:`conv2d_workload` but every value is an FP16
    bit pattern and every arithmetic op is MatchLib's bit-accurate float
    — the datapath the paper's ML accelerator actually runs.  The golden
    reference accumulates with the same fp_mul/fp_add sequence, so the
    check is bit-exact.
    """
    from ..matchlib.fp import FP16, fp_add, fp_mul

    rng = random.Random(seed)
    image = [[FP16.encode(rng.uniform(-2.0, 2.0)) for _ in range(width)]
             for _ in range(height)]
    kernel = [[FP16.encode(rng.choice([-1.0, -0.5, 0.5, 1.0, 2.0]))
               for _ in range(3)] for _ in range(3)]
    out_h, out_w = height - 2, width - 2
    flat = [px for row in image for px in row]
    out_base = len(flat)

    acc, tmp, tmp2 = 0, out_w, 2 * out_w
    commands = []
    for oy in range(out_h):
        pe = oy % 16
        commands += [
            _send(pe, Cmd.LOAD, GMEM_LEFT, oy * width, tmp, out_w),
            # Zero accumulator: anything times +0.0 is +-0.0; use SCALE
            # by the FP16 encoding of 0.0, then square away the sign by
            # adding +0.0 (fp_add(-0,+0) = +0 under RNE).
            _send(pe, Cmd.COMPUTE, Kernel.SCALE_FP16, tmp, 0, acc, out_w,
                  FP16.zero()),
            _send(pe, Cmd.COMPUTE, Kernel.ADDS_FP16, acc, 0, acc, out_w,
                  FP16.zero()),
        ]
        for ky in range(3):
            for kx in range(3):
                w_bits = kernel[ky][kx]
                src = (oy + ky) * width + kx
                commands += [
                    _send(pe, Cmd.LOAD, GMEM_LEFT, src, tmp, out_w),
                    _send(pe, Cmd.COMPUTE, Kernel.SCALE_FP16, tmp, 0, tmp2,
                          out_w, w_bits),
                    _send(pe, Cmd.COMPUTE, Kernel.VADD_FP16, acc, tmp2, acc,
                          out_w, 0),
                ]
        commands += [
            _send(pe, Cmd.STORE, GMEM_LEFT, out_base + oy * out_w, acc, out_w),
            _send(pe, Cmd.NOTIFY, CONTROLLER, oy),
        ]
    commands.append(("wait", out_h))

    # Bit-exact golden reference: identical op order to the PE commands.
    expected = []
    for oy in range(out_h):
        # Mirror the PE's accumulator-zeroing sequence exactly.
        row = [fp_add(FP16, fp_mul(FP16, image[oy][ox], FP16.zero()),
                      FP16.zero()) for ox in range(out_w)]
        for ky in range(3):
            for kx in range(3):
                w_bits = kernel[ky][kx]
                for ox in range(out_w):
                    prod = fp_mul(FP16, image[oy + ky][ox + kx], w_bits)
                    row[ox] = fp_add(FP16, row[ox], prod)
        expected.extend(row)

    def check(soc) -> bool:
        return soc.gmem_left.dump(out_base, len(expected)) == expected

    return SocWorkload("conv2d_fp16", commands, preload_left=flat,
                       check=check,
                       description=f"{height}x{width} FP16 image, 3x3 kernel")
