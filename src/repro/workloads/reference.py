"""Golden reference implementations of the SoC workloads.

Pure-Python integer models used to verify accelerator output bit-for-bit
(the role of the "golden reference models" the paper's verification
methodology compares against).  All arithmetic is 32-bit two's
complement to match the PE datapath.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "mask32",
    "conv2d_ref",
    "dot_ref",
    "gemm_ref",
    "kmeans_min_distances_ref",
    "relu_ref",
    "scale_ref",
    "sum_ref",
]

_MASK = 0xFFFFFFFF


def mask32(value: int) -> int:
    return value & _MASK


def _s32(value: int) -> int:
    value &= _MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def scale_ref(vec: Sequence[int], factor: int) -> List[int]:
    """Elementwise multiply by a scalar."""
    return [mask32(_s32(x) * _s32(factor)) for x in vec]


def relu_ref(vec: Sequence[int]) -> List[int]:
    return [x & _MASK if _s32(x) > 0 else 0 for x in vec]


def sum_ref(vec: Sequence[int]) -> int:
    return mask32(sum(_s32(x) for x in vec))


def dot_ref(a: Sequence[int], b: Sequence[int]) -> int:
    if len(a) != len(b):
        raise ValueError("length mismatch")
    return mask32(sum(_s32(x) * _s32(y) for x, y in zip(a, b)))


def conv2d_ref(image: List[List[int]], kernel: List[List[int]]) -> List[List[int]]:
    """Valid-mode 2-D convolution (actually cross-correlation, as CNNs use).

    Output size: (H - kh + 1) x (W - kw + 1).
    """
    height, width = len(image), len(image[0])
    kh, kw = len(kernel), len(kernel[0])
    if kh > height or kw > width:
        raise ValueError("kernel larger than image")
    out = []
    for oy in range(height - kh + 1):
        row = []
        for ox in range(width - kw + 1):
            acc = 0
            for ky in range(kh):
                for kx in range(kw):
                    acc += _s32(image[oy + ky][ox + kx]) * _s32(kernel[ky][kx])
            row.append(mask32(acc))
        out.append(row)
    return out


def gemm_ref(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    """Integer matrix multiply: (m x k) @ (k x n)."""
    m, k = len(a), len(a[0])
    k2, n = len(b), len(b[0])
    if k != k2:
        raise ValueError("inner dimension mismatch")
    return [
        [mask32(sum(_s32(a[i][p]) * _s32(b[p][j]) for p in range(k)))
         for j in range(n)]
        for i in range(m)
    ]


def kmeans_min_distances_ref(points: List[List[int]],
                             centroids: List[List[int]]) -> List[int]:
    """Per-point minimum squared L2 distance to any centroid.

    The compute-heavy inner loop of a k-means step — what the PE array
    accelerates (assignment indices and the centroid update run on the
    controller in a real deployment).
    """
    if not centroids:
        raise ValueError("need at least one centroid")
    out = []
    for p in points:
        best = None
        for c in centroids:
            if len(c) != len(p):
                raise ValueError("dimension mismatch")
            d = mask32(sum((_s32(x) - _s32(y)) ** 2 for x, y in zip(p, c)))
            # Signed min, matching the PE's VMIN kernel semantics.
            if best is None or _s32(d) < _s32(best):
                best = d
        out.append(best)
    return out
