"""ML / computer-vision workloads for the prototype SoC.

Golden references (:mod:`.reference`) plus command-table builders
(:mod:`.soc_workloads`) for the six SoC-level tests used to reproduce
Figure 6, along with GEMM.

Quick use::

    from repro.workloads import conv2d_workload, run_workload

    soc = run_workload(conv2d_workload())      # raises if output wrong
    print(soc.elapsed_cycles)
"""

from .reference import (
    conv2d_ref,
    dot_ref,
    gemm_ref,
    kmeans_min_distances_ref,
    mask32,
    relu_ref,
    scale_ref,
    sum_ref,
)
from .soc_workloads import (
    SocWorkload,
    conv2d_fp16_workload,
    conv2d_workload,
    dot_product_workload,
    figure6_workloads,
    gemm_workload,
    kmeans_workload,
    memcpy_workload,
    reduction_workload,
    run_workload,
    vector_scale_workload,
)

__all__ = [
    "conv2d_ref", "dot_ref", "gemm_ref", "kmeans_min_distances_ref",
    "mask32", "relu_ref", "scale_ref", "sum_ref",
    "SocWorkload",
    "vector_scale_workload", "memcpy_workload", "reduction_workload",
    "dot_product_workload", "conv2d_workload", "conv2d_fp16_workload", "kmeans_workload",
    "gemm_workload", "figure6_workloads", "run_workload",
]
