"""Robustness layer: fault injection + hang watchdog (``repro.faults``).

Three pieces, layered on the PR 3 design hierarchy and the PR 4 sweep
engine:

* :mod:`.watchdog` — deadlock/livelock detection for a running
  simulator, raising :class:`HangError` with a path-level
  :class:`HangDiagnosis` instead of spinning to ``max_steps``;
* :mod:`.plan` — seeded deterministic :class:`FaultPlan` schedules
  (message drop/duplicate/corruption, stall bursts, clock
  jitter/drift) applied to any built design by dotted channel path;
* :mod:`.campaign` — the campaign runner behind ``repro faults``:
  seeded cases per experiment harness, outcome triage
  (clean/detected/hang/crash), and shrinking of failing schedules.

Everything is zero-cost when off: without a watchdog or fault plan the
kernel and channels pay at most one ``is None`` test on their hot paths
(the ``python -m repro bench`` gate enforces this).
"""

from .campaign import (
    HARNESSES,
    Harness,
    Rig,
    build_deadlock_fixture,
    default_plan,
    execute,
    outcome_class,
    shrink,
)
from .plan import (
    AppliedFaults,
    ChannelFaults,
    FaultDirective,
    FaultPlan,
    default_corrupter,
)
from .watchdog import (
    BlockedThread,
    ChannelSnapshot,
    HangDiagnosis,
    HangError,
    Watchdog,
)

__all__ = [
    "Watchdog", "HangError", "HangDiagnosis", "BlockedThread",
    "ChannelSnapshot",
    "FaultPlan", "FaultDirective", "AppliedFaults", "ChannelFaults",
    "default_corrupter",
    "Harness", "Rig", "HARNESSES", "build_deadlock_fixture",
    "default_plan", "execute", "shrink", "outcome_class",
]
