"""Fault-injection campaigns: seeded runs, outcome triage, shrinking.

A *campaign case* is one experiment harness run under one seeded
:class:`~repro.faults.plan.FaultPlan` with a
:class:`~repro.faults.watchdog.Watchdog` attached, classified as:

* ``clean`` — the design absorbed the faults and produced the exact
  expected output (the LI-robustness claim: drops never happened, or
  only backpressure faults were injected),
* ``detected`` — the output differs, and the injected-fault budget
  (drops + duplicates + corruptions, plus harness-side detectors such
  as checksum mismatch counters) explains it,
* ``hang`` — the watchdog raised :class:`HangError`; the record embeds
  the full path-level diagnosis,
* ``crash`` — an unexpected exception, or an output mismatch that *no*
  injected fault explains (a silent-corruption escape — the outcome
  campaigns exist to catch).

Everything is derived from the case seed: the plan (drawn from the
harness's fault menu), every fault's RNG stream, and the harness's
stimulus.  Running the same seed twice produces byte-identical records,
which is what lets ``repro faults`` results be diffed across machines
and lets :func:`shrink` re-run a failing case while removing directives
one at a time until only the faults needed to reproduce remain.

Campaigns integrate with the PR 4 sweep engine as the
``fault_campaign`` experiment: each case is one
:class:`~repro.sweep.point.SweepPoint`, so campaigns parallelize across
a process pool and land in the content-addressed result cache like any
other sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .. import registry
from ..connections import Buffer, In, Out
from ..connections.packet import (DePacketizer, Packetizer, int_deserializer,
                                  int_serializer)
from ..experiments.stall_verification import build_stall_testbench
from ..gals.gals_link import GalsLink
from ..kernel import Simulator
from ..matchlib.arbitrated_crossbar import ArbitratedCrossbarModule
from ..sweep.point import SweepPoint
from .plan import FaultPlan
from .watchdog import HangError, Watchdog

__all__ = ["Rig", "Harness", "HARNESSES", "default_plan", "execute",
           "shrink", "outcome_class", "build_deadlock_fixture",
           "sweep_space", "run_sweep_point", "summarize_sweep",
           "OUTCOMES"]

#: Classification vocabulary, in severity order.
OUTCOMES = ("clean", "detected", "hang", "crash")


def _zero() -> int:
    return 0


@dataclass
class Rig:
    """One built testbench instance, ready to run under faults."""

    sim: Any
    clock: Any
    until: int                       # sim.run time bound (ticks)
    verify: Callable[[], bool]       # True when the output is exact
    window: int = 4000               # watchdog livelock window (cycles)
    max_cycles: Optional[int] = None
    detected: Callable[[], int] = _zero  # harness-side fault detectors


@dataclass(frozen=True)
class Harness:
    """A campaign target: rig builder + its menu of applicable faults.

    Menu entries are ``(plan, rng) -> None`` callables that append one
    directive; :func:`default_plan` samples 1-3 of them per case.
    ``expected`` is the outcome set the CLI treats as success — the
    deliberately-deadlocked fixture *expects* ``hang``.
    """

    name: str
    build: Callable[[int], Rig]
    menu: Tuple[Callable, ...] = ()
    expected: Tuple[str, ...] = ("clean", "detected")
    in_default_matrix: bool = True


# ----------------------------------------------------------------------
# harness: stall_verification (LeakyForwarder pipeline, bug disabled)
# ----------------------------------------------------------------------
def _build_stall_rig(seed: int) -> Rig:
    n_msgs = 40
    # bug=False: the *design* is correct; only injected faults may lose
    # messages.  The consumer drains a fixed n_msgs*40 = 1600 cycles, so
    # the run ends by time bound shortly after.
    sim, received = build_stall_testbench(0.0, seed, n_msgs=n_msgs,
                                          bug=False)
    expected = list(range(n_msgs))
    return Rig(sim=sim, clock=sim._clocks[0], until=n_msgs * 425,
               verify=lambda: received == expected,
               window=4000, max_cycles=8000)


_STALL_MENU = (
    lambda plan, rng: plan.drop(
        "down", probability=round(0.05 + 0.25 * rng.random(), 3)),
    lambda plan, rng: plan.duplicate(
        "down", probability=round(0.05 + 0.2 * rng.random(), 3)),
    lambda plan, rng: plan.corrupt(
        "up", probability=round(0.05 + 0.25 * rng.random(), 3)),
    lambda plan, rng: plan.stall_burst(
        "down", start=rng.randrange(0, 100),
        length=rng.randrange(50, 200),
        probability=round(0.3 + 0.5 * rng.random(), 3)),
)


# ----------------------------------------------------------------------
# harness: fig3_crossbar (2x2 arbitrated crossbar, sim-accurate model)
# ----------------------------------------------------------------------
def _crossbar_corrupter(msg, rng: random.Random):
    """Payload-only single-bit flip: ``(dest, (port, i))`` keeps its
    dest valid so corruption is *detected* at the sinks rather than
    crashing arbitration on an out-of-range destination."""
    dest, (port, i) = msg
    return dest, (port, i ^ (1 << rng.randrange(8)))


def _build_crossbar_rig(seed: int) -> Rig:
    n, n_msgs = 2, 16
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        xbar = ArbitratedCrossbarModule(sim, clk, n, n, name="xbar")
        ins = [Buffer(sim, clk, capacity=2, name=f"i{i}") for i in range(n)]
        outs = [Buffer(sim, clk, capacity=2, name=f"o{o}") for o in range(n)]
        for i in range(n):
            xbar.ins[i].bind(ins[i])
            xbar.outs[i].bind(outs[i])
        rng = random.Random(f"fig3:{seed}")
        stimulus = [[(rng.randrange(n), (p, i)) for i in range(n_msgs)]
                    for p in range(n)]
        got: List[List[tuple]] = [[] for _ in range(n)]

        def producer(src: Out, msgs: List[tuple]) -> Generator:
            for msg in msgs:
                yield from src.push(msg)

        def consumer(dst: In, sink: List[tuple]) -> Generator:
            for _ in range(600):  # bounded drain: covers any stall burst
                ok, msg = dst.pop_nb()
                if ok:
                    sink.append(msg)
                yield

        for p in range(n):
            with sim.design.scope(f"src{p}", kind="StreamSource"):
                sim.add_thread(producer(Out(ins[p], name="out"),
                                        stimulus[p]), clk, name="ctl")
        for o in range(n):
            with sim.design.scope(f"snk{o}", kind="StreamSink"):
                sim.add_thread(consumer(In(outs[o], name="in"),
                                        got[o]), clk, name="ctl")

    want = [sorted(m for msgs in stimulus for m in msgs if m[0] == o)
            for o in range(n)]

    def verify() -> bool:
        return all(sorted(got[o]) == want[o] for o in range(n))

    return Rig(sim=sim, clock=clk, until=7000, verify=verify,
               window=4000, max_cycles=8000)


_CROSSBAR_MENU = (
    lambda plan, rng: plan.drop(
        "chip.o0", probability=round(0.05 + 0.2 * rng.random(), 3)),
    lambda plan, rng: plan.duplicate(
        "chip.i1", probability=round(0.05 + 0.2 * rng.random(), 3)),
    lambda plan, rng: plan.corrupt(
        "chip.i0", probability=round(0.05 + 0.25 * rng.random(), 3),
        corrupter=_crossbar_corrupter),
    lambda plan, rng: plan.stall_burst(
        "chip.o1", start=rng.randrange(0, 50),
        length=rng.randrange(50, 200),
        probability=round(0.3 + 0.5 * rng.random(), 3)),
)


# ----------------------------------------------------------------------
# harness: gals_overhead (two-domain stream over a GalsLink)
# ----------------------------------------------------------------------
def _build_gals_rig(seed: int) -> Rig:
    n_msgs = 24
    sim = Simulator()
    tx = sim.add_clock("tx", period=90)
    rx = sim.add_clock("rx", period=130)
    with sim.design.scope("chip", kind="Chip"):
        link = GalsLink(sim, tx, rx, capacity=4, name="link")
        got: List[int] = []

        def producer(src: Out) -> Generator:
            for i in range(n_msgs):
                yield from src.push(i)

        def consumer(dst: In) -> Generator:
            for _ in range(600):  # bounded drain in rx cycles
                ok, msg = dst.pop_nb()
                if ok:
                    got.append(msg)
                yield

        with sim.design.scope("prod", kind="StreamSource", clock=tx):
            sim.add_thread(producer(Out(link, name="out")), tx, name="ctl")
        with sim.design.scope("cons", kind="StreamSink", clock=rx):
            sim.add_thread(consumer(In(link, name="in")), rx, name="ctl")

    expected = list(range(n_msgs))
    return Rig(sim=sim, clock=tx, until=90_000,
               verify=lambda: got == expected,
               window=6000, max_cycles=12_000)


_GALS_MENU = (
    lambda plan, rng: plan.clock_jitter(
        "tx", amplitude=rng.randrange(2, 9), every=rng.randrange(3, 17)),
    lambda plan, rng: plan.clock_drift(
        "rx", rate=rng.choice((-2, -1, 1, 2)), every=rng.randrange(16, 65)),
    lambda plan, rng: plan.drop(
        "chip.link", probability=round(0.05 + 0.2 * rng.random(), 3)),
    lambda plan, rng: plan.duplicate(
        "chip.link", probability=round(0.05 + 0.2 * rng.random(), 3)),
    lambda plan, rng: plan.corrupt(
        "chip.link", probability=round(0.05 + 0.25 * rng.random(), 3)),
    lambda plan, rng: plan.stall_burst(
        "chip.link", start=rng.randrange(0, 100),
        length=rng.randrange(50, 150),
        probability=round(0.3 + 0.4 * rng.random(), 3)),
)


# ----------------------------------------------------------------------
# harness: packet_stream (checksummed Packetizer/DePacketizer pipe)
# ----------------------------------------------------------------------
def _build_packet_rig(seed: int) -> Rig:
    n_msgs, width, flit_width = 12, 32, 8
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        src = Buffer(sim, clk, capacity=2, name="src")
        wire = Buffer(sim, clk, capacity=4, name="wire")
        dst = Buffer(sim, clk, capacity=4, name="dst")
        pkt = Packetizer(sim, clk, serialize=int_serializer(width, flit_width),
                         checksum=True, name="pkt")
        depkt = DePacketizer(sim, clk,
                             deserialize=int_deserializer(width, flit_width),
                             checksum=True, name="depkt")
        pkt.msg_in.bind(src)
        pkt.flit_out.bind(wire)
        depkt.flit_in.bind(wire)
        depkt.msg_out.bind(dst)

        rng = random.Random(f"packet:{seed}")
        stimulus = [rng.getrandbits(width) for _ in range(n_msgs)]
        got: List[int] = []

        def producer(out: Out) -> Generator:
            for msg in stimulus:
                yield from out.push(msg)

        def consumer(inp: In) -> Generator:
            for _ in range(800):  # bounded drain
                ok, msg = inp.pop_nb()
                if ok:
                    got.append(msg)
                yield

        with sim.design.scope("prod", kind="StreamSource"):
            sim.add_thread(producer(Out(src, name="out")), clk, name="ctl")
        with sim.design.scope("cons", kind="StreamSink"):
            sim.add_thread(consumer(In(dst, name="in")), clk, name="ctl")

    return Rig(sim=sim, clock=clk, until=9000,
               verify=lambda: got == stimulus,
               window=4000, max_cycles=10_000,
               detected=lambda: depkt.corrupted_messages)


_PACKET_MENU = (
    lambda plan, rng: plan.corrupt(
        "chip.wire", probability=round(0.02 + 0.1 * rng.random(), 3)),
    lambda plan, rng: plan.drop(
        "chip.wire", probability=round(0.02 + 0.08 * rng.random(), 3)),
    lambda plan, rng: plan.duplicate(
        "chip.wire", probability=round(0.02 + 0.08 * rng.random(), 3)),
    lambda plan, rng: plan.stall_burst(
        "chip.wire", start=rng.randrange(0, 80),
        length=rng.randrange(50, 150),
        probability=round(0.3 + 0.4 * rng.random(), 3)),
)


# ----------------------------------------------------------------------
# harness: deadlock_demo (deliberately crossed blocking pops)
# ----------------------------------------------------------------------
def build_deadlock_fixture(seed: int = 0):
    """A two-thread design that deadlocks on its very first cycle.

    ``chip.a`` pops ``chip.ba`` before pushing ``chip.ab``; ``chip.b``
    pops ``chip.ab`` before pushing ``chip.ba``.  Each waits for a
    message only the other can send: the canonical crossed-handshake
    deadlock, used by tests and CI to assert the watchdog names the
    exact dotted channel paths.  Returns ``(sim, clk)``.
    """
    sim = Simulator()
    clk = sim.add_clock("clk", period=10)
    with sim.design.scope("chip", kind="Chip", clock=clk):
        ab = Buffer(sim, clk, capacity=2, name="ab")
        ba = Buffer(sim, clk, capacity=2, name="ba")

        def unit(inp: In, out: Out) -> Generator:
            while True:
                msg = yield from inp.pop()  # waits for the peer first
                yield from out.push(msg + 1)

        with sim.design.scope("a", kind="Unit"):
            sim.add_thread(unit(In(ba, name="in"), Out(ab, name="out")),
                           clk, name="ctl")
        with sim.design.scope("b", kind="Unit"):
            sim.add_thread(unit(In(ab, name="in"), Out(ba, name="out")),
                           clk, name="ctl")
    return sim, clk


def _build_deadlock_rig(seed: int) -> Rig:
    sim, clk = build_deadlock_fixture(seed)
    return Rig(sim=sim, clock=clk, until=1_000_000,
               verify=lambda: False, window=400, max_cycles=5000)


# ----------------------------------------------------------------------
# registry integration: harnesses attach to their experiments' specs
# ----------------------------------------------------------------------
# Harness names predate the registry and follow the *sweep* naming
# (``stall_verification``), while the specs they attach to carry the CLI
# verb names (``stalls``) — the registry indexes both.  The two
# harness-only fixtures (``packet_stream``, ``deadlock_demo``) register
# hidden specs: no CLI experiment verb, but full fault-campaign and
# ``HARNESSES``-view membership.  Attach order is load-bearing: it is
# the historical ``HARNESSES`` dict order, which fixes the default
# campaign matrix's point order (and with it every seeded record).
registry.attach_harness("stalls", Harness(
    "stall_verification", _build_stall_rig, _STALL_MENU))
registry.attach_harness("fig3", Harness(
    "fig3_crossbar", _build_crossbar_rig, _CROSSBAR_MENU))
registry.attach_harness("gals", Harness(
    "gals_overhead", _build_gals_rig, _GALS_MENU))
registry.register(registry.ExperimentSpec(
    name="packet_stream",
    summary="checksummed Packetizer/DePacketizer pipe (fault fixture)",
    harness=Harness("packet_stream", _build_packet_rig, _PACKET_MENU),
    hidden=True,
))
registry.register(registry.ExperimentSpec(
    name="deadlock_demo",
    summary="deliberately crossed blocking pops (expects hang)",
    harness=Harness("deadlock_demo", _build_deadlock_rig,
                    expected=("hang",), in_default_matrix=False),
    hidden=True,
))

#: Harness name -> harness.  A live read-through view of the experiment
#: registry (deprecated alias; use ``registry.get_harness`` instead).
HARNESSES: Dict[str, Harness] = registry.harnesses_view()


# ----------------------------------------------------------------------
# case execution
# ----------------------------------------------------------------------
def default_plan(harness_name: str, seed: int) -> FaultPlan:
    """Draw this case's fault schedule from the harness menu.

    1-3 distinct menu entries, chosen and parameterized by a named RNG
    stream — the same ``(harness, seed)`` always yields the same plan.
    """
    harness = HARNESSES[harness_name]
    plan = FaultPlan(seed)
    if not harness.menu:
        return plan
    rng = random.Random(f"campaign:{harness_name}:{seed}")
    picks = rng.sample(range(len(harness.menu)),
                       rng.randint(1, min(3, len(harness.menu))))
    for index in sorted(picks):
        harness.menu[index](plan, rng)
    return plan


def execute(harness_name: str, plan: FaultPlan, seed: int) -> dict:
    """Build, fault, watch, run, classify: one campaign case.

    The returned record is plain JSON-able data and fully deterministic
    for a given ``(harness, plan, seed)``.
    """
    harness = HARNESSES[harness_name]
    rig = harness.build(seed)
    applied = plan.apply(rig.sim)
    Watchdog(rig.sim, rig.clock, window=rig.window,
             max_cycles=rig.max_cycles)
    record: dict = {"experiment": harness_name, "seed": seed,
                    "plan": plan.describe()}
    try:
        rig.sim.run(until=rig.until)
    except HangError as exc:
        record["outcome"] = "hang"
        record["diagnosis"] = exc.diagnosis.to_records()
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        record["outcome"] = "crash"
        record["error"] = f"{type(exc).__name__}: {exc}"
    else:
        harness_detected = rig.detected()
        if rig.verify():
            record["outcome"] = "clean"
        elif applied.lossy_events() + harness_detected > 0:
            record["outcome"] = "detected"
        else:
            # The escape campaigns exist to catch: wrong output that no
            # injected fault accounts for.
            record["outcome"] = "crash"
            record["error"] = ("output mismatch with zero injected lossy "
                               "events (silent corruption escape)")
    record["injected"] = applied.counters()
    record["harness_detected"] = rig.detected()
    record["ok"] = record["outcome"] in harness.expected
    return record


def outcome_class(record: dict) -> str:
    """The *full* classification of an executed case, not just the coarse
    outcome: hangs keep their watchdog kind (``hang:deadlock`` vs
    ``hang:livelock`` vs ``hang:budget``) and crashes keep their error
    type (``crash:TypeError``, ``crash:escape`` for silent corruption).
    Shrinking validates candidates against this, so a reduction can
    never silently trade one failure mode for another.
    """
    outcome = record["outcome"]
    if outcome == "hang":
        kinds = [r.get("kind") for r in record.get("diagnosis", ())
                 if r.get("type") == "hang"]
        return f"hang:{kinds[0]}" if kinds else "hang"
    if outcome == "crash":
        error = record.get("error", "")
        if error.startswith("output mismatch"):
            return "crash:escape"
        return f"crash:{error.split(':', 1)[0] or 'unknown'}"
    return outcome


def shrink(harness_name: str, plan: FaultPlan, seed: int,
           target_outcome: Optional[str] = None, *, max_runs: int = 32,
           match: str = "class") -> FaultPlan:
    """Greedy 1-minimal reduction of a failing fault schedule.

    Repeatedly re-runs the case with one directive removed, keeping any
    reduction that still reproduces the original failure; directives
    carry frozen sub-seeds, so survivors behave identically in smaller
    plans.  Capped at ``max_runs`` executions (the reference run for
    the original plan included).

    ``match`` controls what "still reproduces" means:

    * ``"class"`` (default) — the candidate's :func:`outcome_class`
      must equal the original plan's (a livelock stays a livelock, a
      TypeError crash stays a TypeError crash);
    * ``"outcome"`` — only the coarse outcome string must match
      (a deadlock may shrink into a livelock);
    * ``"any"`` — any not-``ok`` outcome is accepted.  This is the
      naive fixpoint and it is *wrong* — it can shrink a hang into an
      unrelated crash (see ``tests/verify/test_shrink.py``) — kept
      only to document the hazard.

    ``target_outcome`` optionally asserts what the original plan's
    coarse outcome is expected to be (a mismatch raises ``ValueError``);
    ``None`` accepts whatever the reference run produces.
    """
    if match not in ("class", "outcome", "any"):
        raise ValueError(f"unknown shrink match mode {match!r}")
    harness = HARNESSES[harness_name]
    reference = execute(harness_name, plan, seed)
    runs = 1
    if target_outcome is not None \
            and reference["outcome"] != target_outcome:
        raise ValueError(
            f"plan does not reproduce {target_outcome!r} on "
            f"{harness_name!r} (got {reference['outcome']!r})")
    target_class = outcome_class(reference)

    def reproduces(record: dict) -> bool:
        if match == "any":
            return record["outcome"] not in harness.expected
        if match == "outcome":
            return record["outcome"] == reference["outcome"]
        return outcome_class(record) == target_class

    current = plan
    improved = True
    while improved and runs < max_runs and len(current.directives) > 1:
        improved = False
        for index in range(len(current.directives)):
            candidate = current.without(index)
            runs += 1
            if reproduces(execute(harness_name, candidate, seed)):
                current = candidate
                improved = True
                break
            if runs >= max_runs:
                break
    return current


# ----------------------------------------------------------------------
# sweep integration (the ``fault_campaign`` experiment)
# ----------------------------------------------------------------------
def sweep_space(*, experiments: Optional[List[str]] = None, cases: int = 4,
                seed: int = 0) -> List[SweepPoint]:
    """Enumerate N seeded cases per harness as sweep points."""
    if experiments is None:
        names = [n for n, h in HARNESSES.items() if h.in_default_matrix]
    else:
        names = list(experiments)
    for name in names:
        if name not in HARNESSES:
            raise KeyError(f"unknown fault-campaign harness {name!r}; "
                           f"one of {sorted(HARNESSES)}")
    return [SweepPoint("fault_campaign", {"experiment": name, "case": case},
                       seed=seed + case)
            for name in names for case in range(cases)]


def run_sweep_point(params: dict, seed: int) -> dict:
    """Execute one campaign case; the sweep registry's point runner."""
    name = params["experiment"]
    record = execute(name, default_plan(name, seed), seed)
    record["case"] = params["case"]
    return record


def summarize_sweep(results: List[dict]) -> str:
    """Outcome matrix per harness, plus any hang diagnoses in full."""
    by_name: Dict[str, List[dict]] = {}
    for rec in results:
        by_name.setdefault(rec["experiment"], []).append(rec)
    lines = ["Fault-injection campaign outcomes",
             f"{'experiment':<20} {'cases':>6} " +
             " ".join(f"{o:>9}" for o in OUTCOMES)]
    for name in sorted(by_name):
        recs = by_name[name]
        counts = {o: sum(1 for r in recs if r["outcome"] == o)
                  for o in OUTCOMES}
        lines.append(f"{name:<20} {len(recs):>6} " +
                     " ".join(f"{counts[o]:>9}" for o in OUTCOMES))
    problems = [r for r in results if not r.get("ok", True)]
    for rec in problems:
        lines.append("")
        lines.append(f"-- {rec['experiment']} seed={rec['seed']}: "
                     f"{rec['outcome']}")
        if rec.get("error"):
            lines.append(f"   {rec['error']}")
        for d in rec.get("diagnosis", ()):
            if d.get("type") == "hang":
                lines.append(f"   {d['kind']}: {d['reason']}")
            elif d.get("type") == "hang.thread":
                lines.append(f"   {d['thread']} blocked in {d['op']}() on "
                             f"{d['channel']}")
    return "\n".join(lines)


# The fault_campaign sweep used to be registered by experiments/sweeps.py
# through lazy wrappers (importing this module at experiments-import time
# would have closed an import cycle).  With the registry owning the
# catalog, this module registers it directly — registry.load() imports
# repro.faults.campaign after repro.experiments, so the sweep is always
# visible wherever sweeps are resolved, including worker processes.
registry.register_sweep(registry.SweepSpec(
    name="fault_campaign",
    help="seeded fault-injection cases per harness (drop/dup/corrupt/"
         "stall/clock faults), watchdog-triaged",
    space=sweep_space,
    runner=run_sweep_point,
    summarize=summarize_sweep,
))
